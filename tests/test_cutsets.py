"""Cut-set generation: separation, observability, constraint (9)."""

import pytest

from repro.core.cutsets import CutSetGenerator, Wall, closure_repair
from repro.core.validate import validate_vector
from repro.fpva import table1_layout
from repro.fpva.geometry import Junction
from repro.ilp import SolveOptions
from repro.sim import ChipUnderTest, StuckAt1, Tester

OPTS = SolveOptions(time_limit=60)


@pytest.fixture(scope="module", params=["ilp", "sweep"])
def tiny_cuts(request):
    from repro.fpva import full_layout

    fpva = full_layout(3, 3, name=f"cuts-{request.param}")
    gen = CutSetGenerator(fpva, strategy=request.param, solve_options=OPTS)
    return fpva, gen, gen.generate()


class TestGeneration:
    def test_full_sa1_coverage(self, tiny_cuts):
        fpva, gen, result = tiny_cuts
        assert not result.uncovered
        assert result.covered == set(fpva.valves)

    def test_every_wall_separates(self, tiny_cuts):
        fpva, gen, result = tiny_cuts
        for wall in result.walls:
            assert gen.wall_separates(wall)

    def test_vectors_expect_dark_meters(self, tiny_cuts):
        fpva, gen, result = tiny_cuts
        for vec in result.vectors:
            assert not any(vec.expected.values())
            report = validate_vector(fpva, vec)
            assert report.ok, report.issues

    def test_single_sa1_detected_by_cuts_alone(self, tiny_cuts):
        fpva, gen, result = tiny_cuts
        tester = Tester(fpva)
        for valve in fpva.valves:
            chip = ChipUnderTest(fpva, [StuckAt1(valve)])
            assert tester.run(chip, result.vectors).fault_detected, valve


class TestTable1Counts:
    @pytest.mark.parametrize(
        "n,paper_nc", [(5, 8), (10, 18), (15, 28), (20, 38), (30, 58)]
    )
    def test_sweep_matches_paper(self, n, paper_nc):
        fpva = table1_layout(n)
        result = CutSetGenerator(fpva, strategy="sweep").generate()
        assert result.nc_cuts == paper_nc
        assert not result.uncovered


class TestClosureRepair:
    def test_chord_valve_added(self, tiny):
        # Junctions of a straight wall plus a dangling junction adjacent to
        # one of them: the chord valve must be forced in.
        wall_junctions = [Junction(0, 1), Junction(1, 1), Junction(1, 2)]
        forced = closure_repair(tiny, wall_junctions)
        duals = {frozenset(v.dual()) for v in forced}
        assert frozenset((Junction(0, 1), Junction(1, 1))) in duals
        assert frozenset((Junction(1, 1), Junction(1, 2))) in duals

    def test_no_spurious_closures(self, tiny):
        forced = closure_repair(tiny, [Junction(0, 1)])
        assert forced == set()


class TestWallThrough:
    def test_mopup_wall_contains_valve(self, tiny):
        gen = CutSetGenerator(tiny, strategy="sweep")
        for valve in tiny.valves[:6]:
            wall = gen._wall_through(valve)
            assert wall is not None
            assert valve in wall.valves
            assert gen.wall_separates(wall)

    def test_observability_excludes_shadowed(self, tiny):
        gen = CutSetGenerator(tiny, strategy="sweep")
        result = gen.generate()
        for wall, vec in zip(result.walls, result.vectors):
            observable = gen.observable_members(wall)
            assert observable <= wall.valves
