"""Solver backend tests, including differential HiGHS vs branch-and-bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import Model, SolveOptions, SolveStatus, solve

BACKENDS = ("highs", "branch-and-bound")


def _solve(m, backend):
    return solve(m, SolveOptions(backend=backend))


@pytest.mark.parametrize("backend", BACKENDS)
class TestBasics:
    def test_simple_cover(self, backend):
        m = Model()
        x = [m.binary_var() for _ in range(4)]
        m.add_constraint(x[0] + x[1] >= 1)
        m.add_constraint(x[2] + x[3] >= 1)
        m.minimize(Model.total(x))
        sol = _solve(m, backend)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(2.0)
        assert sol.check(m)

    def test_infeasible(self, backend):
        m = Model()
        a, b = m.binary_var(), m.binary_var()
        m.add_constraint(a + b >= 3)
        m.minimize(a + b)
        assert _solve(m, backend).status is SolveStatus.INFEASIBLE

    def test_maximize_mixed(self, backend):
        m = Model()
        y = m.integer_var(ub=7)
        z = m.continuous_var(ub=2.5)
        m.add_constraint(y + z <= 8)
        m.maximize(2 * y + z)
        sol = _solve(m, backend)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(15.0)
        assert sol.value(y) == pytest.approx(7)

    def test_equality_constraints(self, backend):
        m = Model()
        x = m.integer_var(ub=10)
        y = m.integer_var(ub=10)
        m.add_constraint(x + y == 7)
        m.add_constraint(x - y == 3)
        m.minimize(x)
        sol = _solve(m, backend)
        assert sol.is_optimal
        assert sol.int_value(x) == 5 and sol.int_value(y) == 2

    def test_unconstrained_zero(self, backend):
        m = Model()
        x = m.binary_var()
        m.minimize(x)
        sol = _solve(m, backend)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(0.0)

    def test_objective_constant(self, backend):
        m = Model()
        x = m.binary_var()
        m.add_constraint(x >= 1)
        m.minimize(x + 10)
        sol = _solve(m, backend)
        assert sol.objective == pytest.approx(11.0)

    def test_knapsack(self, backend):
        values = [6, 10, 12, 7]
        weights = [1, 2, 3, 2]
        m = Model()
        x = [m.binary_var() for _ in values]
        m.add_constraint(Model.total(w * xi for w, xi in zip(weights, x)) <= 5)
        m.maximize(Model.total(v * xi for v, xi in zip(values, x)))
        sol = _solve(m, backend)
        assert sol.is_optimal
        assert sol.objective == pytest.approx(23.0)  # items 0, 1 and 3


class TestBranchAndBoundSpecifics:
    def test_integrality_forces_branching(self):
        # LP relaxation is fractional (x = y = 1.5); MILP optimum differs.
        m = Model()
        x = m.integer_var(ub=10)
        y = m.integer_var(ub=10)
        m.add_constraint(2 * x + 2 * y <= 6)
        m.maximize(x + y)
        sol = _solve(m, "branch-and-bound")
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.0)
        assert sol.nodes >= 1

    def test_unbounded(self):
        m = Model()
        x = m.continuous_var()  # ub = +inf
        m.maximize(x)
        assert _solve(m, "branch-and-bound").status is SolveStatus.UNBOUNDED

    def test_node_limit_reports_honestly(self):
        from repro.ilp.branch_bound import solve_with_branch_and_bound

        m = Model()
        xs = [m.integer_var(ub=3) for _ in range(6)]
        m.add_constraint(Model.total(xs) >= 7)
        m.minimize(Model.total(xs))
        sol = solve_with_branch_and_bound(m, node_limit=1)
        assert sol.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.TIME_LIMIT,
        )


@st.composite
def random_milp(draw):
    """Small random MILPs with bounded feasible regions."""
    n = draw(st.integers(2, 5))
    n_cons = draw(st.integers(1, 5))
    m = Model()
    xs = []
    for i in range(n):
        if draw(st.booleans()):
            xs.append(m.integer_var(f"x{i}", ub=draw(st.integers(1, 5))))
        else:
            xs.append(m.binary_var(f"x{i}"))
    for _ in range(n_cons):
        coefs = [draw(st.integers(-3, 3)) for _ in range(n)]
        rhs = draw(st.integers(0, 12))
        expr = Model.total(c * x for c, x in zip(coefs, xs))
        m.add_constraint(expr <= rhs)
    obj_coefs = [draw(st.integers(-4, 4)) for _ in range(n)]
    m.minimize(Model.total(c * x for c, x in zip(obj_coefs, xs)))
    return m


class TestDifferential:
    @settings(max_examples=40, deadline=None)
    @given(random_milp())
    def test_backends_agree(self, m):
        """Both exact solvers must find the same optimal value."""
        a = _solve(m, "highs")
        b = _solve(m, "branch-and-bound")
        assert (a.status is SolveStatus.INFEASIBLE) == (
            b.status is SolveStatus.INFEASIBLE
        )
        if a.is_optimal and b.is_optimal:
            assert a.objective == pytest.approx(b.objective, abs=1e-5)
            assert a.check(m) and b.check(m)
