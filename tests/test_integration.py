"""End-to-end: generate → apply → detect → diagnose, plus property tests
over randomized layouts."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import TestGenerator, generate_suite, measure_coverage, validate_suite
from repro.fpva import FPVABuilder, Side, full_layout
from repro.fpva.geometry import Cell
from repro.ilp import SolveOptions
from repro.sim import (
    ChipUnderTest,
    StuckAt0,
    StuckAt1,
    Tester,
    run_sweep,
)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def bundle(self):
        fpva = full_layout(4, 4, name="e2e")
        suite = generate_suite(fpva)
        return fpva, suite, Tester(fpva)

    def test_clean_chip_passes(self, bundle):
        fpva, suite, tester = bundle
        assert not tester.run(ChipUnderTest(fpva), suite.all_vectors()).fault_detected

    def test_sweep_campaign_mirrors_paper(self, bundle):
        """Section IV: 1..5 random faults, all detected."""
        fpva, suite, tester = bundle
        sweep = run_sweep(fpva, suite.all_vectors(), trials=60, seed=42)
        for k, result in sweep.items():
            assert result.all_detected, (k, result.undetected_examples)

    def test_mixed_fault_types(self, bundle):
        fpva, suite, tester = bundle
        chip = ChipUnderTest(
            fpva,
            [StuckAt0(fpva.valves[0]), StuckAt1(fpva.valves[-1])],
        )
        assert tester.run(chip, suite.all_vectors()).fault_detected

    def test_suite_coverage_complete(self, bundle):
        fpva, suite, _ = bundle
        report = measure_coverage(fpva, suite.all_vectors())
        assert report.complete, report.summary()


def _random_layout(draw_obstacle_r, draw_obstacle_c, nr, nc, with_channel):
    builder = FPVABuilder(nr, nc, name="hypo")
    if draw_obstacle_r is not None:
        builder.obstacle(draw_obstacle_r, draw_obstacle_c)
    if with_channel:
        builder.channel(Cell(nr, 1), "east", 1)
    builder.source(Side.WEST, 1).sink(Side.EAST, nr)
    return builder.build()


@st.composite
def small_layouts(draw):
    nr = draw(st.integers(3, 5))
    nc = draw(st.integers(3, 5))
    with_obstacle = draw(st.booleans())
    obstacle = None
    if with_obstacle:
        # Keep it interior-ish and away from the corner ports.
        r = draw(st.integers(2, nr - 1))
        c = draw(st.integers(2, nc - 1))
        obstacle = (r, c)
    with_channel = draw(st.booleans())
    builder = FPVABuilder(nr, nc, name=f"hypo-{nr}x{nc}")
    if obstacle:
        builder.obstacle(*obstacle)
    if with_channel and obstacle not in ((nr - 1, 1), (nr - 1, 2)):
        builder.channel(Cell(nr - 1, 1), "east", 1)
    builder.source(Side.WEST, 1).sink(Side.EAST, nr)
    return builder.build()


@pytest.mark.slow
class TestGenerationProperties:
    """Invariants over randomized small layouts (hypothesis)."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(small_layouts())
    def test_generated_suite_always_valid(self, fpva):
        suite = generate_suite(
            fpva,
            include_leakage=False,
            solve_options=SolveOptions(time_limit=60),
        )
        report = validate_suite(fpva, suite.all_vectors())
        assert report.ok, report.issues[:3]

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(small_layouts(), st.randoms(use_true_random=False))
    def test_random_double_faults_detected(self, fpva, rng):
        # Minimal path/cut generation alone can miss mutually-masking
        # SA0+SA1 pairs (hypothesis found one on a 5x4 obstacle layout,
        # pinned in tests/test_repair.py); double-fault hardening audits
        # for those pairs and synthesizes breaker vectors.
        suite = generate_suite(
            fpva,
            include_leakage=False,
            solve_options=SolveOptions(time_limit=60),
            harden_double_faults=True,
        )
        tester = Tester(fpva)
        valves = list(fpva.valves)
        for _ in range(10):
            v1, v2 = rng.sample(valves, 2)
            faults = [
                StuckAt0(v1) if rng.random() < 0.5 else StuckAt1(v1),
                StuckAt0(v2) if rng.random() < 0.5 else StuckAt1(v2),
            ]
            assert tester.detects(faults, suite.all_vectors()), faults
