"""The generic path-cover ILP: constraints (1)-(4), (6), (7), (9), caps."""

import networkx as nx
import pytest

from repro.core.pathmodel import (
    PathCoverError,
    PathCoverILP,
    PathCoverProblem,
    edge_key,
    solve_path_cover,
)
from repro.ilp import SolveOptions

OPTS = SolveOptions(time_limit=60)


def path_graph(n):
    g = nx.path_graph(n)
    return g


def grid_graph(rows, cols):
    return nx.grid_2d_graph(rows, cols)


def all_keys(g):
    return {edge_key(u, v) for u, v in g.edges}


class TestBasicCover:
    def test_line_graph_single_path(self):
        g = path_graph(5)
        prob = PathCoverProblem(g, [0], [4], all_keys(g))
        sol = solve_path_cover(prob, solve_options=OPTS)
        assert len(sol.paths) == 1
        assert sol.paths[0].nodes == (0, 1, 2, 3, 4)

    def test_cycle_needs_two_paths(self):
        g = nx.cycle_graph(6)
        prob = PathCoverProblem(g, [0], [3], all_keys(g))
        sol = solve_path_cover(prob, solve_options=OPTS)
        # Both halves of the cycle must be walked: two simple 0→3 paths.
        assert len(sol.paths) == 2
        assert sol.covered() == all_keys(g)

    def test_grid_cover(self):
        g = grid_graph(3, 3)
        prob = PathCoverProblem(g, [(0, 0)], [(2, 2)], all_keys(g))
        sol = solve_path_cover(prob, solve_options=OPTS)
        assert sol.covered() == all_keys(g)
        assert sol.proven_optimal

    def test_unused_paths_stay_empty(self):
        g = path_graph(4)
        prob = PathCoverProblem(g, [0], [3], all_keys(g))
        ilp = PathCoverILP(prob, num_paths=3)
        sol = ilp.solve(OPTS)
        assert len(sol.paths) == 1  # p-ordering packs used paths first

    def test_disconnected_terminals_infeasible(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        prob = PathCoverProblem(g, [0], [3], {edge_key(0, 1)})
        assert PathCoverILP(prob, 1).solve(OPTS) is None

    def test_impossible_cover_raises(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)  # unreachable edge demanded in cover
        prob = PathCoverProblem(g, [0], [1], all_keys(g))
        with pytest.raises(PathCoverError):
            solve_path_cover(prob, max_paths=3, solve_options=OPTS)


class TestStructure:
    def test_paths_are_simple(self):
        g = grid_graph(3, 4)
        prob = PathCoverProblem(g, [(0, 0)], [(2, 3)], all_keys(g))
        sol = solve_path_cover(prob, solve_options=OPTS)
        for p in sol.paths:
            assert len(set(p.nodes)) == len(p.nodes)
            for u, v in zip(p.nodes, p.nodes[1:]):
                assert g.has_edge(u, v)

    def test_terminal_endpoints(self):
        g = grid_graph(3, 3)
        prob = PathCoverProblem(g, [(0, 0), (0, 2)], [(2, 0), (2, 2)], all_keys(g))
        sol = solve_path_cover(prob, solve_options=OPTS)
        for p in sol.paths:
            assert p.start in {(0, 0), (0, 2)}
            assert p.end in {(2, 0), (2, 2)}

    def test_loop_exclusion(self):
        """Without flow conservation a disjoint loop could fake coverage.

        On a cycle-with-tail graph, covering the cycle edges requires real
        paths from the terminal through the cycle, not a floating loop.
        """
        g = nx.cycle_graph(4)  # 0-1-2-3-0
        g.add_edge(4, 0)
        g.add_edge(5, 4)
        prob = PathCoverProblem(g, [5], [2], all_keys(g))
        sol = solve_path_cover(prob, solve_options=OPTS)
        for p in sol.paths:
            assert p.start == 5 and p.end == 2  # genuine connected paths
        assert sol.covered() == all_keys(g)


class TestClosureConstraint:
    def test_constraint_9_forces_edge(self):
        """If both endpoints of a closure edge are visited, it must be used.

        Square 0-1-2-3 with closure on edge (0,3): a path 0→1→2→3 visits 0
        and 3 without the edge — forbidden; the only legal single path from
        0 to 3 is the direct edge (degree-2 incidence makes detour+closure
        contradictory).
        """
        g = nx.cycle_graph(4)
        closure = {edge_key(0, 3)}
        prob = PathCoverProblem(g, [0], [3], set(), closure_edges=closure)
        ilp = PathCoverILP(prob, 1, fixed_usage=True)
        sol = ilp.solve(OPTS)
        assert sol is not None
        assert sol.paths[0].nodes == (0, 3)


class TestRegionCaps:
    def test_cap_limits_boundary_crossings(self):
        """A capped region boundary may be crossed at most twice."""
        # Ladder: two rails 0-1-2-3 and 4-5-6-7 with rungs; region = {1, 5}
        g = nx.Graph()
        rails = [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]
        rungs = [(0, 4), (1, 5), (2, 6), (3, 7)]
        g.add_edges_from(rails + rungs)
        boundary = frozenset(
            {edge_key(0, 1), edge_key(1, 2), edge_key(4, 5), edge_key(5, 6), edge_key(1, 5)}
        )
        prob = PathCoverProblem(
            g, [0], [3], set(), region_caps=[(boundary, 2)]
        )
        sol = PathCoverILP(prob, 1, fixed_usage=True).solve(OPTS)
        assert sol is not None
        used_boundary = set(sol.paths[0].edges) & boundary
        assert len(used_boundary) <= 2


class TestWeightedObjective:
    def test_max_coverage_mode(self):
        g = grid_graph(3, 3)
        weights = {k: 1.0 for k in all_keys(g)}
        prob = PathCoverProblem(g, [(0, 0)], [(2, 2)], set())
        ilp = PathCoverILP(
            prob,
            1,
            fixed_usage=True,
            objective_weights=weights,
            required_coverage=False,
        )
        sol = ilp.solve(OPTS)
        assert sol is not None
        # A single simple path in a 3x3 grid covers at most 8 edges
        # (Hamiltonian); the maximizer should find one.
        assert len(sol.paths[0].edges) == 8

    def test_required_and_forbidden_edges(self):
        g = grid_graph(3, 3)
        must = edge_key((1, 0), (1, 1))
        banned = edge_key((0, 0), (0, 1))
        prob = PathCoverProblem(g, [(0, 0)], [(2, 2)], set())
        ilp = PathCoverILP(
            prob,
            1,
            fixed_usage=True,
            required_edges_first_path=[must],
            forbidden_edges=[banned],
        )
        sol = ilp.solve(OPTS)
        assert sol is not None
        assert must in sol.paths[0].edges
        assert banned not in sol.paths[0].edges

    def test_lower_bound_used(self):
        g = path_graph(3)
        prob = PathCoverProblem(g, [0], [2], all_keys(g))
        assert prob.coverage_lower_bound() == 1
