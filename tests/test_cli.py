"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.size == 5 and args.strategy == "auto"

    def test_table1_size_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--size", "7"])


class TestCommands:
    def test_show(self, capsys):
        assert main(["show", "--size", "3", "--full"]) == 0
        out = capsys.readouterr().out
        assert "3x3 cells" in out and "S" in out and "M" in out

    def test_generate_with_json(self, tmp_path, capsys):
        out_file = tmp_path / "suite.json"
        code = main(
            ["generate", "--size", "3", "--full", "--out", str(out_file), "--coverage"]
        )
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["dimensions"] == [3, 3]
        assert payload["flow_paths"]
        out = capsys.readouterr().out
        assert "coverage:" in out and "0 missing" in out

    def test_campaign_exit_code(self, capsys):
        code = main(
            ["campaign", "--size", "3", "--full", "--trials", "10", "--max-faults", "2"]
        )
        assert code == 0
        assert "100.00%" in capsys.readouterr().out

    def test_warm_then_cached_diagnose_and_campaign(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = ["--size", "3", "--full", "--cache-dir", cache]
        assert main(["warm", *base]) == 0
        assert "cold" in capsys.readouterr().out
        assert main(["warm", *base]) == 0
        assert "warm" in capsys.readouterr().out
        assert main(["diagnose", *base, "--trials", "2", "--adaptive",
                     "--scenario", "stuck-at"]) == 0
        assert "warm-loaded" in capsys.readouterr().out
        # Cardinality participates in the digest: a card-2 warm is hit
        # only by a card-2 diagnose.
        assert main(["warm", *base, "--cardinality", "2"]) == 0
        capsys.readouterr()
        assert main(["diagnose", *base, "--trials", "1",
                     "--cardinality", "2"]) == 0
        assert "warm-loaded" in capsys.readouterr().out
        assert main(["campaign", *base, "--trials", "10",
                     "--max-faults", "2"]) == 0
        assert "100.00%" in capsys.readouterr().out

    def test_warm_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warm", "--size", "3"])

    def test_warm_table1_then_cached_generate(self, tmp_path, capsys):
        """`warm --table1` prebuilds generation-layout kernels; `generate
        --cache-dir` then warm-loads instead of compiling."""
        cache = str(tmp_path / "cache")
        assert main(["warm", "--cache-dir", cache, "--table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("(cold") == 5 and "table1-30x30" in out
        assert main(["warm", "--cache-dir", cache, "--table1"]) == 0
        assert capsys.readouterr().out.count("(warm") == 5

        from repro.context import ExecutionContext
        from repro.fpva import table1_layout

        ctx = ExecutionContext(table1_layout(5), cache_dir=cache)
        ctx.kernel
        assert ctx.kernel_loads == 1 and ctx.kernel_compiles == 0
        assert main(["generate", "--size", "5", "--cache-dir", cache]) == 0
        assert "nv=" in capsys.readouterr().out
