"""ExecutionContext: one compiled-kernel session through every layer.

Covers the PR-5 tentpole and satellites:

* exactly **one** kernel compile per context across generation, coverage,
  hardening, campaigns and dictionary diagnosis;
* the unified observability signatures (canonical order, both historical
  orders via the keyword-compatible shim, deprecation warning);
* batched-vs-reference equivalence properties: kernel-session coverage
  observability sets and hardening output are identical to the
  ``engine="object"`` object-BFS reference across random layouts,
  vectors and seeds;
* context plumbing (store warm starts, evaluator memoization, seed
  streams, legacy-keyword conflict detection).
"""

from __future__ import annotations

import random

import pytest

from repro.context import ExecutionContext, Session
from repro.core import (
    TestGenerator,
    measure_coverage,
    sa0_observable_valves,
    sa1_observable_valves,
)
from repro.core.repair import find_masked_stuck_pairs, harden_double_faults
from repro.core.vectors import TestSet, TestVector, VectorKind
from repro.engine import run_campaign as run_campaign_sharded
from repro.fpva import FPVABuilder, Side, full_layout, table1_layout
from repro.fpva.geometry import Cell
from repro.sim import (
    ChipUnderTest,
    FaultDictionary,
    PressureSimulator,
    ReachabilityKernel,
    run_campaign,
)
from repro.engine import AdaptiveDiagnoser


def _random_vectors(fpva, seed: int, count: int) -> list[TestVector]:
    """Synthetic vectors with object-engine ground-truth expectations."""
    rng = random.Random(seed)
    sim = PressureSimulator(fpva, engine="object")
    valves = sorted(fpva.valves)
    out = []
    for i in range(count):
        k = rng.randrange(1, len(valves) + 1)
        open_set = frozenset(rng.sample(valves, k))
        out.append(
            TestVector(
                name=f"rand{i}",
                kind=VectorKind.FLOW_PATH,
                open_valves=open_set,
                expected=sim.meter_readings(open_set),
            )
        )
    return out


def _copy_testset(ts: TestSet) -> TestSet:
    return TestSet(
        fpva=ts.fpva,
        flow_paths=list(ts.flow_paths),
        cut_sets=list(ts.cut_sets),
        leakage=list(ts.leakage),
    )


class TestExecutionContext:
    def test_session_alias(self):
        assert Session is ExecutionContext

    def test_engine_validated(self, small):
        with pytest.raises(ValueError, match="unknown engine"):
            ExecutionContext(small, engine="quantum")

    def test_resolve_checks_array_identity(self, small, tiny):
        ctx = ExecutionContext(small)
        assert ExecutionContext.resolve(ctx, small) is ctx
        with pytest.raises(ValueError, match="created for array"):
            ExecutionContext.resolve(ctx, tiny)
        with pytest.raises(TypeError):
            ExecutionContext.resolve("not-a-context", small)

    def test_foreign_kernel_rejected(self, small, tiny):
        kernel = ReachabilityKernel(tiny)
        with pytest.raises(ValueError, match="different array"):
            ExecutionContext(small, kernel=kernel)

    def test_shared_lazy_machinery(self, small):
        ctx = ExecutionContext(small)
        assert ctx.kernel_compiles == 0  # nothing compiled yet
        assert ctx.tester.simulator is ctx.simulator
        assert ctx.simulator.kernel is ctx.kernel
        assert ctx.kernel_compiles == 1

    def test_evaluator_memoized_by_suite(self, small):
        ctx = ExecutionContext(small)
        vectors = _random_vectors(small, seed=3, count=4)
        ev1 = ctx.evaluator(vectors)
        ev2 = ctx.evaluator(list(vectors))  # same content, fresh list
        assert ev1 is ev2
        ev3 = ctx.evaluator(vectors[:2])
        assert ev3 is not ev1

    def test_object_session_refuses_batching(self, small):
        ctx = ExecutionContext(small, engine="object")
        assert not ctx.batched
        with pytest.raises(RuntimeError, match="engine='object'"):
            ctx.evaluator(_random_vectors(small, seed=1, count=2))

    def test_store_warm_start_bit_identical(self, small, tmp_path):
        cold = ExecutionContext(small, cache_dir=tmp_path)
        vectors = _random_vectors(small, seed=5, count=6)
        cold_readings = [
            cold.simulator.meter_readings(v.open_valves) for v in vectors
        ]
        assert cold.kernel_compiles == 1 and cold.kernel_loads == 0

        warm = ExecutionContext(small, cache_dir=tmp_path)
        warm_readings = [
            warm.simulator.meter_readings(v.open_valves) for v in vectors
        ]
        assert warm.kernel_compiles == 0 and warm.kernel_loads == 1
        assert warm_readings == cold_readings

    def test_rng_streams_deterministic_and_distinct(self, small):
        ctx = ExecutionContext(small, seed=42)
        assert ctx.rng(1).random() == ctx.rng(1).random()
        assert ctx.rng(1).random() != ctx.rng(2).random()
        assert ctx.rng().random() == random.Random(42).random()


class TestOneCompilePerContext:
    def test_full_pipeline_compiles_exactly_once(self, monkeypatch):
        """Generation + hardening + coverage + campaigns + dictionary +
        adaptive diagnosis through one session: one kernel compile total."""
        fpva = full_layout(4, 4, name="one-compile-4x4")
        compiles: list = []
        original = ReachabilityKernel.__init__

        def counting(self, array):
            compiles.append(array)
            original(self, array)

        monkeypatch.setattr(ReachabilityKernel, "__init__", counting)

        ctx = ExecutionContext(fpva)
        suite = TestGenerator(
            fpva, harden_double_faults=True, context=ctx
        ).generate().testset
        vectors = suite.all_vectors()
        measure_coverage(fpva, vectors, context=ctx)
        run_campaign(fpva, vectors, num_faults=2, trials=10, context=ctx)
        run_campaign_sharded(
            fpva, vectors, num_faults=2, trials=20, workers=1, context=ctx
        )
        dictionary = FaultDictionary(fpva, vectors, context=ctx)
        engine = AdaptiveDiagnoser(dictionary, context=ctx)
        engine.diagnose(ChipUnderTest(fpva, ()))
        assert len(compiles) == 1
        assert ctx.kernel_compiles == 1


class TestUnifiedObservabilitySignatures:
    @pytest.fixture(scope="class")
    def setup(self, table5):
        ctx = ExecutionContext(table5)
        vector = TestGenerator(
            table5, include_leakage=False, context=ctx
        ).generate().testset.flow_paths[0]
        return table5, ctx, vector

    def test_sa0_accepts_context_simulator_and_legacy(self, setup):
        fpva, ctx, vector = setup
        canonical = sa0_observable_valves(ctx, vector)
        assert canonical  # a flow-path vector observes its own valves
        assert sa0_observable_valves(ctx.simulator, vector) == canonical
        assert sa0_observable_valves(ctx.simulator, vector, fpva) == canonical
        assert (
            sa0_observable_valves(
                simulator=ctx.simulator, vector=vector, fpva=fpva
            )
            == canonical
        )

    def test_sa1_canonical_matches_legacy_order(self, setup):
        fpva, ctx, vector = setup
        canonical = sa1_observable_valves(ctx, vector)
        with pytest.warns(DeprecationWarning, match="argument order"):
            legacy = sa1_observable_valves(fpva, ctx.simulator, vector)
        assert legacy == canonical
        assert (
            sa1_observable_valves(
                fpva=fpva, simulator=ctx.simulator, vector=vector
            )
            == canonical
        )

    def test_both_signatures_are_identical(self, setup):
        fpva, ctx, vector = setup
        # The satellite's point: one calling convention for both checks.
        for func in (sa0_observable_valves, sa1_observable_valves):
            assert func(ctx, vector) == func(ctx, vector, fpva)

    def test_missing_vector_rejected(self, setup):
        _, ctx, _ = setup
        with pytest.raises(TypeError, match="TestVector"):
            sa0_observable_valves(ctx)

    def test_missing_simulator_rejected(self, setup):
        fpva, _, vector = setup
        with pytest.raises(TypeError, match="ExecutionContext or PressureSimulator"):
            sa0_observable_valves(vector=vector)


def _layouts():
    return [
        full_layout(4, 4, name="prop-4x4"),
        table1_layout(5),
        (
            FPVABuilder(5, 5, name="prop-obstacle")
            .obstacle(3, 3)
            .channel(Cell(5, 2), "east", 2)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 5)
            .build()
        ),
        (
            FPVABuilder(4, 5, name="prop-two-sink")
            .source(Side.WEST, 1)
            .sink(Side.EAST, 2, name="o1")
            .sink(Side.SOUTH, 5, name="o2")
            .build()
        ),
    ]


class TestBatchedEquivalenceProperties:
    """Satellite: batched results == object-BFS reference, property-style."""

    @pytest.mark.parametrize("layout_index", range(4))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_observability_sets_identical(self, layout_index, seed):
        fpva = _layouts()[layout_index]
        kernel_ctx = ExecutionContext(fpva)
        object_ctx = ExecutionContext(fpva, engine="object")
        for vector in _random_vectors(fpva, seed=seed, count=8):
            assert sa0_observable_valves(kernel_ctx, vector) == (
                sa0_observable_valves(object_ctx, vector)
            ), vector
            assert sa1_observable_valves(kernel_ctx, vector) == (
                sa1_observable_valves(object_ctx, vector)
            ), vector

    @pytest.mark.parametrize("layout_index", range(4))
    def test_suite_coverage_identical(self, layout_index):
        fpva = _layouts()[layout_index]
        vectors = _random_vectors(fpva, seed=7, count=6)
        batched = measure_coverage(
            fpva, vectors, context=ExecutionContext(fpva)
        )
        reference = measure_coverage(
            fpva, vectors, context=ExecutionContext(fpva, engine="object")
        )
        assert batched.sa0_covered == reference.sa0_covered
        assert batched.sa1_covered == reference.sa1_covered
        assert batched.leak_pairs_covered == reference.leak_pairs_covered

    @pytest.mark.parametrize("drop_cuts", [0, 1, 2])
    def test_hardening_identical_and_bit_identical_vectors(self, drop_cuts):
        """Batched and serial hardening agree on the audit *and* emit
        bit-identical breaker vectors, including on suites weakened to
        force masked pairs."""
        fpva = (
            FPVABuilder(5, 4, name="prop-masking")
            .obstacle(3, 2)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 5)
            .build()
        )
        suite = TestGenerator(
            fpva, path_strategy="greedy", cut_strategy="sweep",
            include_leakage=False,
        ).generate().testset
        if drop_cuts:
            suite.cut_sets = suite.cut_sets[:-drop_cuts]

        serial_ts = _copy_testset(suite)
        batched_ts = _copy_testset(suite)
        serial = harden_double_faults(
            fpva, serial_ts, context=ExecutionContext(fpva, engine="object")
        )
        batched = harden_double_faults(
            fpva, batched_ts, context=ExecutionContext(fpva)
        )
        assert batched.pairs_audited == serial.pairs_audited
        assert batched.pairs_missed == serial.pairs_missed
        assert batched.vectors_added == serial.vectors_added
        assert batched.pairs_unrepaired == serial.pairs_unrepaired
        assert batched_ts.flow_paths == serial_ts.flow_paths
        assert batched_ts.cut_sets == serial_ts.cut_sets

    def test_audit_fallback_on_partial_expectations(self, small):
        """Vectors whose expectations do not cover every sink cannot be
        compared row-wise; the audit silently takes the serial path and
        both engines still agree."""
        sim = PressureSimulator(small, engine="object")
        opens = frozenset(list(small.valves)[:6])
        readings = sim.meter_readings(opens)
        partial = TestVector(
            "partial",
            VectorKind.FLOW_PATH,
            opens,
            dict(list(readings.items())[:0]),  # no expectations at all
        )
        kernel_audit = find_masked_stuck_pairs(
            small, [partial], context=ExecutionContext(small)
        )
        object_audit = find_masked_stuck_pairs(
            small, [partial], context=ExecutionContext(small, engine="object")
        )
        assert kernel_audit == object_audit


class TestLegacyKeywordShims:
    def test_campaign_context_conflicts_rejected(self, small):
        ctx = ExecutionContext(small)
        vectors = _random_vectors(small, seed=9, count=3)
        with pytest.raises(ValueError, match="not both"):
            run_campaign(
                small, vectors, num_faults=1, trials=2,
                context=ctx, backend="legacy",
            )
        with pytest.raises(ValueError, match="not both"):
            FaultDictionary(
                small, vectors, context=ctx, kernel=ReachabilityKernel(small)
            )
        with pytest.raises(ValueError, match="not both"):
            run_campaign_sharded(
                small, vectors, num_faults=1, trials=2,
                context=ctx, cache_dir="/tmp/nope",
            )

    def test_campaign_context_matches_legacy_kwargs(self, small):
        suite = TestGenerator(small, include_leakage=False).generate().testset
        vectors = suite.all_vectors()
        via_context = run_campaign(
            small, vectors, num_faults=2, trials=40, seed=3,
            context=ExecutionContext(small),
        )
        via_kwargs = run_campaign(
            small, vectors, num_faults=2, trials=40, seed=3, backend="legacy"
        )
        assert via_context == via_kwargs

    def test_dictionary_context_matches_legacy(self, small, tmp_path):
        suite = TestGenerator(small, include_leakage=False).generate().testset
        ctx = ExecutionContext(small, cache_dir=tmp_path)
        with_context = FaultDictionary(
            small, suite.all_vectors(), context=ctx
        )
        legacy = FaultDictionary(
            small, suite.all_vectors(), backend="legacy"
        )
        assert list(with_context._table.items()) == list(legacy._table.items())
        # The context's store addressed the build: a rebuild warm-loads.
        warm = FaultDictionary(small, suite.all_vectors(), context=ctx)
        assert warm.warm_loaded
