"""Double-fault hardening (core/repair.py).

Pins the hypothesis-found counterexample that shipped as a known failure:
on a 5x4 layout with an obstacle at (3,2), the minimal path/cut suite
misses the mutually-masking pair SA0(Edge[2,2|2,3]) + SA1(Edge[1,2|2,2])
— the stuck-open valve re-routes pressure around the broken one, and the
broken one severs the leak route that would expose the stuck-open one.
"""

import pytest

from repro.core import (
    TestGenerator,
    find_masked_stuck_pairs,
    generate_suite,
    validate_suite,
)
from repro.core.vectors import VectorKind
from repro.fpva import FPVABuilder, Side, full_layout
from repro.fpva.geometry import Cell, Edge
from repro.ilp import SolveOptions
from repro.sim import StuckAt0, StuckAt1, Tester

MASKED_SA0 = Edge(Cell(2, 2), Cell(2, 3))
MASKED_SA1 = Edge(Cell(1, 2), Cell(2, 2))
MASKED_PAIR = [StuckAt0(MASKED_SA0), StuckAt1(MASKED_SA1)]


@pytest.fixture(scope="module")
def counterexample_layout():
    return (
        FPVABuilder(5, 4, name="masking-cex")
        .obstacle(3, 2)
        .source(Side.WEST, 1)
        .sink(Side.EAST, 5)
        .build()
    )


@pytest.fixture(scope="module")
def hardened(counterexample_layout):
    generated = TestGenerator(
        counterexample_layout,
        include_leakage=False,
        solve_options=SolveOptions(time_limit=60),
        harden_double_faults=True,
    ).generate()
    assert generated.report.hardening is not None
    return generated


@pytest.mark.slow
class TestCounterexample:
    def test_unhardened_suite_misses_the_pair(self, counterexample_layout):
        """The pinned gap: without hardening, the pair stays invisible."""
        fpva = counterexample_layout
        suite = generate_suite(
            fpva, include_leakage=False, solve_options=SolveOptions(time_limit=60)
        )
        assert not Tester(fpva).detects(MASKED_PAIR, suite.all_vectors())

    def test_hardened_suite_detects_the_pair(self, counterexample_layout, hardened):
        report = hardened.report.hardening
        assert report.ok, report.pairs_unrepaired
        assert (MASKED_PAIR[0], MASKED_PAIR[1]) in report.pairs_missed
        tester = Tester(counterexample_layout)
        assert tester.detects(MASKED_PAIR, hardened.testset.all_vectors())

    def test_hardened_suite_audits_clean(self, counterexample_layout, hardened):
        _, missed = find_masked_stuck_pairs(
            counterexample_layout, hardened.testset.all_vectors()
        )
        assert missed == []

    def test_breaker_vectors_are_valid(self, counterexample_layout, hardened):
        """Synthesized vectors obey the same legality rules as generated
        ones (simple observable paths / genuine cuts, stored expectations
        match simulation)."""
        added = hardened.report.hardening.vectors_added
        assert added
        assert all(v.name.startswith("harden") for v in added)
        report = validate_suite(counterexample_layout, hardened.testset.all_vectors())
        assert report.ok, report.issues[:3]

    def test_hardened_counts_reflected_in_report(self, hardened):
        testset = hardened.testset
        assert hardened.report.np_paths == len(testset.flow_paths)
        assert hardened.report.nc_cuts == len(testset.cut_sets)
        kinds = {v.kind for v in hardened.report.hardening.vectors_added}
        assert kinds <= {VectorKind.FLOW_PATH, VectorKind.CUT_SET}


class TestHardeningGeneral:
    def test_clean_suite_needs_no_repair(self):
        """A full 4x4 array's suite already detects all mixed pairs."""
        fpva = full_layout(4, 4, name="harden-clean")
        generated = TestGenerator(fpva, harden_double_faults=True).generate()
        report = generated.report.hardening
        assert report.pairs_missed == []
        assert report.vectors_added == []
        assert report.pairs_audited == fpva.valve_count * (fpva.valve_count - 1)
