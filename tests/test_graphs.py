"""Cell-graph / junction-graph construction and planar duality."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpva import FPVABuilder, Side, full_layout
from repro.fpva.components import EdgeKind
from repro.fpva.geometry import Cell, Junction, edge_between
from repro.fpva.graph import (
    UnsupportedTopologyError,
    boundary_arcs,
    cell_graph,
    junction_graph,
)
from repro.sim.pressure import PressureSimulator


class TestCellGraph:
    def test_nodes_and_edges(self, tiny):
        g = cell_graph(tiny)
        # 9 cells + 2 ports; 12 valves + 2 port edges.
        assert g.number_of_nodes() == 11
        assert g.number_of_edges() == 14

    def test_edge_kinds(self, table5):
        g = cell_graph(table5)
        kinds = {d["kind"] for _, _, d in g.edges(data=True)}
        assert kinds == {EdgeKind.VALVE, EdgeKind.CHANNEL, EdgeKind.PORT}

    def test_obstacle_cell_absent(self, obstacle_array):
        g = cell_graph(obstacle_array)
        assert Cell(3, 3) not in g


class TestJunctionGraph:
    def test_full_grid_dual_edge_count(self, tiny):
        g = junction_graph(tiny)
        assert g.number_of_edges() == tiny.valve_count

    def test_channel_dual_edges_missing(self, table5):
        g = junction_graph(table5)
        # 39 valves -> 39 closable dual edges; the channel has none.
        closable = [
            (u, v) for u, v, d in g.edges(data=True) if d["valve"] is not None
        ]
        assert len(closable) == 39

    def test_obstacle_dual_edges_free(self, obstacle_array):
        g = junction_graph(obstacle_array)
        free = [
            (u, v) for u, v, d in g.edges(data=True) if d["valve"] is None
        ]
        assert len(free) == 4  # the four sealed sides of the 1x1 obstacle

    def test_dual_valves_bijective(self, tiny):
        g = junction_graph(tiny)
        valves = [d["valve"] for _, _, d in g.edges(data=True) if d["valve"]]
        assert len(valves) == len(set(valves)) == tiny.valve_count


class TestBoundaryArcs:
    def test_arcs_disjoint_nonempty(self, tiny):
        arcs = boundary_arcs(tiny)
        assert arcs.start_arc and arcs.end_arc
        assert not (set(arcs.start_arc) & set(arcs.end_arc))

    def test_arcs_stop_at_sink(self, two_sink_array):
        arcs = boundary_arcs(two_sink_array)
        sink_junctions = set()
        for port in two_sink_array.sinks:
            sink_junctions.update(port.gap(4, 4))
        assert arcs.start_arc[-1] in sink_junctions
        assert arcs.end_arc[-1] in sink_junctions

    def test_source_sink_sharing_junction_rejected(self):
        fpva = (
            FPVABuilder(3, 3)
            .source(Side.WEST, 1)
            .sink(Side.WEST, 2)
            .build()
        )
        with pytest.raises(UnsupportedTopologyError):
            boundary_arcs(fpva)


class TestDuality:
    """A dual path between the two arcs separates sources from sinks."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 6), st.integers(3, 6), st.integers(1, 5))
    def test_straight_wall_separates(self, nr, nc, j):
        if j >= nc:
            j = nc - 1
        fpva = full_layout(nr, nc)
        g = junction_graph(fpva)
        nodes = [Junction(r, j) for r in range(nr + 1)]
        wall_valves = set()
        for u, w in zip(nodes, nodes[1:]):
            wall_valves.add(g.edges[u, w]["valve"])
        sim = PressureSimulator(fpva)
        open_valves = frozenset(fpva.valve_set - wall_valves)
        assert sim.sink_separated(open_valves)

    def test_incomplete_wall_does_not_separate(self, tiny):
        g = junction_graph(tiny)
        nodes = [Junction(r, 1) for r in range(3)]  # stops one short
        wall_valves = {g.edges[u, w]["valve"] for u, w in zip(nodes, nodes[1:])}
        sim = PressureSimulator(tiny)
        assert not sim.sink_separated(frozenset(tiny.valve_set - wall_valves))
