"""TestGenerator facade, reports, vectors and ASCII rendering."""

import json

import pytest

from repro.core import TestGenerator, generate_suite
from repro.core.render import coverage_map, render_array, render_paths, render_vector
from repro.core.testgen import GenerationReport
from repro.core.vectors import TestSet, TestVector, VectorKind, vector_from_open_set
from repro.fpva import full_layout, table1_layout
from repro.sim.pressure import PressureSimulator


@pytest.fixture(scope="module")
def generated5():
    fpva = table1_layout(5)
    return fpva, TestGenerator(fpva).generate()


class TestTestGenerator:
    def test_sections_populated(self, generated5):
        fpva, result = generated5
        suite = result.testset
        assert suite.np_paths > 0
        assert suite.nc_cuts > 0
        assert suite.nl_leak > 0
        assert suite.total == suite.np_paths + suite.nc_cuts + suite.nl_leak

    def test_report_columns(self, generated5):
        fpva, result = generated5
        report = result.report
        assert report.nv == 39
        assert report.np_paths == len(result.testset.flow_paths)
        assert report.total_vectors == result.testset.total
        assert report.total_seconds >= 0
        assert "nv=" in report.row()

    def test_total_in_paper_regime(self, generated5):
        _, result = generated5
        # Paper 5x5: N = 17.  Accept the same order (< 2x).
        assert result.report.total_vectors <= 34

    def test_strategy_validation(self):
        fpva = full_layout(3, 3)
        with pytest.raises(ValueError):
            TestGenerator(fpva, path_strategy="quantum")
        with pytest.raises(ValueError):
            TestGenerator(fpva, cut_strategy="quantum")

    def test_greedy_strategy(self):
        fpva = full_layout(4, 4)
        suite = generate_suite(fpva, path_strategy="greedy", include_leakage=False)
        assert suite.np_paths > 0

    def test_auto_uses_hierarchical_for_large(self):
        fpva = table1_layout(15)
        gen = TestGenerator(fpva)
        assert gen._resolve_path_strategy() == "hierarchical"

    def test_auto_uses_direct_for_small(self):
        fpva = full_layout(5, 5)
        gen = TestGenerator(fpva)
        assert gen._resolve_path_strategy() == "direct"


class TestVectors:
    def test_state_queries(self, generated5):
        fpva, result = generated5
        vec = result.testset.flow_paths[0]
        opened = next(iter(vec.open_valves))
        closed = next(iter(vec.closed_valves(fpva)))
        assert vec.state_of(opened).value == "open"
        assert vec.state_of(closed).value == "closed"

    def test_bogus_open_edge_rejected(self, generated5):
        fpva, _ = generated5
        channel = next(iter(fpva.channels))
        with pytest.raises(ValueError):
            vector_from_open_set(
                fpva, "bad", VectorKind.FLOW_PATH, [channel], {}
            )

    def test_json_round_trip(self, generated5):
        fpva, result = generated5
        payload = json.loads(result.testset.to_json())
        assert payload["array"] == fpva.name
        assert len(payload["flow_paths"]) == result.testset.np_paths
        first = payload["flow_paths"][0]
        assert set(first) == {"name", "kind", "open_valves", "expected"}

    def test_summary_text(self, generated5):
        _, result = generated5
        text = result.testset.summary()
        assert "n_p=" in text and "n_c=" in text

    def test_iteration_order(self, generated5):
        _, result = generated5
        kinds = [v.kind for v in result.testset]
        boundary1 = kinds.index(VectorKind.CUT_SET)
        assert all(k is VectorKind.FLOW_PATH for k in kinds[:boundary1])


class TestRender:
    def test_array_rendering(self, generated5):
        fpva, _ = generated5
        art = render_array(fpva)
        assert "o" in art and "S" in art and "M" in art and "=" in art

    def test_obstacles_rendered(self):
        fpva = table1_layout(15)
        assert "#" in render_array(fpva)

    def test_path_vector_rendering(self, generated5):
        fpva, result = generated5
        art = render_vector(fpva, result.testset.flow_paths[0])
        assert "-" in art or "|" in art

    def test_cut_vector_rendering(self, generated5):
        fpva, result = generated5
        art = render_vector(fpva, result.testset.cut_sets[0])
        assert "x" in art

    def test_render_paths_panels(self, generated5):
        fpva, result = generated5
        art = render_paths(fpva, result.testset.flow_paths[:2])
        assert art.count("---") >= 2

    def test_coverage_map(self, generated5):
        fpva, result = generated5
        art = coverage_map(fpva, result.testset.flow_paths)
        assert "0" not in art.replace("o", "")  # every valve opened somewhere
