"""Suite validation and the paper's two-fault detection guarantee."""

import pytest

from repro.core import generate_suite
from repro.core.validate import (
    audit_two_fault_detection,
    validate_suite,
    validate_vector,
)
from repro.core.vectors import TestVector, VectorKind
from repro.fpva import full_layout
from repro.sim.pressure import PressureSimulator


@pytest.fixture(scope="module")
def suite4():
    fpva = full_layout(4, 4, name="theorem-4x4")
    return fpva, generate_suite(fpva)


class TestValidation:
    def test_generated_suite_validates(self, suite4):
        fpva, suite = suite4
        report = validate_suite(fpva, suite.all_vectors(), check_pair_coverage=True)
        assert report.ok, report.issues[:5]

    def test_wrong_expectation_flagged(self, suite4):
        fpva, suite = suite4
        good = suite.flow_paths[0]
        bad = TestVector(
            name="bad",
            kind=good.kind,
            open_valves=good.open_valves,
            expected={k: not v for k, v in good.expected.items()},
        )
        report = validate_vector(fpva, bad)
        assert not report.ok

    def test_branching_path_flagged(self, suite4):
        fpva, suite = suite4
        base = suite.flow_paths[0]
        # Open every valve: massively branching, full of bypasses.
        bad = TestVector(
            name="branchy",
            kind=VectorKind.FLOW_PATH,
            open_valves=frozenset(fpva.valves),
            expected=PressureSimulator(fpva).meter_readings(frozenset(fpva.valves)),
        )
        report = validate_vector(fpva, bad)
        assert any("branching" in i.problem or "bypass" in i.problem for i in report.issues)

    def test_non_separating_cut_flagged(self, suite4):
        fpva, _ = suite4
        bad = TestVector(
            name="leaky-cut",
            kind=VectorKind.CUT_SET,
            open_valves=frozenset(fpva.valves),  # nothing closed at all
            expected={s.name: False for s in fpva.sinks},
        )
        report = validate_vector(fpva, bad)
        assert not report.ok

    def test_missing_coverage_flagged(self, suite4):
        fpva, suite = suite4
        # Cut-sets alone leave every stuck-at-0 unobserved.
        report = validate_suite(fpva, suite.cut_sets)
        assert any("stuck-at-0" in i.problem for i in report.issues)


class TestTwoFaultTheorem:
    """Section III: 'can guarantee the detection of up to two faults'."""

    def test_all_singles_and_pairs_detected(self, suite4):
        fpva, suite = suite4
        audit = audit_two_fault_detection(
            fpva,
            suite.all_vectors(),
            include_control_leaks=False,
            max_pairs=None,  # exhaustive: C(48, 2) pairs
        )
        assert audit.singles_checked == 2 * fpva.valve_count
        assert not audit.singles_missed
        assert audit.pairs_checked > 1000
        assert not audit.pairs_missed, audit.pairs_missed[:5]

    def test_with_control_leaks_sampled(self, suite4):
        fpva, suite = suite4
        audit = audit_two_fault_detection(
            fpva,
            suite.all_vectors(),
            include_control_leaks=True,
            max_pairs=500,
        )
        assert not audit.singles_missed
        assert not audit.pairs_missed, audit.pairs_missed[:5]

    def test_incomplete_suite_fails_audit(self, suite4):
        fpva, suite = suite4
        audit = audit_two_fault_detection(
            fpva, suite.flow_paths, include_control_leaks=False, max_pairs=100
        )
        # Flow paths alone cannot see stuck-at-1 faults.
        assert audit.singles_missed
