"""Campaign fabric units: descriptors, shard store, leases, schedulers.

The crash-injection and interleaving suites live in
``test_fabric_crash.py`` / ``test_fabric_journal.py``; this module pins
the building blocks — content addressing, atomic publish, the lease
protocol under a fake clock, scheduler assignments, and the
order-independent merge.
"""

from __future__ import annotations

import json
import multiprocessing
import random

import pytest

from repro.core import generate_suite
from repro.engine import run_sweep
from repro.fabric import (
    CampaignJournal,
    CampaignSpec,
    GreedyScheduler,
    IlpScheduler,
    JournalMismatch,
    ShardStore,
    WorkerProfile,
    get_scheduler,
    measure_profiles,
    run_journaled_sweep,
    scheduler_names,
)
from repro.fpva import full_layout
from repro.sim import CampaignResult, merge_shards
from repro.sim.faults import StuckAt0, StuckAt1


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(4, 4, name="fabric-4x4")
    return fpva, tuple(generate_suite(fpva).all_vectors())


@pytest.fixture(scope="module")
def spec(bundle):
    fpva, vectors = bundle
    return CampaignSpec(
        fpva=fpva,
        vectors=vectors,
        fault_counts=(1, 2),
        trials=40,
        seed=7,
        shard_trials=15,
    )


def _result_key(result):
    return (
        result.num_faults,
        result.trials,
        result.detected,
        result.undetected_examples,
        result.undetected_trials,
    )


def _fake_result(descriptor, detected=None):
    return CampaignResult(
        num_faults=descriptor.num_faults,
        trials=descriptor.trials,
        detected=descriptor.trials if detected is None else detected,
    )


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDescriptors:
    def test_shard_split_matches_pool(self, spec):
        """Sizes and stream seeds must mirror engine.parallel's split."""
        from repro.sim.seeding import mix_seed

        shards = spec.shards_for(2)
        assert [d.trials for d in shards] == [15, 15, 10]
        assert [d.seed for d in shards] == [mix_seed(7, 2, s) for s in range(3)]

    def test_digests_distinct_and_stable(self, spec):
        shards = spec.shards()
        digests = [d.digest for d in shards]
        assert len(set(digests)) == len(digests)
        assert digests == [d.digest for d in spec.shards()]

    def test_single_k_campaign_shares_sweep_shards(self, bundle):
        """A k=2 campaign and a (1,2)-sweep address the same k=2 shards."""
        fpva, vectors = bundle
        sweep = CampaignSpec(
            fpva=fpva, vectors=vectors, fault_counts=(1, 2), trials=40,
            seed=7, shard_trials=15,
        )
        single = CampaignSpec(
            fpva=fpva, vectors=vectors, fault_counts=(2,), trials=40,
            seed=7, shard_trials=15,
        )
        assert [d.digest for d in single.shards()] == [
            d.digest for d in sweep.shards_for(2)
        ]
        assert single.digest != sweep.digest  # manifests stay distinct

    def test_digest_covers_workload(self, bundle):
        fpva, vectors = bundle
        base = CampaignSpec(
            fpva=fpva, vectors=vectors, fault_counts=(1,), trials=20
        )
        for change in (
            dict(seed=1),
            dict(shard_trials=7),
            dict(keep_undetected=3),
            dict(include_control_leaks=False),
            dict(vectors=vectors[:-1]),
        ):
            other = CampaignSpec(
                **{
                    "fpva": fpva,
                    "vectors": vectors,
                    "fault_counts": (1,),
                    "trials": 20,
                    **change,
                }
            )
            assert base.shards()[0].digest != other.shards()[0].digest, change


class TestShardStore:
    def test_publish_load_roundtrip(self, tmp_path, spec, bundle):
        fpva, _ = bundle
        store = ShardStore(tmp_path)
        descriptor = spec.shards()[0]
        valves = sorted(fpva.valves)
        result = CampaignResult(
            num_faults=descriptor.num_faults,
            trials=descriptor.trials,
            detected=descriptor.trials - 2,
            undetected_examples=[
                (StuckAt0(valves[0]),),
                (StuckAt1(valves[1]),),
            ],
            undetected_trials=[3, 11],
        )
        assert not store.has(descriptor.digest)
        store.publish(descriptor, result, worker="w9", elapsed=1.5)
        assert store.has(descriptor.digest)
        loaded = store.load(descriptor.digest)
        assert _result_key(loaded) == _result_key(result)
        meta = store.meta(descriptor.digest)
        assert meta["worker"] == "w9" and meta["trials"] == descriptor.trials

    def test_publish_idempotent(self, tmp_path, spec):
        store = ShardStore(tmp_path)
        descriptor = spec.shards()[0]
        store.publish(descriptor, _fake_result(descriptor), worker="first")
        store.publish(descriptor, _fake_result(descriptor), worker="second")
        assert store.meta(descriptor.digest)["worker"] == "first"

    def test_publish_rejects_mismatched_result(self, tmp_path, spec):
        store = ShardStore(tmp_path)
        descriptor = spec.shards()[0]
        bad = CampaignResult(
            num_faults=descriptor.num_faults,
            trials=descriptor.trials + 1,
            detected=0,
        )
        with pytest.raises(ValueError, match="does not match descriptor"):
            store.publish(descriptor, bad)

    def test_incomplete_artifact_not_addressable(self, tmp_path, spec):
        """Without meta.json (written last) the shard does not exist."""
        store = ShardStore(tmp_path)
        descriptor = spec.shards()[0]
        partial = store.path_for(descriptor.digest)
        partial.mkdir(parents=True)
        (partial / "result.npz").write_bytes(b"half-written garbage")
        assert not store.has(descriptor.digest)


class TestJournal:
    def test_manifest_created_and_validated(self, tmp_path, spec, bundle):
        journal = CampaignJournal(tmp_path / "j")
        journal.ensure(spec)
        manifest = journal.manifest()
        assert manifest["digest"] == spec.digest
        assert manifest["shards"] == len(spec.shards())
        # Same spec re-binds fine; a different campaign is rejected.
        CampaignJournal(tmp_path / "j").ensure(spec)
        fpva, vectors = bundle
        other = CampaignSpec(
            fpva=fpva, vectors=vectors, fault_counts=(1, 2), trials=41,
            seed=7, shard_trials=15,
        )
        with pytest.raises(JournalMismatch):
            CampaignJournal(tmp_path / "j").ensure(other)

    def test_claim_is_exclusive(self, tmp_path, spec):
        a = CampaignJournal(tmp_path, owner="a")
        b = CampaignJournal(tmp_path, owner="b")
        shards = spec.shards()
        first = a.claim(shards)
        assert first == shards[0]
        # b skips a's lease and claims the next shard instead.
        assert b.claim(shards) == shards[1]
        # Releasing frees the shard for the next claim.
        a.release(first)
        assert b.claim([first]) == first

    def test_done_shards_never_reclaimed(self, tmp_path, spec):
        journal = CampaignJournal(tmp_path)
        shards = spec.shards()
        claimed = journal.claim(shards)
        journal.publish(claimed, _fake_result(claimed))
        assert journal.claim([claimed]) is None
        assert journal.state(claimed) == "done"

    def test_stale_lease_reclaimed_after_timeout(self, tmp_path, spec):
        """Satellite: timeout staleness, pinned with a fake clock."""
        clock = FakeClock()
        a = CampaignJournal(
            tmp_path, lease_timeout=60.0, clock=clock, owner="a"
        )
        b = CampaignJournal(
            tmp_path, lease_timeout=60.0, clock=clock, owner="b"
        )
        shard = spec.shards()[0]
        assert a.claim([shard]) == shard
        # Fake a remote holder: liveness probing must not short-circuit
        # the timeout path (the pid in the lease is alive — it is ours).
        lease = json.loads((a._lease_path(shard.digest)).read_text())
        assert lease["claimed_at"] == clock.now
        clock.advance(59.0)
        assert b.claim([shard]) is None  # still fresh
        assert b.reclaimed == 0
        clock.advance(2.0)  # 61s old > 60s timeout
        assert b.claim([shard]) == shard
        assert b.reclaimed == 1

    def test_dead_pid_lease_reclaimed_immediately(self, tmp_path, spec):
        """A lease whose holder died on this host frees without waiting."""
        shard = spec.shards()[0]
        journal = CampaignJournal(tmp_path, lease_timeout=10_000.0)

        def _claim_and_die(root, spec):
            CampaignJournal(root, owner="doomed").claim(spec.shards())

        proc = multiprocessing.Process(
            target=_claim_and_die, args=(tmp_path, spec)
        )
        proc.start()
        proc.join()
        assert journal._lease_path(shard.digest).exists()
        assert journal.claim([shard]) == shard  # no timeout wait needed
        assert journal.reclaimed == 1

    def test_post_publish_crash_lease_housekept(self, tmp_path, spec):
        """Publish-then-die leaves done + dangling lease; done wins."""
        journal = CampaignJournal(tmp_path, lease_timeout=10_000.0)
        shard = spec.shards()[0]
        assert journal.claim([shard]) == shard
        journal.publish_result(shard, _fake_result(shard))
        # ... crash here: no release.  A second journal must treat the
        # shard as done and clean the dangling lease up.
        other = CampaignJournal(tmp_path, owner="other")
        assert other.claim([shard]) is None
        assert not other._lease_path(shard.digest).exists()


class TestMergeSelection:
    """Satellite: undetected-example selection is order-independent."""

    def _shards(self, fpva):
        valves = sorted(fpva.valves)
        mk = lambda i: (StuckAt0(valves[i]),)  # noqa: E731
        s0 = CampaignResult(
            num_faults=1, trials=20, detected=17,
            undetected_examples=[mk(0), mk(1), mk(2)],
            undetected_trials=[4, 9, 15],
        )
        s1 = CampaignResult(
            num_faults=1, trials=20, detected=18,
            undetected_examples=[mk(3), mk(4)],
            undetected_trials=[0, 1],
        )
        s2 = CampaignResult(
            num_faults=1, trials=10, detected=9,
            undetected_examples=[mk(5)],
            undetected_trials=[7],
        )
        return [s0, s1, s2]

    def test_truncation_takes_globally_first(self, bundle):
        fpva, _ = bundle
        shards = self._shards(fpva)
        merged = merge_shards(1, list(enumerate(shards)), keep_undetected=4)
        # Global trial indices: shard0 at 4,9,15; shard1 at 20,21; shard2 at 47.
        assert merged.undetected_trials == [4, 9, 15, 20]
        assert merged.trials == 50 and merged.detected == 44
        assert merged.undetected_examples == (
            shards[0].undetected_examples + shards[1].undetected_examples[:1]
        )

    def test_merge_is_arrival_order_independent(self, bundle):
        """The pinned fix: any resume/completion order merges identically."""
        fpva, _ = bundle
        shards = list(enumerate(self._shards(fpva)))
        reference = merge_shards(1, shards, keep_undetected=4)
        rng = random.Random(3)
        for _ in range(10):
            shuffled = shards[:]
            rng.shuffle(shuffled)
            assert _result_key(
                merge_shards(1, shuffled, keep_undetected=4)
            ) == _result_key(reference)

    def test_duplicate_shard_indices_rejected(self, bundle):
        fpva, _ = bundle
        shard = self._shards(fpva)[0]
        with pytest.raises(ValueError, match="duplicate shard"):
            merge_shards(1, [(0, shard), (0, shard)], keep_undetected=4)


class TestSchedulers:
    def _descriptors(self, bundle, n=24):
        fpva, vectors = bundle
        spec = CampaignSpec(
            fpva=fpva, vectors=vectors, fault_counts=(1, 2, 3), trials=80,
            shard_trials=10,
        )
        return spec.shards()[:n]

    def test_registry(self):
        assert scheduler_names() == ["greedy", "ilp"]
        assert isinstance(get_scheduler("greedy"), GreedyScheduler)
        assert isinstance(get_scheduler("ilp"), IlpScheduler)
        with pytest.raises(KeyError, match="unknown scheduler"):
            get_scheduler("fifo")

    def _makespan(self, queues, speeds):
        return max(
            sum(d.cost for d in queue) / speed
            for queue, speed in zip(queues, speeds)
        )

    @pytest.mark.parametrize("name", ["greedy", "ilp"])
    def test_assignment_partitions_work(self, bundle, name):
        descriptors = self._descriptors(bundle)
        queues = get_scheduler(name).assign(descriptors, ["w0", "w1", "w2"])
        seen = [d.digest for queue in queues for d in queue]
        assert sorted(seen) == sorted(d.digest for d in descriptors)
        assert len(seen) == len(set(seen))

    def test_profiles_skew_assignment(self, bundle):
        """A worker measured 3x faster gets ~3x the trial volume."""
        descriptors = self._descriptors(bundle)
        profiles = {
            "fast": WorkerProfile("fast", trials=300, elapsed=1.0, shards=3),
            "slow": WorkerProfile("slow", trials=100, elapsed=1.0, shards=3),
        }
        queues = GreedyScheduler().assign(
            descriptors, ["fast", "slow"], profiles
        )
        fast_cost = sum(d.cost for d in queues[0])
        slow_cost = sum(d.cost for d in queues[1])
        assert fast_cost > 2 * slow_cost

    def test_ilp_no_worse_than_greedy(self, bundle):
        descriptors = self._descriptors(bundle, n=12)
        profiles = {
            "w0": WorkerProfile("w0", trials=200, elapsed=1.0, shards=2),
            "w1": WorkerProfile("w1", trials=100, elapsed=1.0, shards=2),
        }
        speeds = (200.0, 100.0)
        greedy = GreedyScheduler().assign(descriptors, ["w0", "w1"], profiles)
        ilp = IlpScheduler().assign(descriptors, ["w0", "w1"], profiles)
        assert self._makespan(ilp, speeds) <= self._makespan(greedy, speeds) + 1e-9

    def test_profiles_measured_from_store(self, tmp_path, spec):
        store = ShardStore(tmp_path)
        shards = spec.shards()
        store.publish(shards[0], _fake_result(shards[0]), worker="w0", elapsed=2.0)
        store.publish(shards[1], _fake_result(shards[1]), worker="w0", elapsed=1.0)
        store.publish(shards[2], _fake_result(shards[2]), worker="w1", elapsed=3.0)
        profiles = measure_profiles(store, shards)
        assert set(profiles) == {"w0", "w1"}
        assert profiles["w0"].shards == 2
        assert profiles["w0"].elapsed == pytest.approx(3.0)
        assert profiles["w0"].throughput == pytest.approx(
            (shards[0].trials + shards[1].trials) / 3.0
        )


class TestJournaledRuns:
    def test_ilp_scheduler_end_to_end(self, tmp_path, bundle, spec):
        """The ILP assignment drains to the same bit-identical sweep."""
        fpva, vectors = bundle
        reference = run_sweep(
            fpva, vectors, fault_counts=(1, 2), trials=40, seed=7,
            shard_trials=15, workers=1,
        )
        results, stats = run_journaled_sweep(
            spec, tmp_path / "ilp", workers=2, scheduler="ilp"
        )
        assert stats.scheduler == "ilp"
        for k in reference:
            assert _result_key(results[k]) == _result_key(reference[k])

    def test_resume_requires_existing_journal(self, tmp_path, spec):
        with pytest.raises(FileNotFoundError, match="--resume"):
            run_journaled_sweep(spec, tmp_path / "missing", resume=True)

    def test_heterogeneous_backends_one_journal(self, tmp_path, bundle, spec):
        """Workers pinned to different kernel tiers drain one journal to
        the same bit-identical result."""
        fpva, vectors = bundle
        reference = run_sweep(
            fpva, vectors, fault_counts=(1, 2), trials=40, seed=7,
            shard_trials=15, workers=1,
        )
        results, stats = run_journaled_sweep(
            spec,
            tmp_path / "hetero",
            workers=2,
            worker_backends=("word", "tile"),
        )
        assert stats.executed == stats.total
        for k in reference:
            assert _result_key(results[k]) == _result_key(reference[k])
        backends = {
            meta["backend"]
            for meta in (
                CampaignJournal(tmp_path / "hetero").store.meta(d.digest)
                for d in spec.shards()
            )
        }
        assert backends <= {"word", "tile"} and len(backends) >= 1
