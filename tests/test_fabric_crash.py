"""Crash-injection harness for the campaign fabric.

Two layers of violence:

* :class:`FaultyWorker` overrides the :meth:`ShardWorker.checkpoint`
  seam to die *inside* the drain loop at each named transition —
  ``pre-claim`` (nothing held), ``mid-simulate`` (lease held, nothing
  published), ``post-publish`` (published, lease dangling) — after a
  countdown of healthy shards.
* A real ``SIGKILL`` of a worker *process* mid-campaign, resumed by a
  pool with a different worker count.

Every scenario must converge, on resume, to a merged sweep bit-identical
to the uninterrupted in-memory ``workers=1`` run, and a resume of the
finished campaign must re-simulate **zero** shards.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core import generate_suite
from repro.engine import run_sweep
from repro.fabric import CampaignJournal, CampaignSpec, ShardWorker, run_journaled_sweep
from repro.fpva import full_layout

LEASE_TIMEOUT = 30.0


class SimulatedCrash(RuntimeError):
    """Stands in for a worker death at a checkpoint."""


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def faulty_worker(point: str, healthy: int) -> type[ShardWorker]:
    """A worker class that dies at ``point`` after ``healthy`` passes.

    The countdown lives on the class so it survives the runner
    re-instantiating workers; each test builds a fresh subclass.
    """

    class FaultyWorker(ShardWorker):
        remaining = healthy

        def checkpoint(self, pt, descriptor):
            if pt != point:
                return
            cls = type(self)
            if cls.remaining <= 0:
                raise SimulatedCrash(f"{point} (shard={descriptor})")
            cls.remaining -= 1

    return FaultyWorker


class ThrottledWorker(ShardWorker):
    """Slows the drain so the parent can SIGKILL it mid-campaign."""

    def checkpoint(self, pt, descriptor):
        if pt == "post-publish":
            time.sleep(0.3)


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(4, 4, name="crash-4x4")
    return fpva, tuple(generate_suite(fpva).all_vectors())


@pytest.fixture(scope="module")
def spec(bundle):
    fpva, vectors = bundle
    return CampaignSpec(
        fpva=fpva,
        vectors=vectors,
        fault_counts=(1, 2),
        trials=40,
        seed=11,
        shard_trials=15,
    )


@pytest.fixture(scope="module")
def reference(bundle):
    """The uninterrupted in-memory workers=1 sweep — ground truth."""
    fpva, vectors = bundle
    return run_sweep(
        fpva, vectors, fault_counts=(1, 2), trials=40, seed=11,
        shard_trials=15, workers=1,
    )


def _result_key(result):
    return (
        result.num_faults,
        result.trials,
        result.detected,
        result.undetected_examples,
        result.undetected_trials,
    )


def assert_sweeps_identical(got, want):
    assert sorted(got) == sorted(want)
    for k in want:
        assert _result_key(got[k]) == _result_key(want[k]), f"k={k}"


def _done_count(journal_dir, spec):
    store = CampaignJournal(journal_dir).store
    return sum(store.has(d.digest) for d in spec.shards())


CRASH_POINTS = ["pre-claim", "mid-simulate", "post-publish"]


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_then_serial_resume_bit_identical(
    tmp_path, spec, reference, point
):
    """Die at each drain-loop transition; a serial resume converges."""
    clock = FakeClock()
    journal_dir = tmp_path / "journal"
    with pytest.raises(SimulatedCrash):
        run_journaled_sweep(
            spec,
            journal_dir,
            workers=1,
            worker_cls=faulty_worker(point, healthy=2),
            clock=clock,
            lease_timeout=LEASE_TIMEOUT,
        )
    done = _done_count(journal_dir, spec)
    assert done < len(spec.shards())
    if point == "pre-claim":
        assert done == 2  # died before the third claim, nothing leased
    elif point == "mid-simulate":
        assert done == 2  # died holding the third shard's lease
    else:
        assert done == 3  # third shard published, its lease dangling

    # The mid-simulate lease belongs to *this* (live) process, so only
    # the timeout path can free it — advance past it, as a remote host
    # would have to wait.
    clock.advance(LEASE_TIMEOUT + 1.0)
    results, stats = run_journaled_sweep(
        spec,
        journal_dir,
        workers=1,
        resume=True,
        clock=clock,
        lease_timeout=LEASE_TIMEOUT,
    )
    assert_sweeps_identical(results, reference)
    assert stats.cache_hits == done
    assert stats.executed == stats.total - done
    if point == "mid-simulate":
        assert stats.reclaimed == 1

    # Acceptance: resuming the *finished* campaign simulates nothing.
    results, stats = run_journaled_sweep(
        spec, journal_dir, workers=1, resume=True, clock=clock,
        lease_timeout=LEASE_TIMEOUT,
    )
    assert stats.executed == 0
    assert stats.cache_hits == stats.total == len(spec.shards())
    assert_sweeps_identical(results, reference)


def test_crash_then_pool_resume_bit_identical(tmp_path, spec, reference):
    """A crashed serial run resumed by a 3-worker pool converges too.

    The pool's processes run on the real clock, against which the fake
    clock's lease timestamps are ancient — stale on arrival, exactly like
    leases inherited from a long-dead run.
    """
    clock = FakeClock()
    journal_dir = tmp_path / "journal"
    with pytest.raises(SimulatedCrash):
        run_journaled_sweep(
            spec,
            journal_dir,
            workers=1,
            worker_cls=faulty_worker("mid-simulate", healthy=1),
            clock=clock,
            lease_timeout=LEASE_TIMEOUT,
        )
    results, stats = run_journaled_sweep(
        spec, journal_dir, workers=3, resume=True,
        lease_timeout=LEASE_TIMEOUT,
    )
    assert_sweeps_identical(results, reference)
    assert stats.executed == stats.total - stats.cache_hits
    assert stats.workers == 3


def test_repeated_crashes_every_point_converge(tmp_path, spec, reference):
    """A run that dies at a *different* point on every attempt still
    finishes: each resume preserves all prior progress."""
    clock = FakeClock()
    journal_dir = tmp_path / "journal"
    progress = []
    for attempt, point in enumerate(CRASH_POINTS):
        with pytest.raises(SimulatedCrash):
            run_journaled_sweep(
                spec,
                journal_dir,
                workers=1,
                resume=attempt > 0,
                worker_cls=faulty_worker(point, healthy=1),
                clock=clock,
                lease_timeout=LEASE_TIMEOUT,
            )
        progress.append(_done_count(journal_dir, spec))
        clock.advance(LEASE_TIMEOUT + 1.0)
    assert progress == sorted(progress)  # never loses published shards
    results, stats = run_journaled_sweep(
        spec, journal_dir, workers=1, resume=True, clock=clock,
        lease_timeout=LEASE_TIMEOUT,
    )
    assert_sweeps_identical(results, reference)
    assert stats.cache_hits == progress[-1]


# -- the real thing: SIGKILL a worker process ------------------------------

def _drain_slowly(spec, journal_dir):
    run_journaled_sweep(
        spec, journal_dir, workers=1, worker_cls=ThrottledWorker
    )


@pytest.fixture(scope="module")
def big_spec(bundle):
    fpva, vectors = bundle
    return CampaignSpec(
        fpva=fpva,
        vectors=vectors,
        fault_counts=(1, 2),
        trials=60,
        seed=11,
        shard_trials=10,
    )


def test_sigkill_resume_with_different_workers(tmp_path, bundle, big_spec):
    """Acceptance: SIGKILL mid-campaign, resume with a different worker
    count, get the uninterrupted workers=1 result bit-for-bit — then a
    final resume re-simulates zero shards."""
    fpva, vectors = bundle
    reference = run_sweep(
        fpva, vectors, fault_counts=(1, 2), trials=60, seed=11,
        shard_trials=10, workers=1,
    )
    journal_dir = tmp_path / "journal"
    total = len(big_spec.shards())

    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=_drain_slowly, args=(big_spec, journal_dir))
    victim.start()
    try:
        deadline = time.monotonic() + 60.0
        while _done_count(journal_dir, big_spec) < 2:
            assert victim.is_alive(), "worker finished before it was killed"
            assert time.monotonic() < deadline, "no shard published in 60s"
            time.sleep(0.01)
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.join()
    assert victim.exitcode == -signal.SIGKILL

    done = _done_count(journal_dir, big_spec)
    assert 0 < done < total

    # The victim's lease names a dead pid on this host, so the resume
    # reclaims it immediately — no lease-timeout wait involved.
    results, stats = run_journaled_sweep(
        big_spec, journal_dir, workers=2, resume=True
    )
    assert_sweeps_identical(results, reference)
    assert stats.cache_hits >= done
    assert stats.executed + stats.cache_hits == stats.total == total

    results, stats = run_journaled_sweep(
        big_spec, journal_dir, workers=2, resume=True
    )
    assert stats.executed == 0
    assert stats.cache_hits == stats.total == total
    assert_sweeps_identical(results, reference)
