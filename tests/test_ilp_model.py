"""Unit tests for the MILP modeling language."""

import numpy as np
import pytest

from repro.ilp import BINARY, CONTINUOUS, INTEGER, Model
from repro.ilp.model import LE, GE, EQ, LinExpr, ModelError


class TestVar:
    def test_factory_methods(self):
        m = Model()
        b = m.binary_var("b")
        i = m.integer_var("i", lb=1, ub=9)
        c = m.continuous_var("c", ub=2.5)
        assert (b.vtype, i.vtype, c.vtype) == (BINARY, INTEGER, CONTINUOUS)
        assert (b.lb, b.ub) == (0.0, 1.0)
        assert (i.lb, i.ub) == (1.0, 9.0)
        assert b.is_integral and i.is_integral and not c.is_integral

    def test_auto_naming_unique(self):
        m = Model()
        names = {m.add_var().name for _ in range(10)}
        assert len(names) == 10

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_var(lb=2.0, ub=1.0)

    def test_bad_vtype_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_var(vtype="boolean")

    def test_indices_sequential(self):
        m = Model()
        vars_ = [m.add_var() for _ in range(5)]
        assert [v.index for v in vars_] == list(range(5))


class TestLinExpr:
    def test_arithmetic(self):
        m = Model()
        x, y = m.binary_var("x"), m.binary_var("y")
        expr = 2 * x + 3 * y - 1
        assert expr.terms[x] == 2.0
        assert expr.terms[y] == 3.0
        assert expr.constant == -1.0

    def test_subtraction_and_negation(self):
        m = Model()
        x, y = m.binary_var(), m.binary_var()
        expr = x - y
        assert expr.terms[x] == 1.0 and expr.terms[y] == -1.0
        neg = -expr
        assert neg.terms[x] == -1.0 and neg.terms[y] == 1.0

    def test_rsub(self):
        m = Model()
        x = m.binary_var()
        expr = 5 - x
        assert expr.constant == 5.0
        assert expr.terms[x] == -1.0

    def test_zero_coefficients_dropped(self):
        m = Model()
        x = m.binary_var()
        expr = x - x
        assert not expr.terms

    def test_scalar_multiplication_only(self):
        m = Model()
        x, y = m.binary_var(), m.binary_var()
        with pytest.raises(ModelError):
            _ = x.to_expr() * y.to_expr()

    def test_evaluate(self):
        m = Model()
        x, y = m.binary_var(), m.binary_var()
        expr = 2 * x + 3 * y + 1
        assert expr.evaluate({x: 1, y: 0}) == 3.0

    def test_model_total(self):
        m = Model()
        xs = [m.binary_var() for _ in range(4)]
        total = Model.total(xs)
        assert all(total.terms[x] == 1.0 for x in xs)


class TestConstraint:
    def test_senses(self):
        m = Model()
        x = m.binary_var()
        le = x <= 1
        ge = x >= 1
        eq = x.to_expr() == 1
        assert (le.sense, ge.sense, eq.sense) == (LE, GE, EQ)

    def test_rhs_folding(self):
        m = Model()
        x = m.binary_var()
        con = (x + 2) <= 5
        assert con.rhs == pytest.approx(3.0)

    def test_satisfied_by(self):
        m = Model()
        x, y = m.binary_var(), m.binary_var()
        con = x + y >= 1
        assert con.satisfied_by({x: 1, y: 0})
        assert not con.satisfied_by({x: 0, y: 0})

    def test_foreign_variable_rejected(self):
        m1, m2 = Model(), Model()
        x = m1.binary_var()
        with pytest.raises(ModelError):
            m2.add_constraint(x >= 1)


class TestStandardForm:
    def test_minimize_export(self):
        m = Model()
        x = m.binary_var()
        y = m.continuous_var(ub=4.0)
        m.add_constraint(x + 2 * y <= 5)
        m.add_constraint(x + y >= 1)
        m.add_constraint(x.to_expr() == 1)
        m.minimize(3 * x + y)
        form = m.to_standard_form()
        assert form.c.tolist() == [3.0, 1.0]
        assert form.sign == 1.0
        assert form.integrality.tolist() == [1, 0]
        A = form.A.toarray()
        assert A.shape == (3, 2)
        assert np.isinf(form.con_lb[0]) and form.con_ub[0] == 5.0
        assert form.con_lb[1] == 1.0 and np.isinf(form.con_ub[1])
        assert form.con_lb[2] == form.con_ub[2] == 1.0

    def test_maximize_negates(self):
        m = Model()
        x = m.binary_var()
        m.maximize(2 * x)
        form = m.to_standard_form()
        assert form.sign == -1.0
        assert form.c.tolist() == [-2.0]

    def test_objective_constant_carried(self):
        m = Model()
        x = m.binary_var()
        m.minimize(x + 10)
        assert m.to_standard_form().objective_constant == 10.0

    def test_is_feasible_point(self):
        m = Model()
        x = m.integer_var(ub=3)
        m.add_constraint(x >= 2)
        assert m.is_feasible_point({x: 2})
        assert not m.is_feasible_point({x: 1})
        assert not m.is_feasible_point({x: 2.5})
        assert not m.is_feasible_point({x: 4})
