"""Property suite for the journal state machine.

Hypothesis drives arbitrary interleavings of ``claim`` / ``complete`` /
``crash`` / ``clock-advance`` across several simulated workers sharing
one real journal directory, then checks the invariants the fabric's
correctness rests on:

* **no shard is lost** — a final serial drain always reaches all-done;
* **no shard is double-counted** — the merged sweep has exactly the
  campaign's trial count per ``k``, and the store kept the *first*
  publication of every shard;
* **merging is schedule-independent** — the merged result equals the
  all-serial reference bit-for-bit, whatever the interleaving did.

Shard "simulation" is synthesized deterministically from each
descriptor, so the properties exercise the journal and merge machinery
(the expensive real simulation is covered by the crash harness).
"""

from __future__ import annotations

import random
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import DONE, CampaignJournal, CampaignSpec, ShardStore
from repro.fpva import full_layout
from repro.sim import CampaignResult, merge_shards

LEASE_TIMEOUT = 60.0
N_WORKERS = 3

# One tiny array, no simulation: vectors never get executed here, so an
# empty suite keeps CampaignSpec construction cheap.
FPVA = full_layout(2, 2, name="journal-2x2")
SPEC = CampaignSpec(
    fpva=FPVA,
    vectors=(),
    fault_counts=(1, 2),
    trials=25,
    seed=3,
    shard_trials=10,
)
DESCRIPTORS = SPEC.shards()


def synth_result(descriptor) -> CampaignResult:
    """A deterministic stand-in for simulating ``descriptor``."""
    rng = random.Random(descriptor.seed)
    n_undetected = rng.randrange(0, min(4, descriptor.trials + 1))
    undetected = sorted(rng.sample(range(descriptor.trials), n_undetected))
    return CampaignResult(
        num_faults=descriptor.num_faults,
        trials=descriptor.trials,
        detected=descriptor.trials - n_undetected,
        undetected_examples=[
            ("synthetic-fault", descriptor.digest, trial)
            for trial in undetected
        ],
        undetected_trials=undetected,
    )


def serial_reference():
    out = {}
    for k in SPEC.fault_counts:
        out[k] = merge_shards(
            k,
            [(d.shard, synth_result(d)) for d in SPEC.shards_for(k)],
            SPEC.keep_undetected,
        )
    return out


REFERENCE = serial_reference()


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def _result_key(result):
    return (
        result.num_faults,
        result.trials,
        result.detected,
        result.undetected_examples,
        result.undetected_trials,
    )


ops = st.lists(
    st.tuples(
        st.sampled_from(["claim", "complete", "crash", "tick"]),
        st.integers(min_value=0, max_value=N_WORKERS - 1),
        st.integers(min_value=1, max_value=int(LEASE_TIMEOUT * 1.5)),
    ),
    max_size=60,
)


@settings(max_examples=30, deadline=None)
@given(ops=ops)
def test_interleavings_preserve_every_invariant(ops):
    with tempfile.TemporaryDirectory() as root:
        clock = FakeClock()
        journals = [
            CampaignJournal(
                root,
                lease_timeout=LEASE_TIMEOUT,
                clock=clock,
                owner=f"sim-w{i}",
            )
            for i in range(N_WORKERS)
        ]
        journals[0].ensure(SPEC)
        holding: list = [None] * N_WORKERS  # worker -> claimed descriptor
        first_publisher: dict[str, str] = {}

        for op, w, dt in ops:
            journal = journals[w]
            if op == "claim" and holding[w] is None:
                holding[w] = journal.claim(DESCRIPTORS)
            elif op == "complete" and holding[w] is not None:
                descriptor, holding[w] = holding[w], None
                first_publisher.setdefault(descriptor.digest, journal.owner)
                journal.publish(descriptor, synth_result(descriptor))
            elif op == "crash" and holding[w] is not None:
                # Death mid-simulate: the claim is forgotten, the lease
                # file stays behind until someone reclaims it.
                holding[w] = None
            elif op == "tick":
                clock.now += dt

        # Whatever happened, a final drain must finish the campaign:
        # leases left by "crashed" workers go stale once the clock moves
        # past the timeout, and done shards are never re-claimable.
        clock.now += LEASE_TIMEOUT + 1.0
        finisher = CampaignJournal(
            root, lease_timeout=LEASE_TIMEOUT, clock=clock, owner="finisher"
        )
        drained = 0
        while (descriptor := finisher.claim(DESCRIPTORS)) is not None:
            first_publisher.setdefault(descriptor.digest, finisher.owner)
            finisher.publish(descriptor, synth_result(descriptor))
            drained += 1
        assert drained <= len(DESCRIPTORS)

        # No shard lost.
        store = ShardStore(f"{root}/shards")
        assert all(finisher.state(d) == DONE for d in DESCRIPTORS)

        # No shard double-counted: the store kept the first publication
        # (idempotent publish), and no lease outlives its shard.
        for descriptor in DESCRIPTORS:
            meta = store.meta(descriptor.digest)
            assert meta["worker"] == first_publisher[descriptor.digest]
            assert not finisher._lease_path(descriptor.digest).exists()

        # Schedule independence: merged == the all-serial reference.
        for k in SPEC.fault_counts:
            merged = merge_shards(
                k,
                [
                    (d.shard, store.load(d.digest))
                    for d in SPEC.shards_for(k)
                ],
                SPEC.keep_undetected,
            )
            assert merged.trials == SPEC.trials
            assert _result_key(merged) == _result_key(REFERENCE[k])


@settings(max_examples=15, deadline=None)
@given(
    order=st.permutations(list(range(len(DESCRIPTORS)))),
    keep=st.integers(min_value=0, max_value=8),
)
def test_merge_invariant_under_completion_order(order, keep):
    """Publishing shards in any order merges to the serial result."""
    with tempfile.TemporaryDirectory() as root:
        store = ShardStore(root)
        for index in order:
            descriptor = DESCRIPTORS[index]
            store.publish(descriptor, synth_result(descriptor))
        for k in SPEC.fault_counts:
            serial = merge_shards(
                k,
                [(d.shard, synth_result(d)) for d in SPEC.shards_for(k)],
                keep,
            )
            loaded = [
                (d.shard, store.load(d.digest)) for d in SPEC.shards_for(k)
            ]
            random.Random(sum(order)).shuffle(loaded)
            assert _result_key(
                merge_shards(k, loaded, keep)
            ) == _result_key(serial)
