"""Sharded parallel campaigns: determinism and merge correctness."""

import pytest

from repro.core import generate_suite
from repro.engine import get_scenario, run_campaign, run_sweep
from repro.engine.parallel import _mix_seed
from repro.fpva import full_layout
from repro.sim import run_campaign as run_campaign_serial


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(4, 4, name="parallel-4x4")
    return fpva, generate_suite(fpva).all_vectors()


def _result_key(result):
    return (
        result.num_faults,
        result.trials,
        result.detected,
        result.undetected_examples,
    )


class TestDeterminism:
    def test_workers_1_vs_4_identical(self, bundle):
        """Satellite: the aggregate is a function of the seed alone."""
        fpva, vectors = bundle
        kwargs = dict(num_faults=2, trials=120, seed=7, shard_trials=25)
        serial = run_campaign(fpva, vectors, workers=1, **kwargs)
        pooled = run_campaign(fpva, vectors, workers=4, **kwargs)
        assert _result_key(serial) == _result_key(pooled)

    def test_workers_1_vs_4_identical_with_scenario(self, bundle):
        fpva, vectors = bundle
        kwargs = dict(
            num_faults=1,
            trials=80,
            seed=3,
            shard_trials=20,
            scenario=get_scenario("mixed"),
        )
        serial = run_campaign(fpva, vectors, workers=1, **kwargs)
        pooled = run_campaign(fpva, vectors, workers=4, **kwargs)
        assert _result_key(serial) == _result_key(pooled)

    def test_sweep_workers_independent(self, bundle):
        fpva, vectors = bundle
        kwargs = dict(
            fault_counts=(1, 2), trials=60, seed=5, shard_trials=15,
            scenario=get_scenario("intermittent"),
        )
        serial = run_sweep(fpva, vectors, workers=1, **kwargs)
        pooled = run_sweep(fpva, vectors, workers=4, **kwargs)
        assert set(serial) == set(pooled) == {1, 2}
        for k in serial:
            assert _result_key(serial[k]) == _result_key(pooled[k])

    def test_repeat_runs_identical(self, bundle):
        fpva, vectors = bundle
        first = run_campaign(fpva, vectors, num_faults=2, trials=50, seed=11, workers=2)
        second = run_campaign(fpva, vectors, num_faults=2, trials=50, seed=11, workers=2)
        assert _result_key(first) == _result_key(second)


class TestSharding:
    def test_uneven_trials_fully_executed(self, bundle):
        fpva, vectors = bundle
        result = run_campaign(
            fpva, vectors, num_faults=1, trials=37, seed=0, workers=2,
            shard_trials=10,
        )
        assert result.trials == 37

    def test_mix_seed_deterministic_and_spread(self):
        assert _mix_seed(0, 1, 0) == _mix_seed(0, 1, 0)
        seeds = {_mix_seed(0, k, s) for k in range(1, 6) for s in range(8)}
        assert len(seeds) == 40  # no collisions across (k, shard)

    def test_mix_seed_no_collisions_across_seed_and_k(self):
        """Satellite: naive ``seed + k`` sweeps collide — ``(seed=0, k=2)``
        and ``(seed=1, k=1)`` would draw identical chips.  The splitmix64
        route must keep every (seed, k, shard) stream distinct."""
        assert _mix_seed(0, 2, 0) != _mix_seed(1, 1, 0)
        grid = {
            _mix_seed(seed, k, shard)
            for seed in range(12)
            for k in range(1, 6)
            for shard in range(4)
        }
        assert len(grid) == 12 * 5 * 4

    def test_serial_sweep_routes_through_mix_seed(self, bundle):
        """campaign.run_sweep's per-k seed is mix_seed(seed, k), verbatim."""
        from repro.sim import mix_seed, run_sweep as serial_sweep

        fpva, vectors = bundle
        assert mix_seed(0, 2) == _mix_seed(0, 2, 0)
        sweep = serial_sweep(fpva, vectors, fault_counts=(2,), trials=15, seed=0)
        direct = run_campaign_serial(
            fpva, vectors, num_faults=2, trials=15, seed=mix_seed(0, 2)
        )
        assert _result_key(sweep[2]) == _result_key(direct)

    def test_detection_rate_comparable_to_serial(self, bundle):
        """Sharding changes RNG streams, not statistics: the paper's
        all-detected result must survive the parallel path."""
        fpva, vectors = bundle
        sharded = run_campaign(
            fpva, vectors, num_faults=2, trials=100, seed=21, workers=4,
            shard_trials=25,
        )
        serial = run_campaign_serial(
            fpva, vectors, num_faults=2, trials=100, seed=21
        )
        assert sharded.all_detected and serial.all_detected


class TestFabricPath:
    """run_sweep/run_campaign rerouted through the campaign fabric."""

    def test_sweep_worker_count_invariant_under_journal(self, bundle, tmp_path):
        """Satellite: in-memory, journaled-serial and journaled-pooled
        sweeps are one bit-identical result."""
        fpva, vectors = bundle
        kwargs = dict(fault_counts=(1, 2), trials=60, seed=5, shard_trials=15)
        memory = run_sweep(fpva, vectors, workers=1, **kwargs)
        serial = run_sweep(
            fpva, vectors, workers=1, journal_dir=tmp_path / "serial", **kwargs
        )
        pooled = run_sweep(
            fpva, vectors, workers=3, journal_dir=tmp_path / "pooled", **kwargs
        )
        assert set(memory) == set(serial) == set(pooled)
        for k in memory:
            assert _result_key(memory[k]) == _result_key(serial[k])
            assert _result_key(memory[k]) == _result_key(pooled[k])
            assert memory[k].undetected_trials == serial[k].undetected_trials
            assert memory[k].undetected_trials == pooled[k].undetected_trials

    def test_campaign_journal_matches_in_memory(self, bundle, tmp_path):
        fpva, vectors = bundle
        kwargs = dict(num_faults=2, trials=50, seed=11, shard_trials=20)
        memory = run_campaign(fpva, vectors, workers=2, **kwargs)
        journaled = run_campaign(
            fpva, vectors, workers=2, journal_dir=tmp_path / "j", **kwargs
        )
        assert _result_key(memory) == _result_key(journaled)

    def test_finished_journal_rerun_simulates_nothing(
        self, bundle, tmp_path, monkeypatch
    ):
        """Re-running a completed sweep is a pure cache hit: the second
        pass must never reach the shard executor."""
        import repro.engine.parallel as parallel

        fpva, vectors = bundle
        kwargs = dict(
            fault_counts=(1, 2), trials=40, seed=9, shard_trials=15,
            journal_dir=tmp_path / "j",
        )
        first = run_sweep(fpva, vectors, workers=1, **kwargs)

        def _boom(payload):
            raise AssertionError("cache-hit rerun re-simulated a shard")

        monkeypatch.setattr(parallel, "_run_shard", _boom)
        second = run_sweep(fpva, vectors, workers=1, resume=True, **kwargs)
        assert set(first) == set(second)
        for k in first:
            assert _result_key(first[k]) == _result_key(second[k])
