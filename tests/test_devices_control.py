"""Dynamic mixers, transport routes and the control-layer model."""

import pytest

from repro.fpva import (
    DynamicMixer,
    FPVABuilder,
    LayoutError,
    Side,
    ValveState,
    full_layout,
    transport_route,
)
from repro.fpva.control import (
    control_adjacent_pairs,
    iter_ordered_pairs,
    neighbors_of,
    valves_by_junction,
)
from repro.fpva.geometry import Cell, edge_between
from repro.sim.pressure import PressureSimulator


@pytest.fixture(scope="module")
def board():
    return full_layout(8, 8, name="device-board")


class TestDynamicMixer:
    def test_4x2_has_eight_pump_valves(self, board):
        mixer = DynamicMixer(Cell(2, 2), height=4, width=2)
        assert len(mixer.ring_cells) == 8
        assert len(mixer.ring_valves) == 8
        assert len(mixer.pump_valves) == 8

    def test_2x4_matches_fig2c(self, board):
        mixer = DynamicMixer(Cell(2, 2), height=2, width=4)
        assert len(mixer.ring_valves) == 8
        mixer.validate(board)

    def test_ring_is_a_cycle(self, board):
        mixer = DynamicMixer(Cell(3, 3), height=3, width=4)
        ring = mixer.ring_cells
        for a, b in zip(ring, ring[1:] + ring[:1]):
            assert abs(a.r - b.r) + abs(a.c - b.c) == 1

    def test_interior_cells(self):
        mixer = DynamicMixer(Cell(1, 1), height=3, width=3)
        assert mixer.interior_cells == {Cell(2, 2)}

    def test_configuration_opens_ring_closes_walls(self, board):
        mixer = DynamicMixer(Cell(2, 2), height=4, width=2)
        config = mixer.configuration(board)
        for valve in mixer.ring_valves:
            assert config[valve] is ValveState.OPEN
        for guard in mixer.guard_valves(board):
            assert config[guard] is ValveState.CLOSED

    def test_mixer_region_isolated(self, board):
        """With the mixer configured, no pressure can leave the ring."""
        mixer = DynamicMixer(Cell(2, 2), height=4, width=2)
        config = mixer.configuration(board)
        opened = {v for v, s in config.items() if s is ValveState.OPEN}
        sim = PressureSimulator(board)
        # Open the mixer ring plus everything far away; the ring's guards
        # stay closed: source pressure must not reach any ring cell.
        other_open = {
            v
            for v in board.valves
            if v not in config or config[v] is ValveState.OPEN
        }
        pressurized = sim.cells_pressurized(frozenset(other_open))
        assert not (pressurized & set(mixer.ring_cells))

    def test_pump_phases_rotate(self):
        mixer = DynamicMixer(Cell(1, 1), height=4, width=2)
        phases = mixer.pump_phases(plug_width=2)
        assert len(phases) == 8
        for phase in phases:
            closed = [v for v, s in phase.items() if s is ValveState.CLOSED]
            assert len(closed) == 2

    def test_overlap_detection(self):
        a = DynamicMixer(Cell(2, 2), height=4, width=2)
        b = DynamicMixer(Cell(2, 2), height=2, width=4)  # Fig 2(d)
        c = DynamicMixer(Cell(6, 6), height=2, width=2)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_out_of_bounds_rejected(self, board):
        mixer = DynamicMixer(Cell(7, 7), height=4, width=2)
        with pytest.raises(LayoutError):
            mixer.validate(board)

    def test_obstacle_overlap_rejected(self):
        fpva = (
            FPVABuilder(6, 6)
            .obstacle(3, 3)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 6)
            .build()
        )
        mixer = DynamicMixer(Cell(2, 2), height=4, width=2)
        with pytest.raises(LayoutError):
            mixer.validate(fpva)

    def test_too_small_rejected(self):
        with pytest.raises(LayoutError):
            DynamicMixer(Cell(1, 1), height=1, width=4)


class TestTransportRoute:
    def test_route_configuration(self, board):
        cells = [Cell(4, c) for c in range(1, 6)]
        config = transport_route(board, cells)
        for a, b in zip(cells, cells[1:]):
            assert config[edge_between(a, b)] is ValveState.OPEN
        closed = [v for v, s in config.items() if s is ValveState.CLOSED]
        assert closed  # side valves sealed

    def test_route_carries_pressure_only_along_route(self, board):
        cells = [Cell(1, c) for c in range(1, 9)]  # row 1: source to corner
        config = transport_route(board, cells)
        opened = {v for v, s in config.items() if s is ValveState.OPEN}
        sim = PressureSimulator(board)
        pressurized = sim.cells_pressurized(frozenset(opened))
        assert set(cells) <= pressurized
        assert len(pressurized) == len(cells)

    def test_short_route_rejected(self, board):
        with pytest.raises(LayoutError):
            transport_route(board, [Cell(1, 1)])


class TestControlLayer:
    def test_pairs_share_a_junction(self, tiny):
        for pair in control_adjacent_pairs(tiny):
            a, b = tuple(pair)
            assert set(a.dual()) & set(b.dual())

    def test_neighbors_symmetric(self, tiny):
        for valve in tiny.valves:
            for nb in neighbors_of(tiny, valve):
                assert valve in neighbors_of(tiny, nb)

    def test_ordered_pairs_both_directions(self, tiny):
        ordered = set(iter_ordered_pairs(tiny))
        for a, b in ordered:
            assert (b, a) in ordered

    def test_junction_map_complete(self, tiny):
        by_junction = valves_by_junction(tiny)
        listed = {v for valves in by_junction.values() for v in valves}
        assert listed == set(tiny.valves)

    def test_channels_have_no_control_lines(self, table5):
        pairs = control_adjacent_pairs(table5)
        channel = next(iter(table5.channels))
        assert not any(channel in pair for pair in pairs)
