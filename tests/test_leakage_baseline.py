"""Control-leakage vectors and the naive per-valve baseline."""

import pytest

from repro.core import generate_suite
from repro.core.baseline import BaselineGenerator
from repro.core.coverage import leak_covered_pairs, measure_coverage
from repro.core.leakage import LeakageGenerator
from repro.core.paths import FlowPathGenerator
from repro.fpva import full_layout
from repro.ilp import SolveOptions
from repro.sim import (
    ChipUnderTest,
    ControlLeak,
    StuckAt0,
    StuckAt1,
    Tester,
    control_leak_faults,
    untestable_leak_pairs,
)
from repro.sim.pressure import PressureSimulator


@pytest.fixture(scope="module")
def tiny4():
    return full_layout(4, 4, name="leak-4x4")


@pytest.fixture(scope="module")
def leak_result(tiny4):
    paths = FlowPathGenerator(tiny4, SolveOptions(time_limit=90)).generate()
    gen = LeakageGenerator(tiny4)
    return gen.generate(template_vectors=paths.vectors)


class TestLeakage:
    def test_all_testable_pairs_covered(self, tiny4, leak_result):
        report_pairs = {
            frozenset(p) for p in leak_result.untestable_pairs
        }
        assert report_pairs <= set(untestable_leak_pairs(tiny4))

    def test_every_testable_leak_detected(self, tiny4, leak_result):
        tester = Tester(tiny4)
        for fault in control_leak_faults(tiny4):
            chip = ChipUnderTest(tiny4, [fault])
            assert tester.run(chip, leak_result.vectors).fault_detected, fault

    def test_standalone_section_self_contained(self, tiny4, leak_result):
        # The LEAKAGE vectors alone must cover all testable pairs.
        from repro.core.coverage import leak_covered_unordered
        from repro.fpva.control import control_adjacent_pairs

        sim = PressureSimulator(tiny4)
        remaining = set(control_adjacent_pairs(tiny4)) - set(
            untestable_leak_pairs(tiny4)
        )
        for vec in leak_result.vectors:
            remaining -= leak_covered_unordered(
                tiny4, sim, vec, candidate_pairs=remaining
            )
        assert not remaining

    def test_incremental_mode_smaller(self, tiny4):
        paths = FlowPathGenerator(tiny4, SolveOptions(time_limit=90)).generate()
        gen = LeakageGenerator(tiny4)
        standalone = gen.generate(template_vectors=paths.vectors, standalone=True)
        incremental = gen.generate(template_vectors=paths.vectors, standalone=False)
        assert incremental.nl_leak <= standalone.nl_leak


class TestBaseline:
    @pytest.fixture(scope="class")
    def baseline(self, tiny4):
        return tiny4, BaselineGenerator(tiny4).generate()

    def test_vector_count_near_2nv(self, baseline):
        fpva, result = baseline
        assert result.total + 2 * len(result.skipped) == 2 * fpva.valve_count

    def test_no_valves_skipped_on_full_array(self, baseline):
        fpva, result = baseline
        assert not result.skipped

    def test_baseline_detects_stuck_at(self, baseline):
        fpva, result = baseline
        tester = Tester(fpva)
        for valve in fpva.valves:
            assert tester.detects([StuckAt0(valve)], result.vectors)
            assert tester.detects([StuckAt1(valve)], result.vectors)

    def test_vector_count_quadratic_vs_proposed(self, baseline):
        fpva, result = baseline
        suite = generate_suite(fpva, include_leakage=False)
        assert result.total > 3 * suite.total  # 2 n_v >> ~2 sqrt(n_v)

    def test_count_without_generation(self, tiny4):
        assert BaselineGenerator(tiny4).vector_count() == 2 * tiny4.valve_count
