"""Unit and property tests for the lattice geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fpva.geometry import (
    Cell,
    Edge,
    Junction,
    Orientation,
    Side,
    boundary_cell,
    cells_adjacent,
    edge_between,
    full_grid_valve_count,
    in_bounds,
    is_boundary_junction,
    iter_cells,
    iter_interior_edges,
    junctions_of_cell,
    neighbors4,
    perimeter_junction_cycle,
    port_gap,
    side_of_boundary_cell,
)

cells = st.builds(Cell, st.integers(1, 20), st.integers(1, 20))


class TestEdges:
    def test_normalization(self):
        a, b = Cell(2, 3), Cell(2, 2)
        e = edge_between(a, b)
        assert e.a < e.b
        assert edge_between(b, a) == e

    def test_orientation(self):
        assert edge_between(Cell(1, 1), Cell(1, 2)).orientation is Orientation.HORIZONTAL
        assert edge_between(Cell(1, 1), Cell(2, 1)).orientation is Orientation.VERTICAL

    def test_non_adjacent_rejected(self):
        with pytest.raises(ValueError):
            edge_between(Cell(1, 1), Cell(2, 2))
        with pytest.raises(ValueError):
            edge_between(Cell(1, 1), Cell(1, 1))

    def test_other_endpoint(self):
        e = edge_between(Cell(1, 1), Cell(1, 2))
        assert e.other(Cell(1, 1)) == Cell(1, 2)
        with pytest.raises(ValueError):
            e.other(Cell(9, 9))

    @given(cells)
    def test_neighbors4_are_adjacent(self, c):
        for nb in neighbors4(c):
            assert cells_adjacent(c, nb)

    def test_dual_of_horizontal(self):
        # Valve between (r,c) and (r,c+1) crosses segment (r-1,c)-(r,c).
        e = edge_between(Cell(3, 4), Cell(3, 5))
        assert e.dual() == (Junction(2, 4), Junction(3, 4))

    def test_dual_of_vertical(self):
        e = edge_between(Cell(3, 4), Cell(4, 4))
        assert e.dual() == (Junction(3, 3), Junction(3, 4))

    @given(cells, st.sampled_from(["h", "v"]))
    def test_dual_junctions_are_corners_of_both_cells(self, c, direction):
        other = Cell(c.r, c.c + 1) if direction == "h" else Cell(c.r + 1, c.c)
        e = edge_between(c, other)
        u, w = e.dual()
        for j in (u, w):
            assert j in junctions_of_cell(c)
            assert j in junctions_of_cell(other)

    def test_dual_is_injective_on_grid(self):
        duals = [frozenset(e.dual()) for e in iter_interior_edges(6, 7)]
        assert len(duals) == len(set(duals))


class TestCounting:
    @given(st.integers(1, 12), st.integers(1, 12))
    def test_interior_edge_count(self, nr, nc):
        edges = list(iter_interior_edges(nr, nc))
        assert len(edges) == full_grid_valve_count(nr, nc)
        assert len(set(edges)) == len(edges)

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_cell_count(self, nr, nc):
        assert len(list(iter_cells(nr, nc))) == nr * nc


class TestPerimeter:
    @given(st.integers(1, 10), st.integers(1, 10))
    def test_cycle_length(self, nr, nc):
        cycle = perimeter_junction_cycle(nr, nc)
        assert len(cycle) == 2 * (nr + nc)
        assert len(set(cycle)) == len(cycle)

    @given(st.integers(2, 10), st.integers(2, 10))
    def test_cycle_consecutive_adjacent(self, nr, nc):
        cycle = perimeter_junction_cycle(nr, nc)
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert abs(a.r - b.r) + abs(a.c - b.c) == 1
            assert is_boundary_junction(a, nr, nc)


class TestPorts:
    def test_boundary_cells(self):
        assert boundary_cell(Side.NORTH, 3, 5, 7) == Cell(1, 3)
        assert boundary_cell(Side.SOUTH, 3, 5, 7) == Cell(5, 3)
        assert boundary_cell(Side.WEST, 2, 5, 7) == Cell(2, 1)
        assert boundary_cell(Side.EAST, 2, 5, 7) == Cell(2, 7)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            boundary_cell(Side.NORTH, 8, 5, 7)

    def test_port_gap_on_perimeter(self):
        nr = nc = 5
        cycle = perimeter_junction_cycle(nr, nc)
        pos = {j: i for i, j in enumerate(cycle)}
        for side in Side:
            cell = boundary_cell(side, 2, nr, nc)
            g1, g2 = port_gap(side, cell)
            assert abs(pos[g1] - pos[g2]) in (1, len(cycle) - 1)

    def test_side_of_boundary_cell(self):
        assert side_of_boundary_cell(Cell(1, 1), 5, 5) == [Side.NORTH, Side.WEST]
        assert side_of_boundary_cell(Cell(3, 5), 5, 5) == [Side.EAST]
        assert side_of_boundary_cell(Cell(3, 3), 5, 5) == []

    @given(st.integers(2, 8))
    def test_in_bounds(self, n):
        assert in_bounds(Cell(1, 1), n, n)
        assert in_bounds(Cell(n, n), n, n)
        assert not in_bounds(Cell(0, 1), n, n)
        assert not in_bounds(Cell(1, n + 1), n, n)
