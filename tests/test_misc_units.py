"""Focused unit tests for smaller surfaces: ports, builder, status, walls."""

import pytest

from repro.core.cutsets import CutSetGenerator
from repro.core.heuristic import GreedyPathGenerator
from repro.core.routing import contracted_cell_graph, expand_contracted_route
from repro.fpva import FPVABuilder, LayoutError, Side, full_layout
from repro.fpva.geometry import Cell, Junction, edge_between
from repro.fpva.ports import Port, PortKind, sink, source
from repro.ilp import Model, SolveStatus, solve
from repro.ilp.status import Solution


class TestPorts:
    def test_constructors(self):
        s = source(Side.WEST, 2)
        m = sink(Side.EAST, 3, "o1")
        assert s.is_source and not s.is_sink
        assert m.is_sink and m.name == "o1"

    def test_cells_and_gaps(self):
        s = source(Side.WEST, 2)
        assert s.cell(5, 5) == Cell(2, 1)
        g1, g2 = s.gap(5, 5)
        assert g1 == Junction(1, 0) and g2 == Junction(2, 0)

    def test_names_unique_by_default(self):
        assert source(Side.WEST, 1).name != source(Side.WEST, 2).name


class TestBuilder:
    def test_channel_direction_validation(self):
        with pytest.raises(LayoutError):
            FPVABuilder(3, 3).channel(Cell(1, 1), "diagonal", 1)
        with pytest.raises(LayoutError):
            FPVABuilder(3, 3).channel(Cell(1, 1), "east", 0)

    def test_obstacle_rect_validation(self):
        with pytest.raises(LayoutError):
            FPVABuilder(5, 5).obstacle_rect(3, 3, 2, 2)

    def test_westward_channel(self):
        fpva = (
            FPVABuilder(3, 3)
            .channel(Cell(2, 3), "west", 2)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 3)
            .build()
        )
        assert edge_between(Cell(2, 1), Cell(2, 2)) in fpva.channels
        assert edge_between(Cell(2, 2), Cell(2, 3)) in fpva.channels


class TestSolutionObject:
    def test_int_value_rounds(self):
        m = Model()
        x = m.integer_var(ub=5)
        m.add_constraint(x >= 2)
        m.minimize(x)
        sol = solve(m)
        assert sol.int_value(x) == 2
        assert isinstance(sol.int_value(x), int)

    def test_no_solution_check_false(self):
        m = Model()
        x = m.binary_var()
        sol = Solution(status=SolveStatus.INFEASIBLE)
        assert not sol.has_solution
        assert not sol.check(m)


class TestContractedRouting:
    def test_expand_plain_route(self, tiny):
        g = contracted_cell_graph(tiny)
        src, snk = tiny.sources[0], tiny.sinks[0]
        route = [src, Cell(1, 1), Cell(2, 1), Cell(3, 1), Cell(3, 2), Cell(3, 3), snk]
        out = expand_contracted_route(tiny, g, route)
        assert out == route  # no regions: identity

    def test_contraction_merges_channel_cells(self, table5):
        g = contracted_cell_graph(table5)
        channel = next(iter(table5.channels))
        node_map = g.graph["node_map"]
        assert node_map[channel.a] == node_map[channel.b]
        assert node_map[channel.a] not in list(table5.cells())


class TestWallInternals:
    def test_port_seal_boxes_the_port_cell(self, tiny):
        gen = CutSetGenerator(tiny, strategy="sweep")
        seal = gen._port_seal(tiny.sinks[0])
        # Sealing the sink corner cell (3,3) needs its two valves.
        assert seal == {
            edge_between(Cell(2, 3), Cell(3, 3)),
            edge_between(Cell(3, 2), Cell(3, 3)),
        }
        open_valves = frozenset(tiny.valve_set - seal)
        assert gen.simulator.sink_separated(open_valves)

    def test_wall_vector_expectations_all_dark(self, obstacle_array):
        gen = CutSetGenerator(obstacle_array, strategy="sweep")
        result = gen.generate()
        assert not result.uncovered
        for vec in result.vectors:
            assert not any(vec.expected.values())


class TestGreedyWalker:
    def test_walks_are_simple_paths(self, small):
        gen = GreedyPathGenerator(small, seed=3)
        for _ in range(5):
            walk = gen.walk_once(lambda e: 1.0)
            assert walk is not None
            assert len(set(walk)) == len(walk)
            assert walk[0] in small.sources and walk[-1] in small.sinks

    def test_channel_region_never_reentered(self, table5):
        gen = GreedyPathGenerator(table5, seed=5)
        component = table5.channel_components[0]
        for _ in range(10):
            walk = gen.walk_once(lambda e: 1.0)
            if walk is None:
                continue
            # Cells of the channel region must appear as one contiguous run.
            flags = [n in component for n in walk]
            runs = sum(
                1 for i, f in enumerate(flags) if f and (i == 0 or not flags[i - 1])
            )
            assert runs <= 1
