"""Fault model and chip-under-test semantics."""

import pytest

from repro.fpva import full_layout
from repro.fpva.geometry import Cell, edge_between
from repro.sim import (
    ChipUnderTest,
    ControlLeak,
    StuckAt0,
    StuckAt1,
    control_leak_faults,
    fault_universe,
    faults_compatible,
    faulty_valves,
    stuck_at_faults,
)


class TestFaultUniverse:
    def test_stuck_at_counts(self, tiny):
        assert len(stuck_at_faults(tiny)) == 2 * tiny.valve_count

    def test_universe_includes_leaks(self, tiny):
        uni = fault_universe(tiny)
        leaks = [f for f in uni if isinstance(f, ControlLeak)]
        assert leaks and len(uni) == 2 * tiny.valve_count + len(leaks)

    def test_universe_without_leaks(self, tiny):
        uni = fault_universe(tiny, include_control_leaks=False)
        assert len(uni) == 2 * tiny.valve_count

    def test_leak_normalization(self, tiny):
        a, b = tiny.valves[0], tiny.valves[1]
        assert ControlLeak(a, b) == ControlLeak(b, a)

    def test_leak_same_valve_rejected(self, tiny):
        with pytest.raises(ValueError):
            ControlLeak(tiny.valves[0], tiny.valves[0])

    def test_compatibility(self, tiny):
        v = tiny.valves[0]
        assert not faults_compatible([StuckAt0(v), StuckAt1(v)])
        assert not faults_compatible([StuckAt0(v), StuckAt0(v)])
        assert faults_compatible([StuckAt0(v), StuckAt1(tiny.valves[1])])

    def test_faulty_valves(self, tiny):
        a, b, c = tiny.valves[:3]
        touched = faulty_valves([StuckAt0(a), ControlLeak(b, c)])
        assert touched == {a, b, c}

    def test_leak_candidates_are_adjacent(self, tiny):
        for fault in control_leak_faults(tiny):
            assert set(fault.a.dual()) & set(fault.b.dual())


class TestChipUnderTest:
    def test_fault_free_identity(self, tiny):
        chip = ChipUnderTest(tiny)
        opened = frozenset(tiny.valves[:5])
        assert chip.effective_open_valves(opened) == opened

    def test_stuck_at_overrides(self, tiny):
        v0, v1 = tiny.valves[0], tiny.valves[1]
        chip = ChipUnderTest(tiny, [StuckAt0(v0), StuckAt1(v1)])
        effective = chip.effective_open_valves({v0})
        assert v0 not in effective  # SA0 wins over the open command
        assert v1 in effective  # SA1 keeps it open though commanded closed

    def test_control_leak_propagates_closure(self, tiny):
        a, b = tiny.valves[0], tiny.valves[1]
        chip = ChipUnderTest(tiny, [ControlLeak(a, b)])
        # a commanded closed, b commanded open -> leak closes b too.
        effective = chip.effective_open_valves({b})
        assert b not in effective
        # Both commanded open -> nothing closes.
        effective = chip.effective_open_valves({a, b})
        assert {a, b} <= effective

    def test_control_leak_chain(self, tiny):
        a, b, c = tiny.valves[0], tiny.valves[1], tiny.valves[2]
        chip = ChipUnderTest(tiny, [ControlLeak(a, b), ControlLeak(b, c)])
        # a closed pressurizes b's line, which leaks on to c.
        effective = chip.effective_open_valves({b, c})
        assert b not in effective and c not in effective

    def test_sa1_beats_leak(self, tiny):
        a, b = tiny.valves[0], tiny.valves[1]
        chip = ChipUnderTest(tiny, [ControlLeak(a, b), StuckAt1(b)])
        effective = chip.effective_open_valves({b})
        assert b in effective  # cannot close a stuck-open valve

    def test_incompatible_set_rejected(self, tiny):
        v = tiny.valves[0]
        with pytest.raises(ValueError):
            ChipUnderTest(tiny, [StuckAt0(v), StuckAt1(v)])

    def test_fault_on_missing_valve_rejected(self, tiny):
        bogus = edge_between(Cell(1, 1), Cell(1, 2))
        other = full_layout(2, 2)
        # The edge exists on tiny; build a fault for a valve not on `other`.
        missing = edge_between(Cell(2, 2), Cell(2, 3))
        with pytest.raises(ValueError):
            ChipUnderTest(other, [StuckAt0(missing)])
