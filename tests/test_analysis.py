"""The static-analysis pass: every rule, the suppression/baseline
machinery, and the end-to-end guarantee that the repo itself lints clean.

Each rule gets positive (violating), negative (conforming), suppressed,
and baselined fixtures, so deleting any single rule module fails its
dedicated tests here.  The hypothesis round-trip pins the baseline file
format; the e2e test is the CI gate's local twin.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import all_rules, analyze_source, rules_by_id
from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    entries_from_findings,
    load_baseline,
    parse_baseline,
    render_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.core import (
    SUPPRESS_RULE_ID,
    FileContext,
    fingerprint,
    parse_suppressions,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

RULES = rules_by_id()


def run(path: str, source: str):
    """All unsuppressed findings of every registered rule on a snippet."""
    return analyze_source(path, source, all_rules()).findings


def codes(path: str, source: str) -> list[str]:
    return [f.rule for f in run(path, source)]


# -- registry -----------------------------------------------------------------
# One test per rule id: deleting a rule module fails exactly these.

@pytest.mark.parametrize(
    "rule_id", ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"]
)
def test_rule_is_registered(rule_id):
    assert rule_id in RULES, f"rule {rule_id} missing from the registry"
    rule = RULES[rule_id]
    assert rule.rationale, f"{rule_id} must state the invariant it protects"
    assert rule.severity in ("warning", "error")


def test_registry_is_discovered_not_hardcoded():
    # Auto-discovery: every rules/r*.py module contributes at least one
    # rule, so a deleted module genuinely disappears.
    import pkgutil

    import repro.analysis.rules as pkg

    modules = [
        m.name for m in pkgutil.iter_modules(pkg.__path__)
        if m.name.startswith("r")
    ]
    assert len(modules) >= 8
    assert len(RULES) >= len(modules)


# -- R1: determinism ----------------------------------------------------------

def test_r1_flags_wall_clock_and_unseeded_rng():
    source = (
        "import time, random, uuid\n"
        "import numpy as np\n"
        "def f():\n"
        "    t = time.time()\n"
        "    r = random.random()\n"
        "    u = uuid.uuid4()\n"
        "    x = np.random.rand(4)\n"
    )
    found = codes("src/repro/sim/bad.py", source)
    assert found.count("R1") == 4


def test_r1_allows_seeded_rng_and_injected_clock():
    source = (
        "import time, random\n"
        "import numpy as np\n"
        "def f(clock=time.time):\n"  # reference, not a call
        "    rng = random.Random(7)\n"
        "    gen = np.random.default_rng(7)\n"
        "    return rng.random(), gen.random()\n"
    )
    assert codes("src/repro/fabric/good.py", source) == []


def test_r1_scope_excludes_non_deterministic_layers():
    source = "import time\nx = time.time()\n"
    assert codes("src/repro/cli.py", source) == []
    assert "R1" in codes("src/repro/store/x.py", source)


def test_r1_resolves_import_aliases():
    source = "import numpy.random as nr\nv = nr.rand(3)\n"
    assert "R1" in codes("src/repro/engine/x.py", source)


def test_r1_suppressed_with_reason():
    source = (
        "import time\n"
        "t = time.time()  # repro: ignore[R1] -- forensic timestamp only\n"
    )
    report = analyze_source("src/repro/store/x.py", source, all_rules())
    assert [f.rule for f in report.findings] == []
    assert [f.rule for f in report.suppressed] == ["R1"]


# -- R2: atomic publish -------------------------------------------------------

def test_r2_flags_raw_write_in_store_layer():
    source = "def f(path):\n    path.write_bytes(b'x')\n"
    assert "R2" in codes("src/repro/store/x.py", source)
    source = "def f(path):\n    with open(path, 'w') as fh:\n        fh.write('x')\n"
    assert "R2" in codes("src/repro/fabric/x.py", source)


def test_r2_allows_tmp_staging_and_atomic_rename():
    source = (
        "import os\n"
        "def publish(path, tmp):\n"
        "    tmp.write_bytes(b'x')\n"        # tmp target
        "    os.replace(tmp, path)\n"
    )
    assert codes("src/repro/store/x.py", source) == []


def test_r2_class_scope_ties_two_phase_writers_together():
    # Stage in one method, rename in a sibling: the class scope carries
    # the os.replace, so the staging write is not a finding.
    source = (
        "import os\n"
        "class Writer:\n"
        "    def stage(self, final):\n"
        "        self.scratch = final.with_name('x.part')\n"
        "        self.scratch.write_bytes(b'x')\n"
        "    def commit(self, final):\n"
        "        os.replace(self.scratch, final)\n"
    )
    assert codes("src/repro/store/x.py", source) == []


def test_r2_reads_and_out_of_scope_writes_are_fine():
    assert codes("src/repro/store/x.py", "open('f').read()\n") == []
    assert codes("src/repro/cli.py", "open('f', 'w').write('x')\n") == []


# -- R3: session discipline ---------------------------------------------------

def test_r3_flags_private_construction():
    source = "k = ReachabilityKernel(fpva)\n"
    assert "R3" in codes("src/repro/engine/x.py", source)
    source = "s = PressureSimulator(fpva)\n"
    assert "R3" in codes("examples/x.py", source)


def test_r3_allows_the_session_factories():
    source = "k = ReachabilityKernel(fpva)\ns = PressureSimulator(fpva)\n"
    assert codes("src/repro/context.py", source) == []
    assert codes("src/repro/sim/kernel.py", source) == []
    assert codes("src/repro/store/kernels.py", source) == []


# -- R4: deprecated spellings -------------------------------------------------

def test_r4_flags_shimmed_keywords_only_on_shimmed_callees():
    source = "run_campaign(fpva, v, backend='kernel')\n"
    assert "R4" in codes("src/repro/cli.py", source)
    source = "FaultDictionary(fpva, v, kernel=k)\n"
    assert "R4" in codes("examples/x.py", source)
    # kernel= is real API elsewhere (Tester), and positional args are not
    # the shim's concern.
    assert codes("src/repro/cli.py", "Tester(fpva, kernel=k)\n") == []
    assert codes("src/repro/cli.py", "run_campaign(fpva, v, context=ctx)\n") == []


# -- R5: broad except ---------------------------------------------------------

def test_r5_flags_swallowing_handlers():
    source = "try:\n    load()\nexcept Exception:\n    pass\n"
    assert "R5" in codes("src/repro/store/x.py", source)
    source = "try:\n    load()\nexcept:\n    pass\n"
    assert "R5" in codes("src/repro/sim/x.py", source)


def test_r5_allows_narrow_and_reraising_handlers():
    source = "try:\n    load()\nexcept OSError:\n    pass\n"
    assert codes("src/repro/store/x.py", source) == []
    source = (
        "try:\n    load()\nexcept Exception:\n    log()\n    raise\n"
    )
    assert codes("src/repro/store/x.py", source) == []


# -- R6: lease discipline -----------------------------------------------------

def test_r6_reserves_os_link_to_the_journal():
    source = "import os\ndef f(a, b):\n    os.link(a, b)\n"
    assert "R6" in codes("src/repro/fabric/runner.py", source)
    assert "R6" not in codes("src/repro/fabric/journal.py", source)


def test_r6_reserves_lease_files_to_the_claim_helpers():
    source = "def f(lease_path):\n    lease_path.unlink()\n"
    assert "R6" in codes("src/repro/fabric/x.py", source)
    assert "R6" not in codes("src/repro/fabric/supervision.py", source)
    # Non-lease file ops in fabric are R6-clean (R2 has its own opinion).
    assert "R6" not in codes("src/repro/fabric/x.py", "def f(p):\n    p.unlink()\n")


# -- R7: fork safety ----------------------------------------------------------

def test_r7_flags_mutable_defaults_and_module_state():
    source = "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n"
    assert "R7" in codes("src/repro/engine/x.py", source)
    source = "CACHE = {}\n"
    assert "R7" in codes("src/repro/sim/x.py", source)


def test_r7_allows_immutable_and_annotated_all():
    source = "__all__ = ['a']\nLIMIT = 5\nNAMES = ('a', 'b')\n"
    assert codes("src/repro/fabric/x.py", source) == []
    source = "def f(x, acc=None):\n    acc = [] if acc is None else acc\n"
    assert codes("src/repro/engine/x.py", source) == []


def test_r7_suppression_carries_reason():
    source = (
        "# repro: ignore[R7] -- per-process memo, never crosses a fork\n"
        "_MEMO = {}\n"
    )
    report = analyze_source("src/repro/engine/x.py", source, all_rules())
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["R7"]


# -- R8: dtype hygiene --------------------------------------------------------

def test_r8_flags_untyped_constructors_on_hot_path():
    source = "import numpy as np\nw = np.zeros(8)\ni = np.arange(4)\n"
    assert codes("src/repro/sim/kernel.py", source).count("R8") == 2


def test_r8_allows_typed_and_dtype_preserving():
    source = (
        "import numpy as np\n"
        "w = np.zeros(8, dtype=np.uint64)\n"
        "v = np.asarray(x)\n"
        "c = np.zeros_like(w)\n"
    )
    assert codes("src/repro/sim/backends/word.py", source) == []


def test_r8_scope_is_the_hot_path_only():
    source = "import numpy as np\nw = np.zeros(8)\n"
    assert codes("src/repro/engine/x.py", source) == []


# -- suppression machinery ----------------------------------------------------

def test_ignore_without_reason_is_itself_an_error():
    source = "import time\nt = time.time()  # repro: ignore[R1]\n"
    found = run("src/repro/store/x.py", source)
    assert {f.rule for f in found} == {SUPPRESS_RULE_ID, "R1"}


def test_ignore_of_unknown_rule_is_an_error():
    source = "x = 1  # repro: ignore[R99] -- no such rule\n"
    found = run("src/repro/store/x.py", source)
    assert [f.rule for f in found] == [SUPPRESS_RULE_ID]


def test_ignore_in_docstring_is_inert():
    source = '"""Docs quoting # repro: ignore[R1] -- like this."""\nx = 1\n'
    assert run("src/repro/store/x.py", source) == []


def test_comment_line_suppresses_next_line_only():
    source = (
        "import time\n"
        "# repro: ignore[R1] -- first read is deliberate\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    found = run("src/repro/store/x.py", source)
    assert len(found) == 1 and found[0].line == 4


def test_multi_rule_ignore():
    source, lines = (
        "x = 1  # repro: ignore[R1,R7] -- both deliberate\n"
    ), None
    sups, problems = parse_suppressions(
        source, source.splitlines(), {"R1", "R7"}
    )
    assert problems == []
    assert sups[0].rules == ("R1", "R7")
    assert sups[0].reason == "both deliberate"


def test_syntax_error_reports_parse_finding():
    found = run("src/repro/store/x.py", "def broken(:\n")
    assert [f.rule for f in found] == ["PARSE"]


# -- baseline format ----------------------------------------------------------

def entry_strategy():
    text = st.text(
        alphabet=st.characters(
            blacklist_categories=("Cs",), blacklist_characters="\x00"
        ),
        min_size=0,
        max_size=40,
    )
    return st.builds(
        BaselineEntry,
        rule=st.sampled_from(["R1", "R2", "R5", "R7"]),
        path=st.sampled_from(
            ["src/repro/store/a.py", "src/repro/fabric/b.py", "scripts/c.py"]
        ),
        fingerprint=st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
        line=st.integers(min_value=0, max_value=100000),
        message=text,
        justification=text.filter(lambda s: s.strip()),
    )


@settings(max_examples=100, deadline=None)
@given(st.lists(entry_strategy(), max_size=8))
def test_baseline_roundtrip(entries):
    document = render_baseline(entries)
    recovered = parse_baseline(json.loads(document))
    assert sorted(recovered, key=lambda e: (e.path, e.rule, e.fingerprint)) == (
        sorted(entries, key=lambda e: (e.path, e.rule, e.fingerprint))
    )
    # Canonical form is a fixed point: render(parse(render(x))) == render(x).
    assert render_baseline(recovered) == document


def test_baseline_rejects_empty_justification(tmp_path):
    payload = {
        "version": 1,
        "entries": [{
            "rule": "R1", "path": "a.py", "fingerprint": "ab" * 8,
            "line": 1, "message": "m", "justification": "   ",
        }],
    }
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(path)


def test_baseline_rejects_wrong_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError, match="version"):
        load_baseline(path)


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == []


def test_split_by_baseline_partitions_and_reports_stale():
    source = "import time\na = time.time()\n"
    findings = run("src/repro/store/x.py", source)
    entries = entries_from_findings(findings)
    # Force a justification (the placeholder is still a valid string).
    stale_entry = BaselineEntry(
        rule="R1", path="src/repro/store/gone.py",
        fingerprint="00" * 8, line=1, message="old", justification="was real",
    )
    new, matched, stale = split_by_baseline(findings, entries + [stale_entry])
    assert new == [] and len(matched) == len(findings)
    assert stale == [stale_entry]


def test_split_by_baseline_scopes_staleness_to_analyzed_paths():
    """A partial lint must not read out-of-scope baseline entries as stale."""
    source = "import time\na = time.time()\n"
    findings = run("src/repro/store/x.py", source)
    entries = entries_from_findings(findings)
    unjudged = BaselineEntry(
        rule="R1", path="src/repro/fabric/elsewhere.py",
        fingerprint="00" * 8, line=1, message="old", justification="was real",
    )
    new, matched, stale = split_by_baseline(
        findings, entries + [unjudged], analyzed_paths=["src/repro/store/x.py"]
    )
    assert new == [] and len(matched) == len(findings)
    assert stale == []  # elsewhere.py was not analyzed, so it is unjudged
    # ... but an entry for an analyzed file with no matching finding IS stale.
    gone = BaselineEntry(
        rule="R1", path="src/repro/store/x.py",
        fingerprint="11" * 8, line=9, message="old", justification="was real",
    )
    _, _, stale = split_by_baseline(
        findings, entries + [gone], analyzed_paths=["src/repro/store/x.py"]
    )
    assert stale == [gone]


def test_fingerprint_is_line_number_independent():
    base = "import time\nt = time.time()\n"
    shifted = "import time\n\n\n# moved down\nt = time.time()\n"
    f1 = run("src/repro/store/x.py", base)
    f2 = run("src/repro/store/x.py", shifted)
    assert f1[0].fingerprint == f2[0].fingerprint
    assert f1[0].line != f2[0].line


def test_fingerprint_occurrence_disambiguates_identical_lines():
    source = "import time\na = time.time()\nb = 1\na = time.time()\n"
    found = run("src/repro/store/x.py", source)
    assert len(found) == 2
    assert found[0].fingerprint != found[1].fingerprint


# -- CLI ----------------------------------------------------------------------

def make_repo(tmp_path: Path, body: str) -> Path:
    root = tmp_path / "repo"
    (root / "src" / "repro" / "store").mkdir(parents=True)
    (root / "src" / "repro" / "store" / "mod.py").write_text(body)
    return root


def test_cli_exit_codes_and_json_report(tmp_path, capsys):
    root = make_repo(tmp_path, "import time\nt = time.time()\n")
    out = tmp_path / "report.json"
    code = lint_main([
        "--root", str(root), "--format", "json", "--output", str(out),
        "src/repro",
    ])
    assert code == 1
    report = json.loads(out.read_text())
    assert report["counts"]["new_errors"] == 1
    assert report["new"][0]["rule"] == "R1"
    capsys.readouterr()


def test_cli_write_baseline_then_strict_clean(tmp_path, capsys):
    root = make_repo(tmp_path, "import time\nt = time.time()\n")
    assert lint_main(["--root", str(root), "--write-baseline", "src/repro"]) == 0
    # The placeholder justification must be filled in by a human; do it.
    baseline = root / "analysis-baseline.json"
    entries = load_baseline(baseline)
    write_baseline(baseline, [
        BaselineEntry(**{**e.as_dict(), "justification": "known, tracked"})
        for e in entries
    ])
    assert lint_main(["--root", str(root), "--strict", "src/repro"]) == 0
    capsys.readouterr()


def test_cli_strict_fails_on_stale_baseline(tmp_path, capsys):
    root = make_repo(tmp_path, "x = 1\n")
    stale = BaselineEntry(
        rule="R1", path="src/repro/store/mod.py",
        fingerprint="00" * 8, line=1, message="gone", justification="was real",
    )
    write_baseline(root / "analysis-baseline.json", [stale])
    assert lint_main(["--root", str(root), "src/repro"]) == 0     # default: ok
    assert lint_main(["--root", str(root), "--strict", "src/repro"]) == 1
    capsys.readouterr()


def test_cli_warning_severity_gates_only_strict(tmp_path, capsys):
    root = make_repo(tmp_path, "CACHE = {}\n")  # R7 is a warning
    assert lint_main(["--root", str(root), "src/repro"]) == 0
    assert lint_main(["--root", str(root), "--strict", "src/repro"]) == 1
    capsys.readouterr()


def test_repro_lint_subcommand_forwards():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        capture_output=True, text=True,
        cwd=REPO_ROOT, env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "R1" in proc.stdout and "R8" in proc.stdout


# -- end to end ---------------------------------------------------------------

def test_repo_lints_clean_against_committed_baseline():
    """The CI gate's local twin: the real tree, the real baseline."""
    code = lint_main(["--root", str(REPO_ROOT), "--strict"])
    assert code == 0, "repo must lint clean under --strict (see output)"


def test_committed_baseline_is_small_and_justified():
    entries = load_baseline(REPO_ROOT / "analysis-baseline.json")
    assert len(entries) <= 10
    for entry in entries:
        assert len(entry.justification) >= 20, (
            f"{entry.rule} at {entry.path}: justification too thin"
        )
