"""Tester, campaign and diagnosis on small arrays."""

import pytest

from repro.core import generate_suite
from repro.sim import (
    ChipUnderTest,
    FaultDictionary,
    StuckAt0,
    StuckAt1,
    Tester,
    run_campaign,
    run_sweep,
    sample_fault_set,
    fault_universe,
)


@pytest.fixture(scope="module")
def tiny_suite(request):
    from repro.fpva import full_layout

    fpva = full_layout(3, 3, name="tiny-suite")
    return fpva, generate_suite(fpva)


class TestTester:
    def test_fault_free_chip_passes(self, tiny_suite):
        fpva, suite = tiny_suite
        tester = Tester(fpva)
        result = tester.run(ChipUnderTest(fpva), suite.all_vectors())
        assert not result.fault_detected
        assert not result.failing

    def test_single_sa0_detected(self, tiny_suite):
        fpva, suite = tiny_suite
        tester = Tester(fpva)
        for valve in fpva.valves:
            assert tester.detects([StuckAt0(valve)], suite.all_vectors())

    def test_single_sa1_detected(self, tiny_suite):
        fpva, suite = tiny_suite
        tester = Tester(fpva)
        for valve in fpva.valves:
            assert tester.detects([StuckAt1(valve)], suite.all_vectors())

    def test_stop_at_first_fail(self, tiny_suite):
        fpva, suite = tiny_suite
        tester = Tester(fpva)
        chip = ChipUnderTest(fpva, [StuckAt0(fpva.valves[0])])
        result = tester.run(chip, suite.all_vectors(), stop_at_first_fail=True)
        assert result.fault_detected
        assert len(result.outcomes) <= suite.total

    def test_syndrome_hashable_and_stable(self, tiny_suite):
        fpva, suite = tiny_suite
        tester = Tester(fpva)
        chip = ChipUnderTest(fpva, [StuckAt0(fpva.valves[3])])
        s1 = tester.run(chip, suite.all_vectors()).syndrome()
        s2 = tester.run(chip, suite.all_vectors()).syndrome()
        assert s1 == s2
        hash(s1)


class TestCampaign:
    def test_sampler_rejects_incompatible(self, tiny_suite):
        import random

        fpva, _ = tiny_suite
        universe = fault_universe(fpva)
        rng = random.Random(1)
        for _ in range(50):
            faults = sample_fault_set(universe, 3, rng)
            assert len(faults) == 3

    def test_small_campaign_all_detected(self, tiny_suite):
        fpva, suite = tiny_suite
        result = run_campaign(fpva, suite.all_vectors(), num_faults=2, trials=50)
        assert result.trials == 50
        assert result.all_detected, result.undetected_examples

    def test_sweep_shape(self, tiny_suite):
        fpva, suite = tiny_suite
        sweep = run_sweep(fpva, suite.all_vectors(), fault_counts=(1, 2, 3), trials=20)
        assert set(sweep) == {1, 2, 3}
        for k, result in sweep.items():
            assert result.num_faults == k
            assert result.detection_rate >= 0.99  # paper: all detected


class TestDiagnosis:
    def test_single_fault_localization(self, tiny_suite):
        fpva, suite = tiny_suite
        dictionary = FaultDictionary(
            fpva, suite.all_vectors(), include_control_leaks=False
        )
        target = StuckAt0(fpva.valves[4])
        report = dictionary.diagnose_chip(ChipUnderTest(fpva, [target]))
        assert report.localized
        assert (target,) in report.candidates

    def test_fault_free_syndrome_empty(self, tiny_suite):
        fpva, suite = tiny_suite
        dictionary = FaultDictionary(
            fpva, suite.all_vectors(), include_control_leaks=False
        )
        report = dictionary.diagnose_chip(ChipUnderTest(fpva))
        # An empty syndrome is not in the dictionary (only faulty entries).
        assert report.syndrome == ()

    def test_resolution_reasonable(self, tiny_suite):
        fpva, suite = tiny_suite
        dictionary = FaultDictionary(
            fpva, suite.all_vectors(), include_control_leaks=False
        )
        assert dictionary.distinct_syndromes > fpva.valve_count / 2
        assert dictionary.resolution() < 4.0
