"""Pressure simulator unit and property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpva import full_layout
from repro.fpva.geometry import Cell, edge_between
from repro.sim.pressure import PressureSimulator


class TestReadings:
    def test_all_open_reaches_sink(self, tiny):
        sim = PressureSimulator(tiny)
        readings = sim.meter_readings(frozenset(tiny.valves))
        assert all(readings.values())

    def test_all_closed_dark(self, tiny):
        sim = PressureSimulator(tiny)
        assert not any(sim.meter_readings(frozenset()).values())

    def test_single_path(self, tiny):
        # Source at (1,1) corner, sink at (3,3): open an L route.
        route = [Cell(1, 1), Cell(2, 1), Cell(3, 1), Cell(3, 2), Cell(3, 3)]
        opened = frozenset(
            edge_between(a, b) for a, b in zip(route, route[1:])
        )
        sim = PressureSimulator(tiny)
        assert all(sim.meter_readings(opened).values())
        # Removing any single edge kills the route.
        for valve in opened:
            assert not any(sim.meter_readings(opened - {valve}).values())

    def test_channels_always_open(self, table5):
        sim = PressureSimulator(table5)
        cells = sim.cells_pressurized(frozenset())
        # The channel neighbours of the source cell are dark (channel is
        # not adjacent to the source here), but port cell is pressurized.
        assert table5.port_cell(table5.sources[0]) in cells

    def test_pressurized_cells_exclude_ports(self, tiny):
        sim = PressureSimulator(tiny)
        cells = sim.cells_pressurized(frozenset(tiny.valves))
        assert all(isinstance(c, Cell) for c in cells)

    def test_two_sinks_independent(self, two_sink_array):
        fpva = two_sink_array
        sim = PressureSimulator(fpva)
        # Straight route to o1 at (2,4) only.
        route = [Cell(1, 1), Cell(2, 1), Cell(2, 2), Cell(2, 3), Cell(2, 4)]
        opened = frozenset(edge_between(a, b) for a, b in zip(route, route[1:]))
        readings = sim.meter_readings(opened)
        assert readings["o1"] and not readings["o2"]


class TestMonotonicity:
    """Opening more valves can only extend the pressurized region."""

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_monotone(self, data):
        fpva = full_layout(4, 4)
        sim = PressureSimulator(fpva)
        valves = list(fpva.valves)
        subset = data.draw(st.sets(st.sampled_from(valves), max_size=10))
        extra = data.draw(st.sampled_from(valves))
        small = sim.pressurized_nodes(frozenset(subset))
        large = sim.pressurized_nodes(frozenset(subset | {extra}))
        assert small <= large

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_readings_monotone(self, data):
        fpva = full_layout(4, 4)
        sim = PressureSimulator(fpva)
        valves = list(fpva.valves)
        subset = data.draw(st.sets(st.sampled_from(valves), max_size=12))
        readings_small = sim.meter_readings(frozenset(subset))
        readings_all = sim.meter_readings(frozenset(valves))
        for name, hit in readings_small.items():
            assert not hit or readings_all[name]
