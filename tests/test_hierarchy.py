"""Hierarchical flow-path generation (section III-B-4)."""

import pytest

from repro.core.coverage import measure_coverage
from repro.core.hierarchy import BlockGrid, HierarchicalPathGenerator, block_graph
from repro.core.validate import validate_vector
from repro.fpva import FPVABuilder, Side, full_layout, table1_layout
from repro.fpva.geometry import Cell


class TestBlockGrid:
    def test_dimensions(self):
        grid = BlockGrid(table1_layout(20), subblock=5)
        assert (grid.brows, grid.bcols) == (4, 4)
        assert grid.hierarchy_label() == "4x4"

    def test_block_of(self):
        grid = BlockGrid(table1_layout(10), subblock=5)
        assert grid.block_of(Cell(1, 1)) == (1, 1)
        assert grid.block_of(Cell(5, 5)) == (1, 1)
        assert grid.block_of(Cell(6, 5)) == (2, 1)
        assert grid.block_of(Cell(10, 10)) == (2, 2)

    def test_cells_of_excludes_obstacles(self):
        fpva = table1_layout(15)  # obstacle at (8,8)
        grid = BlockGrid(fpva, subblock=5)
        cells = grid.cells_of((2, 2))
        assert Cell(8, 8) not in cells
        assert len(cells) == 24

    def test_uneven_partition(self):
        grid = BlockGrid(full_layout(7, 7), subblock=5)
        assert (grid.brows, grid.bcols) == (2, 2)
        assert len(grid.cells_of((2, 2))) == 4  # the 2x2 remainder

    def test_border_valves(self):
        grid = BlockGrid(full_layout(10, 10), subblock=5)
        border = grid.border_valves((1, 1), (1, 2))
        assert len(border) == 5
        for valve in border:
            assert valve.a.c == 5 and valve.b.c == 6


class TestBlockGraph:
    def test_structure(self):
        fpva = table1_layout(10)
        g = block_graph(BlockGrid(fpva, subblock=5))
        blocks = [n for n in g.nodes if isinstance(n, tuple) and len(n) == 2]
        assert len(blocks) == 4
        assert len(fpva.sources) + len(fpva.sinks) == 2
        # 4 block-block borders + 2 port attachments.
        assert g.number_of_edges() == 6

    def test_border_attribute(self):
        fpva = full_layout(10, 10)
        g = block_graph(BlockGrid(fpva, subblock=5))
        assert len(g.edges[(1, 1), (1, 2)]["border"]) == 5


class TestGeneration:
    @pytest.fixture(scope="class")
    def result10(self):
        fpva = table1_layout(10)
        gen = HierarchicalPathGenerator(fpva)
        return fpva, gen, gen.generate()

    def test_full_observable_coverage(self, result10):
        fpva, gen, res = result10
        report = measure_coverage(fpva, res.vectors, include_leak_pairs=False)
        assert not report.sa0_missing

    def test_vectors_are_legal_paths(self, result10):
        fpva, gen, res = result10
        for vec in res.vectors:
            report = validate_vector(fpva, vec)
            assert report.ok, report.issues

    def test_path_count_in_paper_regime(self, result10):
        fpva, gen, res = result10
        # Paper: 4 paths for 10x10 hierarchical; allow the same order of
        # magnitude but far below the naive per-valve count.
        assert res.np_paths <= 16

    def test_single_block_array(self):
        fpva = table1_layout(5)  # 1x1 block grid
        res = HierarchicalPathGenerator(fpva).generate()
        report = measure_coverage(fpva, res.vectors, include_leak_pairs=False)
        assert not report.sa0_missing

    def test_array_with_obstacles(self):
        fpva = (
            FPVABuilder(8, 8, name="hier-obstacle")
            .obstacle_rect(4, 4, 5, 5)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 8)
            .build()
        )
        res = HierarchicalPathGenerator(fpva, subblock=4).generate()
        report = measure_coverage(fpva, res.vectors, include_leak_pairs=False)
        assert not report.sa0_missing
