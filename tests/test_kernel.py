"""Kernel/legacy equivalence: the compiled bitmask path must be exact.

The compiled :class:`ReachabilityKernel` and its batched consumers
(dictionary build, campaign backend) are pure accelerations — every test
here asserts *exact* equality against the retained pure-Python reference
path, over randomized arrays, fault sets spanning all five fault kinds,
and vectors.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import generate_suite
from repro.engine import AdaptiveDiagnoser, get_scenario, scenario_names
from repro.fpva import FPVABuilder, Side, full_layout, table1_layout
from repro.fpva.geometry import Cell
from repro.sim import (
    BatchEvaluator,
    ChipUnderTest,
    CompiledFaultSet,
    FaultDictionary,
    PressureSimulator,
    ReachabilityKernel,
)
from repro.sim.campaign import run_campaign
from repro.sim.kernel import _pack_words, _unpack_words


class TestPackRoundTrip:
    """Satellite: the packbits fast path is an exact bool<->word bijection."""

    @settings(max_examples=60, deadline=None)
    @given(
        cols=st.integers(1, 5),
        batch=st.integers(1, 200),
        fill=st.sampled_from(["random", "zeros", "ones"]),
        seed=st.integers(0, 2**16),
    )
    def test_roundtrip(self, cols, batch, fill, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        if fill == "random":
            bools = rng.random((batch, cols)) < 0.5
        else:
            bools = np.full((batch, cols), fill == "ones", dtype=bool)
        words = _pack_words(bools)
        assert words.shape == (cols, (batch + 63) // 64)
        assert words.dtype == np.uint64
        assert np.array_equal(_unpack_words(words, batch), bools)

    def test_tail_word_padding_is_zero(self):
        """Bits past the batch in the last word must stay clear — the
        propagation sweep ORs whole words, so tail garbage would leak
        between scenarios."""
        import numpy as np

        bools = np.ones((65, 3), dtype=bool)  # 2 words, 63 pad bits
        words = _pack_words(bools)
        assert words.shape == (3, 2)
        assert (words[:, 1] == np.uint64(1)).all()


def _random_vectors(fpva, rng, count=8):
    """Synthetic vectors with simulator-derived expectations (covers
    layouts the ILP suite generator does not support)."""
    from repro.core.vectors import TestVector, VectorKind

    sim = PressureSimulator(fpva)
    valves = list(fpva.valves)
    return [
        TestVector(
            name=f"rv{i}",
            kind=VectorKind.BASELINE,
            open_valves=(opened := frozenset(
                rng.sample(valves, rng.randrange(len(valves) + 1))
            )),
            expected=sim.meter_readings(opened),
        )
        for i in range(count)
    ]


@pytest.fixture(scope="module")
def arrays(two_sink_array):
    return (
        full_layout(3, 3, name="kernel-3x3"),
        table1_layout(5),  # permanent channel edge
        two_sink_array,  # multiple meters
    )


class TestSingleQueryEquivalence:
    def test_random_open_and_blocked_sets(self, arrays):
        """meter_readings/pressurized_nodes == the retained legacy BFS."""
        rng = random.Random(42)
        for fpva in arrays:
            sim = PressureSimulator(fpva)
            valves = list(fpva.valves)
            edges = list(fpva.flow_edges)
            for _ in range(120):
                open_set = frozenset(
                    rng.sample(valves, rng.randrange(len(valves) + 1))
                )
                blocked = frozenset(rng.sample(edges, rng.randrange(0, 3)))
                fast = sim.meter_readings(open_set, blocked=blocked)
                ref = sim.meter_readings_legacy(open_set, blocked=blocked)
                assert fast == ref
                assert list(fast) == list(ref)  # same key order too
                assert sim.pressurized_nodes(
                    open_set, blocked=blocked
                ) == sim.pressurized_nodes_legacy(open_set, blocked=blocked)

    def test_open_iterable_coerced_once(self, arrays):
        """Generators (single-pass iterables) are valid open sets."""
        fpva = arrays[0]
        sim = PressureSimulator(fpva)
        all_open = sim.meter_readings(frozenset(fpva.valves))
        assert sim.meter_readings(v for v in fpva.valves) == all_open
        assert sim.pressurized_nodes(
            v for v in fpva.valves
        ) == sim.pressurized_nodes_legacy(frozenset(fpva.valves))

    def test_non_valve_edges_in_open_set_are_noops(self, arrays):
        """Channel edges in the commanded set are ignored, as in legacy."""
        fpva = table1_layout(5)
        sim = PressureSimulator(fpva)
        channel = next(iter(fpva.channels))
        opened = frozenset(fpva.valves[:5]) | {channel}
        assert sim.meter_readings(opened) == sim.meter_readings_legacy(opened)

    def test_kernel_round_trips_through_pickle(self, arrays):
        """Campaign workers receive kernels by pickling."""
        fpva = arrays[1]
        kernel = ReachabilityKernel(fpva)
        clone = pickle.loads(pickle.dumps(kernel))
        mask = kernel.valve_mask(fpva.valves[::2])
        assert clone.readings(mask) == kernel.readings(mask)


class TestCompiledFaultSetEquivalence:
    def test_effective_masks_match_chip_all_fault_kinds(self, arrays):
        """CompiledFaultSet replays ChipUnderTest.effective_state exactly.

        The mixed scenario draws every fault kind (SA0, SA1, ControlLeak,
        IntermittentStuckAt, ChannelBlocked).
        """
        rng = random.Random(7)
        scenario = get_scenario("mixed")
        for fpva in arrays:
            vectors = _random_vectors(fpva, rng, count=10)
            kernel = ReachabilityKernel(fpva)
            evaluator = BatchEvaluator(kernel, vectors)
            universe = scenario.universe(fpva)
            for _ in range(40):
                faults = scenario.sample(universe, rng, rng.choice((1, 2, 3)))
                chip = ChipUnderTest(fpva, faults)
                compiled = CompiledFaultSet(kernel, faults)
                for vi, vector in enumerate(vectors):
                    open_ref, blocked_ref = chip.effective_state(vector)
                    open_mask, blocked_mask = compiled.effective_masks(
                        evaluator.commanded_masks[vi], vector.name
                    )
                    assert open_mask == kernel.valve_mask(open_ref)
                    assert blocked_mask == kernel.edge_mask(blocked_ref)

    def test_unknown_valve_rejected_like_chip(self, arrays):
        fpva = arrays[0]
        other = full_layout(6, 6, name="kernel-other")
        kernel = ReachabilityKernel(fpva)
        from repro.sim import StuckAt0

        bogus = StuckAt0(other.valves[-1])
        with pytest.raises(ValueError):
            CompiledFaultSet(kernel, (bogus,))
        with pytest.raises(ValueError):
            ChipUnderTest(fpva, (bogus,))


class TestDictionaryEquivalence:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_tables_identical_per_scenario(self, arrays, scenario_name):
        """Kernel-built dictionaries equal legacy ones — same syndromes,
        same candidate lists, same insertion order."""
        scenario = get_scenario(scenario_name)
        rng = random.Random(3)
        for fpva in arrays[:2]:
            vectors = generate_suite(fpva).all_vectors()
            universe = scenario.universe(fpva)
            sub = rng.sample(universe, min(24, len(universe)))
            kwargs = dict(universe=sub, max_cardinality=2)
            fast = FaultDictionary(fpva, vectors, backend="kernel", **kwargs)
            ref = FaultDictionary(fpva, vectors, backend="legacy", **kwargs)
            assert list(fast._table.items()) == list(ref._table.items())
            assert fast.distinct_syndromes == ref.distinct_syndromes
            assert fast.resolution() == ref.resolution()

    def test_default_universe_with_leaks(self, tiny):
        vectors = generate_suite(tiny).all_vectors()
        fast = FaultDictionary(tiny, vectors, backend="kernel")
        ref = FaultDictionary(tiny, vectors, backend="legacy")
        assert list(fast._table.items()) == list(ref._table.items())

    def test_partial_expectations_fall_back_to_legacy(self, two_sink_array):
        """Vectors not covering every sink still build correctly."""
        from repro.core.vectors import TestVector, VectorKind

        fpva = two_sink_array
        vectors = _random_vectors(fpva, random.Random(2), count=6)
        partial = TestVector(
            name="partial",
            kind=VectorKind.BASELINE,
            open_valves=frozenset(fpva.valves[:3]),
            expected={"o1": False},  # o2 missing
        )
        suite = vectors + [partial]
        with pytest.warns(UserWarning, match="falling\\s+back"):
            fast = FaultDictionary(fpva, suite, backend="kernel")
        ref = FaultDictionary(fpva, suite, backend="legacy")
        assert list(fast._table.items()) == list(ref._table.items())


class TestDiagnosisEquivalence:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_adaptive_and_full_suite_verdicts(self, small, scenario_name):
        """Kernel-backed dictionary + adaptive engine reproduce the legacy
        full-suite reports for chips of every scenario."""
        scenario = get_scenario(scenario_name)
        vectors = generate_suite(small).all_vectors()
        universe = scenario.universe(small)
        fast = FaultDictionary(small, vectors, universe=universe)
        ref = FaultDictionary(small, vectors, universe=universe, backend="legacy")
        engine = AdaptiveDiagnoser(fast)
        rng = random.Random(19)
        for _ in range(4):
            chip = ChipUnderTest(small, scenario.sample(universe, rng, 1))
            fast_report = fast.diagnose_chip(chip)
            ref_report = ref.diagnose_chip(chip)
            session = engine.diagnose(chip)
            assert fast_report.syndrome == ref_report.syndrome
            assert fast_report.candidates == ref_report.candidates
            assert session.report.syndrome == ref_report.syndrome
            assert session.report.candidates == ref_report.candidates


class TestCampaignEquivalence:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_backends_bit_identical(self, small, scenario_name):
        scenario = get_scenario(scenario_name)
        vectors = generate_suite(small).all_vectors()
        for k in (1, 2):
            kwargs = dict(
                num_faults=k, trials=40, seed=13 + k, scenario=scenario
            )
            fast = run_campaign(small, vectors, backend="kernel", **kwargs)
            ref = run_campaign(small, vectors, backend="legacy", **kwargs)
            assert fast.trials == ref.trials
            assert fast.detected == ref.detected
            assert fast.undetected_examples == ref.undetected_examples


@st.composite
def kernel_layouts(draw):
    """Small randomized arrays: optional channel and obstacle placements."""
    nr = draw(st.integers(3, 5))
    nc = draw(st.integers(3, 5))
    builder = FPVABuilder(nr, nc, name=f"kernel-hypo-{nr}x{nc}")
    if draw(st.booleans()):
        builder.channel(Cell(nr - 1, 1), "east", draw(st.integers(1, 2)))
    builder.source(Side.WEST, 1).sink(Side.EAST, nr)
    return builder.build()


@pytest.mark.slow
class TestRandomizedProperty:
    """Satellite: randomized kernel/legacy equivalence property."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(kernel_layouts(), st.integers(0, 2**16))
    def test_readings_dictionary_and_verdicts_match(self, fpva, seed):
        rng = random.Random(seed)
        vectors = generate_suite(fpva).all_vectors()
        sim = PressureSimulator(fpva)
        scenario = get_scenario("mixed")
        universe = scenario.universe(fpva)

        # Readings under faulty effective states match the legacy BFS.
        for _ in range(10):
            faults = scenario.sample(universe, rng, rng.choice((1, 2)))
            chip = ChipUnderTest(fpva, faults)
            for vector in vectors:
                opened, blocked = chip.effective_state(vector)
                assert sim.meter_readings(
                    opened, blocked=blocked
                ) == sim.meter_readings_legacy(opened, blocked=blocked)

        # Dictionary tables and adaptive verdicts match the legacy build.
        sub = rng.sample(universe, min(16, len(universe)))
        fast = FaultDictionary(fpva, vectors, universe=sub, max_cardinality=2)
        ref = FaultDictionary(
            fpva, vectors, universe=sub, max_cardinality=2, backend="legacy"
        )
        assert list(fast._table.items()) == list(ref._table.items())
        engine = AdaptiveDiagnoser(fast)
        for faults in ([], [sub[0]]):
            chip = ChipUnderTest(fpva, faults)
            session = engine.diagnose(chip)
            full = ref.diagnose_chip(chip)
            assert session.report.syndrome == full.syndrome
            assert session.report.candidates == full.candidates
