"""The Table I benchmark layouts must match the published figures exactly."""

import pytest

from repro.fpva import (
    TABLE1_PAPER,
    TABLE1_SIZES,
    TABLE1_VALVE_COUNTS,
    all_table1_layouts,
    fig8_layout,
    fig9_layout,
    full_layout,
    table1_layout,
)


class TestTable1Layouts:
    @pytest.mark.parametrize("n", TABLE1_SIZES)
    def test_valve_counts_match_paper(self, n):
        assert table1_layout(n).valve_count == TABLE1_VALVE_COUNTS[n]

    @pytest.mark.parametrize("n", TABLE1_SIZES)
    def test_ports_on_opposite_corners(self, n):
        fpva = table1_layout(n)
        (src,) = fpva.sources
        (snk,) = fpva.sinks
        assert fpva.port_cell(src).r == 1
        assert fpva.port_cell(snk).r == n

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            table1_layout(7)

    def test_all_layouts(self):
        layouts = all_table1_layouts()
        assert set(layouts) == set(TABLE1_SIZES)

    def test_paper_rows_consistent(self):
        # The stored Table I rows must be internally consistent.
        for row in TABLE1_PAPER:
            assert row.total_vectors == row.np_paths + row.nc_cuts + row.nl_leak
            n = int(row.dimension.split("x")[0])
            assert TABLE1_VALVE_COUNTS[n] == row.nv

    def test_removed_budget_identity(self):
        # n_v = (2n^2 - 2n) - (n/5)^2 for every published array.
        for n in TABLE1_SIZES:
            expected = 2 * n * n - 2 * n - (n // 5) ** 2
            assert TABLE1_VALVE_COUNTS[n] == expected


class TestFigureLayouts:
    def test_fig8_is_full_10x10(self):
        fpva = fig8_layout()
        assert (fpva.nr, fpva.nc) == (10, 10)
        assert not fpva.obstacles and not fpva.channels
        assert fpva.valve_count == 180

    def test_fig9_three_channels_two_obstacles(self):
        fpva = fig9_layout()
        assert (fpva.nr, fpva.nc) == (20, 20)
        assert len(fpva.obstacles) == 2
        assert fpva.valve_count == 744
        # Three straight channel runs.
        components = fpva.channel_components
        assert len(components) == 3

    def test_full_layout_has_no_structure(self):
        fpva = full_layout(6, 8)
        assert fpva.valve_count == 2 * 6 * 8 - 6 - 8
        assert not fpva.obstacles and not fpva.channels
