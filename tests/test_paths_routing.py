"""Direct flow-path generation and max-flow routing."""

import pytest

from repro.core.coverage import sa0_observable_valves
from repro.core.paths import (
    FlowPathGenerator,
    build_flow_path_problem,
    channel_region_caps,
    cover_path_valves,
)
from repro.core.routing import (
    RoutingError,
    contracted_cell_graph,
    disjoint_route_through,
    expand_contracted_route,
    route_valves,
    shortest_route,
)
from repro.core.validate import validate_vector
from repro.fpva import FPVABuilder, Side, full_layout
from repro.fpva.geometry import Cell, edge_between
from repro.fpva.graph import cell_graph
from repro.ilp import SolveOptions
from repro.sim.pressure import PressureSimulator

OPTS = SolveOptions(time_limit=90)


class TestDirectGeneration:
    def test_tiny_full_coverage(self, tiny):
        result = FlowPathGenerator(tiny, OPTS).generate()
        covered = set()
        for vec in result.vectors:
            covered |= vec.open_valves
        assert covered == set(tiny.valves)
        assert result.proven_optimal

    def test_vectors_valid(self, tiny):
        result = FlowPathGenerator(tiny, OPTS).generate()
        for vec in result.vectors:
            report = validate_vector(tiny, vec)
            assert report.ok, report.issues

    def test_channel_array(self, table5):
        result = FlowPathGenerator(table5, OPTS).generate()
        covered = set()
        sim = PressureSimulator(table5)
        for vec in result.vectors:
            covered |= sa0_observable_valves(sim, vec, table5)
        assert covered == set(table5.valves)

    def test_obstacle_array(self, obstacle_array):
        result = FlowPathGenerator(obstacle_array, OPTS).generate()
        covered = set()
        for vec in result.vectors:
            covered |= vec.open_valves
        assert covered == set(obstacle_array.valves)

    def test_problem_shape(self, table5):
        prob = build_flow_path_problem(table5)
        assert len(prob.cover_edges) == table5.valve_count
        assert len(prob.closure_edges) == len(table5.channels)
        assert len(prob.region_caps) == 1

    def test_region_caps_boundary(self, table5):
        g = cell_graph(table5)
        caps = channel_region_caps(table5, g)
        (boundary, cap), = caps
        assert cap == 2
        # The single channel edge joins two interior cells: each has three
        # more openings -> boundary of 6 edges.
        assert len(boundary) == 6


class TestRouting:
    def test_route_through_every_valve(self, tiny):
        for valve in tiny.valves:
            route = disjoint_route_through(tiny, valve)
            assert valve in route_valves(tiny, route)
            assert len(set(route)) == len(route)  # simple

    def test_avoid_valve_respected(self, small):
        target = edge_between(Cell(2, 2), Cell(2, 3))
        avoid = edge_between(Cell(2, 1), Cell(2, 2))
        route = disjoint_route_through(small, target, avoid_valves=[avoid])
        assert avoid not in route_valves(small, route)
        assert target in route_valves(small, route)

    def test_required_equals_avoided_rejected(self, tiny):
        valve = tiny.valves[0]
        with pytest.raises(RoutingError):
            disjoint_route_through(tiny, valve, avoid_valves=[valve])

    def test_impossible_route(self):
        # 1x3 strip: the middle valve cannot be avoided when routing
        # through the last one.
        fpva = (
            FPVABuilder(1, 3)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 1)
            .build()
        )
        first = edge_between(Cell(1, 1), Cell(1, 2))
        second = edge_between(Cell(1, 2), Cell(1, 3))
        with pytest.raises(RoutingError):
            disjoint_route_through(fpva, second, avoid_valves=[first])

    def test_route_through_channel_region(self, table5):
        """Routes crossing the channel expand through its cells."""
        # Valve just east of the channel (channel spans (3,2)-(3,3)).
        valve = edge_between(Cell(3, 3), Cell(3, 4))
        route = disjoint_route_through(table5, valve)
        assert valve in route_valves(table5, route)
        # Cells must be consecutive-adjacent throughout.
        cells = [n for n in route if isinstance(n, Cell)]
        for a, b in zip(cells, cells[1:]):
            assert abs(a.r - b.r) + abs(a.c - b.c) == 1

    def test_shortest_route(self, tiny):
        route = shortest_route(tiny)
        assert route[0] in tiny.sources and route[-1] in tiny.sinks

    def test_contracted_graph_regions(self, table5):
        g = contracted_cell_graph(table5)
        regions = g.graph["regions"]
        assert len(regions) == 1
        (members,) = regions.values()
        assert len(members) == 2  # a length-1 channel joins two cells

    def test_route_valves_skips_channels(self, table5):
        # A route that walks along the channel contributes no channel
        # "valves".
        channel_edge = next(iter(table5.channels))
        route = [channel_edge.a, channel_edge.b]
        assert route_valves(table5, route) == []
