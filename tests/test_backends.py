"""The backend-registry spine: every tier pinned to the object reference.

The PR-6 acceptance contract lives here:

* each registered backend (word / tile / jit / gpu) produces **bit
  identical** readings to the ``engine="object"`` reference — absent
  optional dependencies *skip* with the probe's reason, never fail;
* a :class:`~repro.store.KernelStore`-persisted kernel warm-loads into
  any backend tier and replays identical readings (artifacts are
  backend-agnostic);
* selection flows through one spelling: ``kernel_backend=`` on the
  session, ``REPRO_KERNEL_BACKEND`` in the environment, and the CLI
  ``--kernel-backend`` flag;
* unavailable tiers fall back to the default with a warning when asked
  to, and the deprecated ``backend="kernel"``/``kernel=`` spellings
  route into the registry through the single deprecation path,
  bit-identically.
"""

from __future__ import annotations

import pickle
import random
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.context import ExecutionContext
from repro.core import generate_suite
from repro.engine import get_scenario
from repro.fpva import full_layout, table1_layout
from repro.sim import ChipUnderTest, FaultDictionary, PressureSimulator
from repro.sim.backends import (
    DEFAULT_BACKEND,
    BackendUnavailable,
    KernelBackend,
    availability,
    backend_names,
    canonical_name,
    create,
    default_backend,
    pick_tile_words,
    resolve_legacy_engine,
)
from repro.sim.campaign import run_campaign
from repro.sim.kernel import ReachabilityKernel


def _require(name: str):
    reason = availability()[name]
    if reason is not None:
        pytest.skip(f"backend {name!r} unavailable: {reason}")


def _random_scenarios(kernel, rng, count):
    """(open_mask, blocked_mask) pairs spanning sparse and dense patterns."""
    out = []
    for _ in range(count):
        density = rng.choice((0.1, 0.5, 0.9))
        open_mask = sum(
            1 << i for i in range(kernel.n_valves) if rng.random() < density
        )
        blocked_mask = sum(
            1 << i for i in range(kernel.n_edges) if rng.random() < 0.15
        )
        out.append((open_mask, blocked_mask))
    # Edge words: all-closed and all-open scenarios.
    out.append((0, 0))
    out.append(((1 << kernel.n_valves) - 1, 0))
    return out


@pytest.fixture(scope="module")
def fpva():
    return table1_layout(5)


@pytest.fixture(scope="module")
def reference(fpva):
    """Object-engine readings for a fixed scenario set (the ground truth)."""
    kernel = ReachabilityKernel(fpva)
    scenarios = _random_scenarios(kernel, random.Random(7), 150)
    sim = PressureSimulator(fpva, engine="object")
    valve_order = list(kernel.valve_index)
    edge_order = list(kernel.edge_index)
    rows = []
    for open_mask, blocked_mask in scenarios:
        opened = frozenset(
            v for i, v in enumerate(valve_order) if (open_mask >> i) & 1
        )
        blocked = frozenset(
            e for i, e in enumerate(edge_order) if (blocked_mask >> i) & 1
        )
        readings = sim.meter_readings(opened, blocked=blocked)
        rows.append([readings[name] for name in kernel.sink_names])
    return scenarios, np.array(rows, dtype=bool)


@pytest.mark.parametrize("name", backend_names())
class TestBackendEquivalence:
    """Tentpole spine: every tier bit-identical to the object engine."""

    def test_batched_matches_object_reference(self, fpva, reference, name):
        _require(name)
        scenarios, expected = reference
        kernel = ReachabilityKernel(fpva).set_backend(name)
        got = kernel.batch_readings(scenarios)
        assert got.dtype == bool and got.shape == expected.shape
        assert np.array_equal(got, expected)

    def test_scalar_matches_object_reference(self, fpva, reference, name):
        _require(name)
        scenarios, expected = reference
        kernel = ReachabilityKernel(fpva).set_backend(name)
        for (open_mask, blocked_mask), row in zip(scenarios[:40], expected):
            readings = kernel.readings(open_mask, blocked_mask)
            assert [readings[s] for s in kernel.sink_names] == list(row)

    def test_reach_matches_scalar_reference(self, fpva, name):
        _require(name)
        kernel = ReachabilityKernel(fpva).set_backend(name)
        rng = random.Random(11)
        for open_mask, blocked_mask in _random_scenarios(kernel, rng, 20):
            assert bytes(kernel.reach(open_mask, blocked_mask)) == bytes(
                kernel._scalar_reach(open_mask, blocked_mask)
            )

    def test_odd_batch_widths(self, fpva, name):
        """Non-multiple-of-64 batches exercise the padded tail word."""
        _require(name)
        kernel = ReachabilityKernel(fpva).set_backend(name)
        ref_kernel = ReachabilityKernel(fpva).set_backend("word")
        rng = random.Random(3)
        for size in (1, 63, 64, 65, 130):
            scenarios = _random_scenarios(kernel, rng, size)[:size]
            assert np.array_equal(
                kernel.batch_readings(scenarios),
                ref_kernel.batch_readings(scenarios),
            )

    def test_warm_start_roundtrip(self, fpva, reference, name, tmp_path):
        """Acceptance: a persisted kernel loads into any tier identically."""
        _require(name)
        scenarios, expected = reference
        seed_ctx = ExecutionContext(fpva, cache_dir=tmp_path)
        seed_ctx.kernel  # cold compile persists the artifact
        assert seed_ctx.kernel_compiles == 1
        ctx = ExecutionContext(fpva, cache_dir=tmp_path, kernel_backend=name)
        kernel = ctx.kernel
        assert ctx.kernel_loads == 1 and ctx.kernel_compiles == 0
        assert kernel.backend.name == name
        assert np.array_equal(kernel.batch_readings(scenarios), expected)

    def test_pickle_roundtrip(self, fpva, name):
        """Shard payloads carry the backend; readings survive the trip."""
        _require(name)
        kernel = ReachabilityKernel(fpva).set_backend(name)
        scenarios = _random_scenarios(kernel, random.Random(5), 40)
        expected = kernel.batch_readings(scenarios)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.backend.name == name
        assert np.array_equal(clone.batch_readings(scenarios), expected)


class TestRegistry:
    def test_registry_names_and_alias(self):
        assert backend_names() == ("word", "tile", "jit", "gpu")
        assert canonical_name("kernel") == "tile"
        assert canonical_name("word") == "word"
        with pytest.raises(ValueError, match="unknown kernel backend"):
            canonical_name("warp")

    def test_always_available_tiers(self):
        status = availability()
        assert status["word"] is None and status["tile"] is None

    def test_env_var_selects_backend(self, fpva, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "word")
        assert default_backend() == "word"
        ctx = ExecutionContext(fpva)
        assert ctx.kernel_backend == "word"
        assert ctx.kernel.backend.name == "word"

    def test_env_var_typo_fails_at_construction(self, fpva, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "warp")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            ExecutionContext(fpva)

    def test_explicit_knob_beats_env(self, fpva, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "tile")
        ctx = ExecutionContext(fpva, kernel_backend="word")
        assert ctx.kernel.backend.name == "word"

    def test_unavailable_tier_raises_without_fallback(self, fpva):
        missing = [n for n, why in availability().items() if why is not None]
        if not missing:
            pytest.skip("every optional backend is installed here")
        kernel = ReachabilityKernel(fpva)
        with pytest.raises(BackendUnavailable, match=missing[0]):
            create(missing[0], kernel)

    def test_unavailable_tier_falls_back_with_warning(self, fpva):
        missing = [n for n, why in availability().items() if why is not None]
        if not missing:
            pytest.skip("every optional backend is installed here")
        ctx = ExecutionContext(fpva, kernel_backend=missing[0])
        with pytest.warns(RuntimeWarning, match="falling back"):
            kernel = ctx.kernel
        assert kernel.backend.name == DEFAULT_BACKEND

    def test_set_backend_same_name_is_noop(self, fpva):
        kernel = ReachabilityKernel(fpva).set_backend("tile")
        attached = kernel.backend
        assert kernel.set_backend("tile").backend is attached
        assert kernel.set_backend("kernel").backend is attached  # alias

    def test_set_backend_rejects_foreign_instances(self, fpva):
        kernel = ReachabilityKernel(fpva)
        other = ReachabilityKernel(full_layout(3, 3))
        with pytest.raises(ValueError, match="different kernel"):
            kernel.set_backend(create("word", other))
        with pytest.raises(TypeError, match="registry name"):
            kernel.set_backend(42)

    def test_pick_tile_words(self):
        # Small batches fit one tile exactly; huge batches cap at 32 words.
        assert pick_tile_words(1) == 1
        assert pick_tile_words(64) == 1
        assert pick_tile_words(65) == 2
        assert pick_tile_words(256) == 4
        assert pick_tile_words(257) == 5
        assert pick_tile_words(1024) == 16
        assert pick_tile_words(4096) == 32
        assert pick_tile_words(10**6) == 32


class TestLegacyShims:
    """Satellite: deprecated spellings route into the registry, warning once."""

    def test_resolve_legacy_engine(self):
        with pytest.warns(DeprecationWarning, match="backend='kernel'"):
            assert resolve_legacy_engine("kernel", "campaign") == ("kernel", "tile")
        with pytest.warns(DeprecationWarning, match="backend='legacy'"):
            assert resolve_legacy_engine("legacy", "campaign") == ("object", None)
        with pytest.raises(ValueError, match="unknown campaign backend"):
            resolve_legacy_engine("warp", "campaign")

    def test_default_spellings_do_not_warn(self, fpva):
        vectors = generate_suite(fpva).all_vectors()[:4]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_campaign(fpva, vectors, num_faults=1, trials=3, seed=1)
            FaultDictionary(fpva, vectors, universe=[])

    def test_dictionary_shim_warns_and_matches(self, fpva):
        vectors = generate_suite(fpva).all_vectors()
        universe = get_scenario("stuck-at").universe(fpva)[:12]
        with pytest.warns(DeprecationWarning, match="backend='kernel'"):
            shimmed = FaultDictionary(
                fpva, vectors, universe=universe, backend="kernel"
            )
        modern = FaultDictionary(
            fpva, vectors, universe=universe, context=ExecutionContext(fpva)
        )
        assert shimmed.backend == "kernel"
        assert list(shimmed._table.items()) == list(modern._table.items())

    def test_dictionary_legacy_spelling_routes_to_object(self, fpva):
        vectors = generate_suite(fpva).all_vectors()
        with pytest.warns(DeprecationWarning, match="backend='legacy'"):
            ref = FaultDictionary(fpva, vectors, universe=[], backend="legacy")
        assert ref.backend == "legacy"

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(0, 2**16))
    def test_campaign_shim_bit_identical(self, seed):
        """Property: backend="kernel" == context spelling, trial for trial."""
        fpva = full_layout(3, 3)
        vectors = generate_suite(fpva).all_vectors()
        kwargs = dict(num_faults=2, trials=10, seed=seed)
        with pytest.warns(DeprecationWarning):
            shimmed = run_campaign(fpva, vectors, backend="kernel", **kwargs)
        modern = run_campaign(
            fpva, vectors, context=ExecutionContext(fpva), **kwargs
        )
        assert (shimmed.trials, shimmed.detected) == (
            modern.trials,
            modern.detected,
        )
        assert shimmed.undetected_examples == modern.undetected_examples


class TestBackendObjects:
    def test_describe_and_repr(self, fpva):
        kernel = ReachabilityKernel(fpva)
        backend = create("tile", kernel)
        assert "tile" in backend.describe()
        assert fpva.name in repr(backend)
        assert isinstance(backend, KernelBackend)

    def test_base_reach_words_is_abstract(self, fpva):
        kernel = ReachabilityKernel(fpva)
        with pytest.raises(NotImplementedError):
            KernelBackend(kernel).reach_words(
                np.zeros((kernel.n_valves, 1), dtype=np.uint64), None, 1
            )

    def test_tile_plan_compiles_once(self, fpva):
        kernel = ReachabilityKernel(fpva).set_backend("tile")
        kernel.batch_readings([(0, 0), (1, 0)])
        plan = kernel.backend.plan
        kernel.batch_readings([(3, 0)] * 70, tile_words=1)
        assert kernel.backend.plan is plan
