"""Persistent artifact store: digests, round trips, streaming, warm starts."""

from __future__ import annotations

import random

import pytest

from repro.core import generate_suite
from repro.engine import AdaptiveDiagnoser, get_scenario
from repro.engine.parallel import run_campaign as run_campaign_sharded
from repro.fpva import FPVABuilder, Side, full_layout
from repro.fpva.geometry import Cell
from repro.sim import (
    ChipUnderTest,
    FaultDictionary,
    ReachabilityKernel,
    StuckAt0,
    fault_universe,
)
from repro.sim.diagnosis import iter_fault_sets
from repro.store import (
    ArtifactStore,
    KernelStore,
    dictionary_digest,
    kernel_digest,
)


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(4, 4, name="store-4x4")
    return fpva, generate_suite(fpva).all_vectors()


def _table_key(dictionary):
    return list(dictionary._table.items())


class TestDigests:
    def test_layout_digest_ignores_display_name(self):
        a = full_layout(3, 3, name="first")
        b = full_layout(3, 3, name="second")
        assert kernel_digest(a) == kernel_digest(b)

    def test_layout_digest_sees_structure(self):
        base = full_layout(3, 3)
        bigger = full_layout(3, 4)
        with_channel = (
            FPVABuilder(3, 3)
            .channel(Cell(2, 1), "east", 1)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 3)
            .build()
        )
        digests = {kernel_digest(f) for f in (base, bigger, with_channel)}
        assert len(digests) == 3

    def test_dictionary_digest_covers_every_input(self, bundle):
        fpva, vectors = bundle
        universe = fault_universe(fpva)
        base = dictionary_digest(fpva, vectors, universe, 1)
        assert base == dictionary_digest(fpva, vectors, universe, 1)
        assert base != dictionary_digest(fpva, vectors, universe, 2)
        assert base != dictionary_digest(fpva, vectors[:-1], universe, 1)
        assert base != dictionary_digest(fpva, vectors, universe[:-1], 1)
        # Stored fault sets are universe indices, so order is identity.
        assert base != dictionary_digest(fpva, vectors, universe[::-1], 1)


class TestKernelStore:
    def test_round_trip_is_bit_identical(self, bundle, tmp_path):
        fpva, _ = bundle
        kernel = ReachabilityKernel(fpva)
        store = KernelStore(tmp_path)
        assert store.load(fpva) is None
        store.save(kernel)
        clone = store.load(fpva)
        assert (clone._arc_src == kernel._arc_src).all()
        assert (clone._arc_valve == kernel._arc_valve).all()
        assert (clone._arc_edge == kernel._arc_edge).all()
        assert clone._dst_starts.tolist() == kernel._dst_starts.tolist()
        assert clone._out == kernel._out
        rng = random.Random(5)
        valves = list(fpva.valves)
        for _ in range(25):
            mask = kernel.valve_mask(
                rng.sample(valves, rng.randrange(len(valves) + 1))
            )
            assert clone.readings(mask) == kernel.readings(mask)

    def test_get_or_compile_hits_after_first_use(self, bundle, tmp_path):
        fpva, _ = bundle
        store = KernelStore(tmp_path)
        first = store.get_or_compile(fpva)
        assert store.has(fpva)
        compiles = []
        original = ReachabilityKernel.__init__

        def counting(self, array):
            compiles.append(array)
            original(self, array)

        ReachabilityKernel.__init__ = counting
        try:
            second = store.get_or_compile(fpva)
        finally:
            ReachabilityKernel.__init__ = original
        assert not compiles  # warm load, no compilation
        assert second._out == first._out


class TestDictionaryWarmStart:
    def test_cold_then_warm_identical_tables_and_reports(self, bundle, tmp_path):
        """Satellite: save → load → diagnose is bit-identical."""
        fpva, vectors = bundle
        store = ArtifactStore(tmp_path)
        kwargs = dict(max_cardinality=2, include_control_leaks=False)
        cold = FaultDictionary(fpva, vectors, store=store, **kwargs)
        warm = FaultDictionary(fpva, vectors, store=store, **kwargs)
        plain = FaultDictionary(fpva, vectors, **kwargs)
        assert not cold.warm_loaded and warm.warm_loaded
        assert _table_key(cold) == _table_key(warm) == _table_key(plain)
        rng = random.Random(11)
        universe = fault_universe(fpva, include_control_leaks=False)
        for _ in range(5):
            chip = ChipUnderTest(fpva, (rng.choice(universe),))
            assert warm.diagnose_chip(chip) == cold.diagnose_chip(chip)
        assert warm.diagnose_chip(ChipUnderTest(fpva)) == cold.diagnose_chip(
            ChipUnderTest(fpva)
        )

    def test_streamed_chunks_match_single_pass(self, bundle):
        fpva, vectors = bundle
        whole = FaultDictionary(fpva, vectors, max_cardinality=2)
        streamed = FaultDictionary(fpva, vectors, max_cardinality=2, chunk_size=7)
        assert _table_key(whole) == _table_key(streamed)

    def test_store_accepts_plain_path(self, bundle, tmp_path):
        fpva, vectors = bundle
        FaultDictionary(fpva, vectors, store=tmp_path)
        warm = FaultDictionary(fpva, vectors, store=str(tmp_path))
        assert warm.warm_loaded

    def test_incomplete_artifact_never_addressable(self, bundle, tmp_path):
        """A crashed build (no commit) must not be treated as a hit."""
        fpva, vectors = bundle
        store = ArtifactStore(tmp_path)
        digest = dictionary_digest(fpva, vectors, fault_universe(fpva), 1)
        writer = store.dictionaries.writer(digest, 1, meta={"universe_size": 1})
        writer.add([0], (("v", (("m", False),)),))
        assert not store.dictionaries.has(digest)  # meta.json not written
        writer.abort()
        rebuilt = FaultDictionary(fpva, vectors, store=store)
        assert not rebuilt.warm_loaded
        assert store.dictionaries.has(rebuilt.digest)

    def test_adaptive_on_warm_dictionary_matches_full_suite(self, bundle, tmp_path):
        fpva, vectors = bundle
        store = ArtifactStore(tmp_path)
        scenario = get_scenario("mixed")
        universe = scenario.universe(fpva)
        cold = FaultDictionary(fpva, vectors, universe=universe, store=store)
        warm = FaultDictionary(fpva, vectors, universe=universe, store=store)
        assert warm.warm_loaded
        engine = AdaptiveDiagnoser(warm)
        rng = random.Random(23)
        for _ in range(4):
            chip = ChipUnderTest(fpva, scenario.sample(universe, rng, 1))
            session = engine.diagnose(chip)
            full = cold.diagnose_chip(chip)
            assert session.report.syndrome == full.syndrome
            assert session.report.candidates == full.candidates


class TestBackendEquivalence:
    def test_tables_identical_on_randomized_array(self):
        """Satellite: kernel vs legacy dictionaries on a randomized array,
        plus a store round trip of the kernel build."""
        rng = random.Random(1234)
        for trial in range(3):
            nr, nc = rng.choice(((3, 3), (3, 4), (4, 3)))
            fpva = full_layout(nr, nc, name=f"rand-{trial}-{nr}x{nc}")
            vectors = generate_suite(fpva).all_vectors()
            universe = fault_universe(fpva)
            sub = rng.sample(universe, min(18, len(universe)))
            kwargs = dict(universe=sub, max_cardinality=2)
            fast = FaultDictionary(fpva, vectors, backend="kernel", **kwargs)
            ref = FaultDictionary(fpva, vectors, backend="legacy", **kwargs)
            assert _table_key(fast) == _table_key(ref)

    def test_legacy_build_round_trips_through_store(self, bundle, tmp_path):
        fpva, vectors = bundle
        universe = fault_universe(fpva)[:20]
        store = ArtifactStore(tmp_path)
        cold = FaultDictionary(
            fpva, vectors, universe=universe, backend="legacy", store=store
        )
        warm = FaultDictionary(
            fpva, vectors, universe=universe, backend="legacy", store=store
        )
        assert warm.warm_loaded
        assert _table_key(cold) == _table_key(warm)


class TestNarrowedFallback:
    def _partial_suite(self, fpva, vectors):
        from repro.core.vectors import TestVector, VectorKind

        sink = fpva.sinks[0].name
        partial = TestVector(
            name="partial",
            kind=VectorKind.BASELINE,
            open_valves=frozenset(fpva.valves[:2]),
            expected={f"not-{sink}": False},
        )
        return list(vectors) + [partial]

    def test_sink_coverage_fallback_warns_and_matches_legacy(self, bundle):
        fpva, vectors = bundle
        suite = self._partial_suite(fpva, vectors)
        universe = fault_universe(fpva)[:12]
        with pytest.warns(UserWarning, match="falling\\s+back to the"):
            fast = FaultDictionary(fpva, suite, universe=universe)
        ref = FaultDictionary(fpva, suite, universe=universe, backend="legacy")
        assert _table_key(fast) == _table_key(ref)

    def test_full_coverage_build_does_not_warn(self, bundle, recwarn):
        fpva, vectors = bundle
        FaultDictionary(fpva, vectors, universe=fault_universe(fpva)[:12])
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_unrelated_valueerror_is_not_swallowed(self, bundle, monkeypatch):
        """Only the sink-coverage precondition may trigger the fallback."""
        fpva, vectors = bundle

        def explode(*args, **kwargs):
            raise ValueError("unrelated construction defect")

        monkeypatch.setattr("repro.sim.diagnosis.BatchEvaluator", explode)
        with pytest.raises(ValueError, match="unrelated"):
            FaultDictionary(fpva, vectors, universe=fault_universe(fpva)[:4])


class TestDeferredKernelCompile:
    def test_legacy_backend_compiles_no_kernel(self, bundle, monkeypatch):
        """Satellite: backend="legacy" must not pay a kernel compile."""
        fpva, vectors = bundle
        compiles = []
        original = ReachabilityKernel.__init__

        def counting(self, array):
            compiles.append(array)
            original(self, array)

        monkeypatch.setattr(ReachabilityKernel, "__init__", counting)
        dictionary = FaultDictionary(
            fpva, vectors, universe=fault_universe(fpva)[:8], backend="legacy"
        )
        assert not compiles
        # The kernel-engine tester still works — built on first use only.
        report = dictionary.diagnose_chip(ChipUnderTest(fpva))
        assert report.syndrome == ()
        assert len(compiles) == 1

    def test_prebuilt_kernel_is_reused(self, bundle):
        fpva, vectors = bundle
        kernel = ReachabilityKernel(fpva)
        dictionary = FaultDictionary(
            fpva, vectors, universe=fault_universe(fpva)[:8], kernel=kernel
        )
        assert dictionary.tester.simulator.kernel is kernel

    def test_iter_fault_sets_matches_eager_enumeration(self, bundle):
        import itertools

        from repro.sim.faults import faults_compatible

        fpva, _ = bundle
        universe = fault_universe(fpva)[:15]
        eager = [(f,) for f in universe] + [
            pair
            for pair in itertools.combinations(universe, 2)
            if faults_compatible(pair)
        ]
        assert list(iter_fault_sets(universe, 2)) == eager


class TestParallelCachePath:
    def test_cache_dir_results_bit_identical(self, bundle, tmp_path):
        fpva, vectors = bundle
        kwargs = dict(num_faults=2, trials=60, seed=9, shard_trials=15)
        plain = run_campaign_sharded(fpva, vectors, workers=1, **kwargs)
        cached = run_campaign_sharded(
            fpva, vectors, workers=1, cache_dir=tmp_path, **kwargs
        )
        pooled = run_campaign_sharded(
            fpva, vectors, workers=2, cache_dir=tmp_path, **kwargs
        )
        for other in (cached, pooled):
            assert (plain.trials, plain.detected) == (other.trials, other.detected)
            assert plain.undetected_examples == other.undetected_examples
        # The kernel artifact was actually published to the store.
        assert KernelStore(tmp_path / "kernels").has(fpva)


class TestDiagnosisAfterRoundTrip:
    def test_report_object_equality_end_to_end(self, tmp_path):
        """The DiagnosisReport dataclass compares syndrome and candidate
        lists; warm and cold must agree on both for every injected chip."""
        fpva = full_layout(3, 3, name="roundtrip-3x3")
        vectors = generate_suite(fpva).all_vectors()
        store = ArtifactStore(tmp_path)
        cold = FaultDictionary(fpva, vectors, max_cardinality=2, store=store)
        warm = FaultDictionary(fpva, vectors, max_cardinality=2, store=store)
        assert warm.warm_loaded
        for valve in fpva.valves:
            chip = ChipUnderTest(fpva, (StuckAt0(valve),))
            assert warm.diagnose_chip(chip) == cold.diagnose_chip(chip)
