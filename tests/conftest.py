"""Shared fixtures: small arrays that keep ILP solves fast."""

from __future__ import annotations

import pytest

from repro.fpva import FPVABuilder, Side, full_layout, table1_layout
from repro.fpva.geometry import Cell


@pytest.fixture(scope="session")
def tiny():
    """A full 3x3 array with corner ports."""
    return full_layout(3, 3, name="tiny-3x3")


@pytest.fixture(scope="session")
def small():
    """A full 4x4 array."""
    return full_layout(4, 4, name="small-4x4")


@pytest.fixture(scope="session")
def table5():
    """The Table I 5x5 array (one channel edge)."""
    return table1_layout(5)


@pytest.fixture(scope="session")
def obstacle_array():
    """A 5x5 array with a central obstacle and one channel."""
    return (
        FPVABuilder(5, 5, name="obstacle-5x5")
        .obstacle(3, 3)
        .channel(Cell(5, 2), "east", 2)
        .source(Side.WEST, 1)
        .sink(Side.EAST, 5)
        .build()
    )


@pytest.fixture(scope="session")
def two_sink_array():
    """A 4x4 array with one source and two meters (Fig 4 style)."""
    return (
        FPVABuilder(4, 4, name="two-sink-4x4")
        .source(Side.WEST, 1)
        .sink(Side.EAST, 2, name="o1")
        .sink(Side.EAST, 4, name="o2")
        .build()
    )
