"""FPVA model validation and derived properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fpva import FPVA, FPVABuilder, LayoutError, Side, full_layout
from repro.fpva.components import EdgeKind
from repro.fpva.geometry import Cell, edge_between, full_grid_valve_count
from repro.fpva.ports import sink, source


def _ports(nr):
    return [source(Side.WEST, 1), sink(Side.EAST, nr)]


class TestConstruction:
    @given(st.integers(2, 10), st.integers(2, 10))
    def test_full_grid_valve_count(self, nr, nc):
        fpva = FPVA(nr, nc, ports=_ports(nr))
        assert fpva.valve_count == full_grid_valve_count(nr, nc)
        assert fpva.cell_count == nr * nc

    def test_obstacle_removes_incident_valves(self):
        base = FPVA(5, 5, ports=_ports(5))
        with_obstacle = FPVA(5, 5, obstacles=[Cell(3, 3)], ports=_ports(5))
        assert with_obstacle.valve_count == base.valve_count - 4
        assert not with_obstacle.is_cell(Cell(3, 3))

    def test_channel_converts_valve(self):
        edge = edge_between(Cell(2, 2), Cell(2, 3))
        fpva = FPVA(5, 5, channels=[edge], ports=_ports(5))
        assert fpva.valve_count == full_grid_valve_count(5, 5) - 1
        assert edge in fpva.flow_edges
        assert fpva.edge_kind(edge) is EdgeKind.CHANNEL

    def test_edges_at(self):
        fpva = FPVA(3, 3, ports=_ports(3))
        assert len(fpva.edges_at(Cell(2, 2))) == 4  # interior
        assert len(fpva.edges_at(Cell(1, 1))) == 2  # corner

    def test_describe_mentions_counts(self):
        fpva = FPVA(3, 3, ports=_ports(3), name="demo")
        text = fpva.describe()
        assert "demo" in text and "12 valves" in text


class TestValidation:
    def test_requires_ports(self):
        with pytest.raises(LayoutError):
            FPVA(3, 3)
        with pytest.raises(LayoutError):
            FPVA(3, 3, ports=[source(Side.WEST, 1)])  # no sink

    def test_obstacle_out_of_bounds(self):
        with pytest.raises(LayoutError):
            FPVA(3, 3, obstacles=[Cell(4, 1)], ports=_ports(3))

    def test_channel_touching_obstacle(self):
        with pytest.raises(LayoutError):
            FPVA(
                4,
                4,
                obstacles=[Cell(2, 2)],
                channels=[edge_between(Cell(2, 2), Cell(2, 3))],
                ports=_ports(4),
            )

    def test_port_into_obstacle(self):
        with pytest.raises(LayoutError):
            FPVA(3, 3, obstacles=[Cell(1, 1)], ports=[source(Side.WEST, 1), sink(Side.EAST, 3)])

    def test_duplicate_port_position(self):
        with pytest.raises(LayoutError):
            FPVA(3, 3, ports=[source(Side.WEST, 1), sink(Side.WEST, 1)])

    def test_duplicate_port_names(self):
        with pytest.raises(LayoutError):
            FPVA(
                3,
                3,
                ports=[source(Side.WEST, 1, "p"), sink(Side.EAST, 3, "p")],
            )

    def test_shorted_valve_rejected(self):
        # A U-shaped channel around cells (1,1),(1,2),(2,2),(2,1) shorts the
        # valve between (1,1) and (2,1).
        with pytest.raises(LayoutError, match="shorted"):
            (
                FPVABuilder(3, 3)
                .channel_edge(Cell(1, 1), Cell(1, 2))
                .channel_edge(Cell(1, 2), Cell(2, 2))
                .channel_edge(Cell(2, 2), Cell(2, 1))
                .source(Side.WEST, 3)
                .sink(Side.EAST, 3)
                .build()
            )


class TestChannelComponents:
    def test_straight_channel_one_component(self):
        fpva = (
            FPVABuilder(5, 5)
            .channel(Cell(3, 1), "east", 3)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 5)
            .build()
        )
        assert len(fpva.channel_components) == 1
        assert fpva.channel_components[0] == frozenset(
            Cell(3, c) for c in range(1, 5)
        )

    def test_disjoint_channels_two_components(self):
        fpva = (
            FPVABuilder(6, 6)
            .channel(Cell(2, 2), "east", 2)
            .channel(Cell(5, 2), "east", 2)
            .source(Side.WEST, 1)
            .sink(Side.EAST, 6)
            .build()
        )
        assert len(fpva.channel_components) == 2

    def test_no_channels_no_components(self):
        assert full_layout(4, 4).channel_components == ()
