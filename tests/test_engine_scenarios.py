"""Scenario registry, the new fault kinds, and end-to-end workloads."""

import random

import pytest

from repro.core import generate_suite
from repro.engine import (
    FaultScenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.engine.scenarios import _REGISTRY, StuckAtScenario
from repro.fpva import full_layout, table1_layout
from repro.sim import (
    ChannelBlocked,
    ChipUnderTest,
    FaultDictionary,
    IntermittentStuckAt,
    StuckAt0,
    StuckAt1,
    Tester,
    faults_compatible,
    run_campaign,
)


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(4, 4, name="scenario-4x4")
    return fpva, generate_suite(fpva).all_vectors()


@pytest.fixture(scope="module")
def channel_bundle():
    """Table I 5x5 — the layout with a permanent transport channel."""
    fpva = table1_layout(5)
    return fpva, generate_suite(fpva).all_vectors()


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert {"stuck-at", "intermittent", "blockage", "mixed"} <= set(
            scenario_names()
        )

    def test_all_satisfy_protocol(self):
        for scenario in iter_scenarios():
            assert isinstance(scenario, FaultScenario)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="stuck-at"):
            get_scenario("no-such-workload")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(StuckAtScenario())

    def test_replace_and_custom_registration(self):
        custom = StuckAtScenario(name="custom-test-only")
        try:
            register_scenario(custom)
            assert get_scenario("custom-test-only") is custom
            replacement = StuckAtScenario(
                name="custom-test-only", include_control_leaks=False
            )
            assert (
                register_scenario(replacement, replace=True) is replacement
            )
            assert get_scenario("custom-test-only") is replacement
        finally:
            _REGISTRY.pop("custom-test-only", None)


class TestIntermittentFault:
    def test_rate_validated(self, bundle):
        fpva, _ = bundle
        with pytest.raises(ValueError, match="rate"):
            IntermittentStuckAt(fpva.valves[0], rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            IntermittentStuckAt(fpva.valves[0], rate=1.5)

    def test_firing_is_deterministic_per_vector(self, bundle):
        fpva, vectors = bundle
        fault = IntermittentStuckAt(fpva.valves[0], rate=0.5)
        twin = IntermittentStuckAt(fpva.valves[0], rate=0.5)
        fired = [fault.fires_on(v.name) for v in vectors]
        assert fired == [twin.fires_on(v.name) for v in vectors]
        assert True in fired and False in fired  # actually intermittent

    def test_salt_changes_firing_pattern(self, bundle):
        fpva, vectors = bundle
        a = IntermittentStuckAt(fpva.valves[0], rate=0.5, salt=0)
        b = IntermittentStuckAt(fpva.valves[0], rate=0.5, salt=1)
        assert [a.fires_on(v.name) for v in vectors] != [
            b.fires_on(v.name) for v in vectors
        ]

    def test_chip_behaviour_order_independent(self, bundle):
        fpva, vectors = bundle
        tester = Tester(fpva)
        chip = ChipUnderTest(
            fpva, [IntermittentStuckAt(fpva.valves[3], stuck_open=True)]
        )
        forward = [tester.apply(chip, v).observed for v in vectors]
        backward = [tester.apply(chip, v).observed for v in reversed(vectors)]
        assert forward == list(reversed(backward))

    def test_requires_vector_identity(self, bundle):
        fpva, _ = bundle
        chip = ChipUnderTest(fpva, [IntermittentStuckAt(fpva.valves[0])])
        with pytest.raises(ValueError, match="vector identity"):
            chip.effective_open_valves(frozenset())


class TestBlockageFault:
    def test_blocked_valve_acts_stuck_closed(self, bundle):
        fpva, vectors = bundle
        valve = fpva.valves[0]
        blocked = ChipUnderTest(fpva, [ChannelBlocked(valve)])
        stuck = ChipUnderTest(fpva, [StuckAt0(valve)])
        tester = Tester(fpva)
        for vector in vectors:
            assert (
                tester.apply(blocked, vector).observed
                == tester.apply(stuck, vector).observed
            )

    def test_blocked_channel_is_detectable(self, channel_bundle):
        """A blocked *permanent channel* — outside the paper's fault space —
        still changes some reading under the generated suite."""
        fpva, vectors = channel_bundle
        channel = sorted(fpva.channels)[0]
        chip = ChipUnderTest(fpva, [ChannelBlocked(channel)])
        assert Tester(fpva).run(chip, vectors).fault_detected

    def test_blockage_on_unknown_edge_rejected(self, bundle):
        fpva, _ = bundle
        from repro.fpva.geometry import Cell, Edge

        with pytest.raises(ValueError, match="non-existent"):
            ChipUnderTest(
                fpva, [ChannelBlocked(Edge(Cell(90, 90), Cell(90, 91)))]
            )


class TestCompatibility:
    def test_seat_exclusive_rules(self, bundle):
        fpva, _ = bundle
        v = fpva.valves[0]
        assert not faults_compatible(
            [IntermittentStuckAt(v), StuckAt0(v)]
        )
        assert not faults_compatible([ChannelBlocked(v), StuckAt1(v)])
        assert not faults_compatible(
            [IntermittentStuckAt(v), ChannelBlocked(v)]
        )
        w = fpva.valves[1]
        assert faults_compatible([IntermittentStuckAt(v), StuckAt0(w)])
        assert faults_compatible([ChannelBlocked(v), ChannelBlocked(w)])


class TestScenariosEndToEnd:
    """Acceptance: every scenario runs campaign + diagnosis end to end."""

    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_campaign_end_to_end(self, bundle, scenario_name):
        fpva, vectors = bundle
        result = run_campaign(
            fpva,
            vectors,
            num_faults=2,
            trials=30,
            seed=9,
            scenario=get_scenario(scenario_name),
        )
        assert result.trials == 30
        assert 0 <= result.detected <= 30
        # Injected sets the suite missed are reported for triage.
        assert len(result.undetected_examples) <= 10

    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_diagnosis_end_to_end(self, bundle, scenario_name):
        fpva, vectors = bundle
        scenario = get_scenario(scenario_name)
        universe = scenario.universe(fpva)
        dictionary = FaultDictionary(fpva, vectors, universe=universe)
        rng = random.Random(2)
        faults = scenario.sample(universe, rng, 1)
        report = dictionary.diagnose_chip(ChipUnderTest(fpva, faults))
        if report.localized:
            assert faults in report.candidates

    def test_paper_scenario_detects_everything(self, bundle):
        """The stuck-at scenario reproduces the paper's all-detected result."""
        fpva, vectors = bundle
        result = run_campaign(
            fpva,
            vectors,
            num_faults=3,
            trials=40,
            seed=1,
            scenario=get_scenario("stuck-at"),
        )
        assert result.all_detected, result.undetected_examples
