"""Incremental dictionaries: delta reuse, lineage gc, verified-payload cache.

The contract under test: every incrementally-built dictionary is
bit-identical — table iteration order, interned ``syndromes.json`` bytes,
decoded chunk rows, metadata minus the lineage block — to a cold build of
the same (layout, suite, universe, cardinality) key, while re-simulating
*only* the new vectors' columns and the promoted cardinality tiers.  The
zero-re-simulation half is asserted with a probe over every
:class:`BatchEvaluator` the build constructs and flushes, not just the
build's own ``build_stats`` accounting.
"""

from __future__ import annotations

import io
import json
from collections import defaultdict
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.context import ExecutionContext
from repro.core import generate_suite
from repro.fpva import full_layout
from repro.sim import FaultDictionary, fault_universe
from repro.sim.kernel import BatchEvaluator
from repro.store import (
    ArtifactCorruptionError,
    ArtifactStore,
    dictionary_digest,
)
from repro.store.integrity import _reset_verified_cache


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(4, 4, name="inc-4x4")
    vectors = generate_suite(fpva).all_vectors()
    # A small, deterministic universe slice keeps cardinality-2/3 tiers
    # affordable while still exercising stuck-ats, blockages and leaks.
    universe = fault_universe(fpva, include_control_leaks=True)[:16]
    return fpva, vectors, universe


def _table_key(dictionary):
    return list(dictionary._table.items())


def _canonical_artifact(store, digest):
    """Everything a cold and delta build must agree on, decoded."""
    base = Path(store.root) / "dictionaries" / digest
    meta = json.loads((base / "meta.json").read_text())
    meta.pop("lineage")
    chunks = []
    for name in sorted(p.name for p in base.iterdir()):
        if name.startswith("chunk-"):
            with np.load(io.BytesIO((base / name).read_bytes())) as data:
                chunks.append(
                    (name, data["sets"].tolist(), data["syndromes"].tolist())
                )
    return meta, (base / "syndromes.json").read_bytes(), chunks


class EvalProbe:
    """Records every BatchEvaluator construction and non-empty flush."""

    def __init__(self):
        self.constructed: list[int] = []  # suite width per evaluator
        self.flushed: list[tuple[int, int]] = []  # (width, scenarios)

    def reset(self):
        self.constructed.clear()
        self.flushed.clear()

    def scenarios_over_width(self, width: int) -> int:
        """Scenarios simulated through evaluators of >= ``width`` vectors."""
        return sum(n for w, n in self.flushed if w >= width)


@pytest.fixture
def eval_probe(monkeypatch):
    probe = EvalProbe()
    orig_init = BatchEvaluator.__init__
    orig_flush = BatchEvaluator.flush

    def init(self, kernel, vectors):
        orig_init(self, kernel, vectors)
        probe.constructed.append(len(self.vectors))

    def flush(self):
        pending = len(self._pending)
        if pending:
            probe.flushed.append((len(self.vectors), pending))
        orig_flush(self)

    monkeypatch.setattr(BatchEvaluator, "__init__", init)
    monkeypatch.setattr(BatchEvaluator, "flush", flush)
    return probe


def _assert_identical(delta, cold, store_a, store_b):
    assert _table_key(delta) == _table_key(cold)
    assert delta.digest == cold.digest
    assert _canonical_artifact(store_a, delta.digest) == _canonical_artifact(
        store_b, cold.digest
    )


class TestDeltaBitIdentity:
    def test_append_one_vector_simulates_only_new_column(
        self, bundle, tmp_path, eval_probe
    ):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path / "a")
        FaultDictionary(
            fpva, vectors[:-1], universe=universe, max_cardinality=2,
            store=store,
        )
        eval_probe.reset()
        delta = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        assert delta.build_stats["mode"] == "delta"
        assert delta.build_stats["new_vectors"] == 1
        assert delta.build_stats["promoted_sets"] == 0
        # Zero re-simulation of existing columns: every scenario the delta
        # build simulated went through the one-vector sub-evaluator.
        assert eval_probe.scenarios_over_width(2) == 0
        simulated = sum(n for _, n in eval_probe.flushed)
        assert simulated == delta.build_stats["simulated_scenarios"]
        cold_store = ArtifactStore(tmp_path / "b")
        cold = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2,
            store=cold_store, incremental=False,
        )
        assert cold.build_stats["mode"] == "cold"
        assert simulated < cold.build_stats["simulated_scenarios"]
        _assert_identical(delta, cold, store, cold_store)

    def test_pure_promotion_simulates_only_new_tier(
        self, bundle, tmp_path, eval_probe
    ):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path / "a")
        anc = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        eval_probe.reset()
        delta = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        assert delta.build_stats["mode"] == "delta"
        assert delta.build_stats["new_vectors"] == 0
        assert delta.build_stats["reused_sets"] == anc.total_fault_sets
        assert delta.build_stats["promoted_sets"] == (
            delta.total_fault_sets - anc.total_fault_sets
        )
        # No single-column sub-evaluator exists on this path; the only
        # simulated scenarios belong to the promoted cardinality tier.
        assert all(w == len(vectors) for w, _ in eval_probe.flushed)
        cold_store = ArtifactStore(tmp_path / "b")
        cold = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2,
            store=cold_store, incremental=False,
        )
        _assert_identical(delta, cold, store, cold_store)
        # Distinct-scenario counts can tie when every singles-tier scenario
        # recurs among the pairs, but the delta can never simulate more.
        assert (
            delta.build_stats["simulated_scenarios"]
            <= cold.build_stats["simulated_scenarios"]
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        holdout=st.integers(1, 3),
        permute=st.booleans(),
        cardinality=st.integers(1, 2),
        seed=st.integers(0, 2**16),
    )
    def test_evolved_suites_stay_bit_identical(
        self, bundle, tmp_path_factory, holdout, permute, cardinality, seed
    ):
        """Random suite evolution: hold some vectors out of the ancestor,
        optionally permute the survivors, then rebuild the full suite
        incrementally — always bit-identical to a cold build."""
        fpva, vectors, universe = bundle
        root = tmp_path_factory.mktemp("evolve")
        store = ArtifactStore(root / "a")
        rng = np.random.default_rng(seed)
        base = list(vectors[: len(vectors) - holdout])
        if permute:
            base = [base[i] for i in rng.permutation(len(base))]
        target = list(vectors)
        FaultDictionary(
            fpva, base, universe=universe, max_cardinality=cardinality,
            store=store,
        )
        delta = FaultDictionary(
            fpva, target, universe=universe, max_cardinality=cardinality,
            store=store,
        )
        assert delta.build_stats["mode"] == "delta"
        assert delta.build_stats["new_vectors"] == holdout
        cold_store = ArtifactStore(root / "b")
        cold = FaultDictionary(
            fpva, target, universe=universe, max_cardinality=cardinality,
            store=cold_store, incremental=False,
        )
        _assert_identical(delta, cold, store, cold_store)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        from_cardinality=st.integers(1, 2),
        also_append=st.booleans(),
    )
    def test_cardinality_promotion_to_three(
        self, bundle, tmp_path_factory, from_cardinality, also_append
    ):
        """Promoting 1→3 and 2→3 (optionally with a suite append in the
        same step) matches the cold cardinality-3 build bit for bit."""
        fpva, vectors, universe = bundle
        small = universe[:10]  # C(10,3) keeps the triple tier affordable
        root = tmp_path_factory.mktemp("promote")
        store = ArtifactStore(root / "a")
        base = vectors[:-1] if also_append else list(vectors)
        FaultDictionary(
            fpva, base, universe=small, max_cardinality=from_cardinality,
            store=store,
        )
        delta = FaultDictionary(
            fpva, vectors, universe=small, max_cardinality=3, store=store
        )
        assert delta.build_stats["mode"] == "delta"
        assert delta.build_stats["parent_cardinality"] == from_cardinality
        cold_store = ArtifactStore(root / "b")
        cold = FaultDictionary(
            fpva, vectors, universe=small, max_cardinality=3,
            store=cold_store, incremental=False,
        )
        _assert_identical(delta, cold, store, cold_store)

    def test_incomplete_ancestor_merge_walk(self, bundle, tmp_path):
        """A sparse suite leaves fault sets undetected, so the ancestor's
        rows are a strict subsequence of the enumeration and the delta
        must merge-walk — and may *add* rows the new vector detects."""
        from repro.sim.diagnosis import _count_fault_sets

        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path / "a")
        anc = FaultDictionary(
            fpva, vectors[:2], universe=universe, max_cardinality=2,
            store=store,
        )
        assert anc.total_fault_sets < _count_fault_sets(universe, 2)
        delta = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        assert delta.build_stats["mode"] == "delta"
        assert delta.build_stats["reused_sets"] == anc.total_fault_sets
        assert delta.total_fault_sets > anc.total_fault_sets
        cold_store = ArtifactStore(tmp_path / "b")
        cold = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2,
            store=cold_store, incremental=False,
        )
        _assert_identical(delta, cold, store, cold_store)

    def test_cardinality_three_matches_legacy_engine(self, tmp_path):
        fpva = full_layout(3, 3, name="inc-3x3")
        vectors = generate_suite(fpva).all_vectors()
        universe = fault_universe(fpva, include_control_leaks=True)[:8]
        kernel = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=3
        )
        with pytest.deprecated_call():
            legacy = FaultDictionary(
                fpva, vectors, universe=universe, max_cardinality=3,
                backend="legacy",
            )
        assert _table_key(kernel) == _table_key(legacy)

    def test_cardinality_validation(self, bundle):
        fpva, vectors, universe = bundle
        with pytest.raises(ValueError, match="cardinality 1, 2 or 3"):
            FaultDictionary(fpva, vectors, max_cardinality=4)


class TestDeltaFallbacks:
    def test_base_digest_pins_the_ancestor(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        a1 = FaultDictionary(
            fpva, vectors[:-2], universe=universe, max_cardinality=1,
            store=store,
        )
        FaultDictionary(
            fpva, vectors[:-1], universe=universe, max_cardinality=1,
            store=store,
        )
        # Auto-resolution would pick the wider suite; the pin wins.
        pinned = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1,
            store=store, base_digest=a1.digest,
        )
        assert pinned.build_stats["mode"] == "delta"
        assert pinned.build_stats["parent"] == a1.digest
        assert pinned.build_stats["new_vectors"] == 2

    def test_incompatible_base_digest_falls_back_cold(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        FaultDictionary(
            fpva, vectors[:-1], universe=universe, max_cardinality=1,
            store=store,
        )
        cold = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1,
            store=store, base_digest="no-such-digest",
        )
        assert cold.build_stats["mode"] == "cold"

    def test_base_digest_requires_store(self, bundle):
        fpva, vectors, _ = bundle
        with pytest.raises(ValueError, match="artifact store"):
            FaultDictionary(fpva, vectors, base_digest="abc")
        with pytest.raises(ValueError, match="incremental"):
            FaultDictionary(
                fpva, vectors, base_digest="abc", incremental=False
            )

    def test_incremental_false_is_cold(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        FaultDictionary(
            fpva, vectors[:-1], universe=universe, max_cardinality=1,
            store=store,
        )
        forced = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1,
            store=store, incremental=False,
        )
        assert forced.build_stats["mode"] == "cold"

    def test_different_universe_never_reuses(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        FaultDictionary(
            fpva, vectors, universe=universe[:12], max_cardinality=1,
            store=store,
        )
        other = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        assert other.build_stats["mode"] == "cold"

    def test_corrupt_ancestor_heals_then_cold_builds(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        anc = FaultDictionary(
            fpva, vectors[:-1], universe=universe, max_cardinality=1,
            store=store,
        )
        chunk = store.dictionaries.path_for(anc.digest) / "chunk-00000.npz"
        chunk.write_bytes(b"garbage")
        _reset_verified_cache()
        rebuilt = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        assert rebuilt.build_stats["mode"] == "cold"
        assert not store.dictionaries.has(anc.digest)  # quarantined
        assert (Path(store.root) / "dictionaries" / "quarantine").is_dir()
        reference = FaultDictionary(fpva, vectors, universe=universe)
        assert _table_key(rebuilt) == _table_key(reference)


class TestLineageGc:
    def _chain(self, bundle, root):
        fpva, vectors, universe = bundle
        store = ArtifactStore(root)
        a = FaultDictionary(
            fpva, vectors[:-1], universe=universe, max_cardinality=1,
            store=store,
        )
        b = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        c = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        assert b.build_stats["mode"] == "delta"
        assert c.build_stats["mode"] == "delta"
        return store, a, b, c

    def test_dry_run_is_the_default_and_removes_nothing(
        self, bundle, tmp_path
    ):
        store, a, b, c = self._chain(bundle, tmp_path)
        report = store.dictionaries.gc()
        assert report["action"] == "dry-run"
        assert sorted(e["digest"] for e in report["superseded"]) == sorted(
            (a.digest, b.digest)
        )
        assert report["kept"] == [c.digest]
        assert report["removed"] == []
        assert report["reclaimable_bytes"] > 0
        for d in (a.digest, b.digest, c.digest):
            assert store.dictionaries.has(d)

    def test_apply_removes_superseded_and_keeps_tips(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store, a, b, c = self._chain(bundle, tmp_path)
        report = store.dictionaries.gc(apply=True)
        assert report["action"] == "removed"
        assert sorted(report["removed"]) == sorted((a.digest, b.digest))
        assert not store.dictionaries.has(a.digest)
        assert store.dictionaries.has(c.digest)
        # The tip still warm-loads bit-identically after collection.
        warm = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        assert warm.build_stats["mode"] == "warm"
        assert _table_key(warm) == _table_key(c)

    def test_quarantine_keeps_the_evidence(self, bundle, tmp_path):
        store, a, b, c = self._chain(bundle, tmp_path)
        report = store.dictionaries.gc(apply=True, quarantine_evidence=True)
        assert report["action"] == "quarantined"
        assert not store.dictionaries.has(a.digest)
        pen = Path(store.root) / "dictionaries" / "quarantine"
        assert (pen / a.digest / "meta.json").exists()
        assert (pen / f"{a.digest}.reason.json").exists()

    def test_pre_lineage_artifacts_are_never_touched(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        digest = dictionary_digest(fpva, vectors, universe, 1)
        writer = store.dictionaries.writer(
            digest, 1, meta={"universe_size": len(universe)}
        )
        writer.add([0], (("v", (("sink", True),)),))
        writer.commit()
        report = store.dictionaries.gc(apply=True)
        assert report["superseded"] == [] and report["kept"] == []
        assert store.dictionaries.has(digest)

    def test_cli_store_gc(self, bundle, tmp_path, capsys):
        store, a, b, c = self._chain(bundle, tmp_path)
        assert cli_main(["store", "gc", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out and a.digest in out
        assert store.dictionaries.has(a.digest)
        assert (
            cli_main(
                ["store", "gc", "--cache-dir", str(tmp_path), "--quarantine"]
            )
            == 2
        )
        assert (
            cli_main(["store", "gc", "--cache-dir", str(tmp_path), "--apply"])
            == 0
        )
        assert not store.dictionaries.has(a.digest)
        assert store.dictionaries.has(c.digest)


class TestVerifiedPayloadCache:
    def test_repeat_loads_hash_once(self, bundle, tmp_path, monkeypatch):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        built = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        from repro.store import integrity

        counts = {"n": 0}
        orig = integrity.data_checksum

        def counting(payload):
            counts["n"] += 1
            return orig(payload)

        monkeypatch.setattr(integrity, "data_checksum", counting)
        _reset_verified_cache()
        first = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        hashed_cold = counts["n"]
        assert first.build_stats["mode"] == "warm"
        assert hashed_cold > 0
        second = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        assert second.build_stats["mode"] == "warm"
        assert counts["n"] == hashed_cold  # every payload served from cache
        assert _table_key(second) == _table_key(built)

    def test_changed_bytes_reverify_and_raise(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        store = ArtifactStore(tmp_path)
        built = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        _reset_verified_cache()
        FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=1, store=store
        )
        # Republishing different bytes changes the fstat signature, so the
        # cache must re-verify — and fail — instead of serving stale trust.
        path = store.dictionaries.path_for(built.digest) / "syndromes.json"
        path.write_bytes(b'{"vectors": [], "sinks": [], "syndromes": []}')
        with pytest.raises(ArtifactCorruptionError):
            store.dictionaries.load(built.digest, universe)


class TestContextWiring:
    def test_dictionary_counters(self, bundle, tmp_path):
        fpva, vectors, universe = bundle
        ctx = ExecutionContext(fpva, cache_dir=tmp_path)
        ctx.dictionary(vectors[:-1], universe=universe)
        assert ctx.dictionary_cold_builds == 1
        delta = ctx.dictionary(vectors, universe=universe)
        assert ctx.dictionary_delta_builds == 1
        assert delta.build_stats["mode"] == "delta"
        ctx.dictionary(vectors, universe=universe)
        assert ctx.dictionary_warm_loads == 1
        assert (ctx.dictionary_cold_builds, ctx.dictionary_delta_builds) == (
            1, 1,
        )

    def test_duplicate_vector_names_fall_back_cold(self, bundle, tmp_path):
        import dataclasses

        fpva, vectors, universe = bundle
        twin = dataclasses.replace(vectors[0], name=vectors[1].name)
        suite = [twin] + list(vectors[1:])
        store = ArtifactStore(tmp_path)
        FaultDictionary(
            fpva, suite[:-1], universe=universe, max_cardinality=1,
            store=store,
        )
        result = FaultDictionary(
            fpva, suite, universe=universe, max_cardinality=1, store=store
        )
        assert result.build_stats["mode"] == "cold"

    def test_shard_context_memoized_per_artifact_path(self, bundle, tmp_path):
        from repro.engine.parallel import _CONTEXT_MEMO, _shard_context

        fpva, _, _ = bundle
        ctx = ExecutionContext(fpva, cache_dir=tmp_path)
        mode, kernel, backend = ctx.shipping_spec()
        assert isinstance(kernel, str)
        _CONTEXT_MEMO.clear()
        first = _shard_context(fpva, mode, kernel, backend)
        second = _shard_context(fpva, mode, kernel, backend)
        assert first is second
        _CONTEXT_MEMO.clear()
