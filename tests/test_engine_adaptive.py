"""Adaptive diagnosis: differential equivalence with the full-suite path."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import generate_suite
from repro.engine import AdaptiveDiagnoser, adaptive_diagnose, get_scenario, scenario_names
from repro.fpva import FPVABuilder, Side, full_layout
from repro.fpva.geometry import Cell
from repro.sim import ChipUnderTest, FaultDictionary, StuckAt0


@pytest.fixture(scope="module")
def small_bundle():
    fpva = full_layout(4, 4, name="adaptive-4x4")
    suite = generate_suite(fpva)
    return fpva, suite.all_vectors()


def _assert_matches_full_suite(fpva, vectors, scenario, seed, chips=4):
    """Adaptive and full-suite verdicts agree for in-space chips."""
    universe = scenario.universe(fpva)
    dictionary = FaultDictionary(fpva, vectors, universe=universe)
    engine = AdaptiveDiagnoser(dictionary)
    rng = random.Random(seed)
    for _ in range(chips):
        chip = ChipUnderTest(fpva, scenario.sample(universe, rng, 1))
        full = dictionary.diagnose_chip(chip)
        session = engine.diagnose(chip)
        assert session.report.candidates == full.candidates, chip.faults
        assert session.report.syndrome == full.syndrome, chip.faults
        assert session.num_applied <= len(vectors)
    clean = engine.diagnose(ChipUnderTest(fpva))
    full_clean = dictionary.diagnose_chip(ChipUnderTest(fpva))
    assert clean.report.syndrome == full_clean.syndrome == ()
    assert clean.report.candidates == full_clean.candidates == []


class TestEquivalenceFixedLayouts:
    @pytest.mark.parametrize("scenario_name", scenario_names())
    def test_every_scenario_matches_full_suite(self, small_bundle, scenario_name):
        fpva, vectors = small_bundle
        _assert_matches_full_suite(fpva, vectors, get_scenario(scenario_name), seed=11)

    def test_double_fault_dictionary(self, small_bundle):
        """Cardinality-2 hypothesis spaces localize double faults too."""
        fpva, vectors = small_bundle
        dictionary = FaultDictionary(
            fpva, vectors, include_control_leaks=False, max_cardinality=2
        )
        engine = AdaptiveDiagnoser(dictionary)
        rng = random.Random(5)
        scenario = get_scenario("stuck-at")
        universe = [f for f in scenario.universe(fpva) if hasattr(f, "valve")]
        for _ in range(3):
            faults = scenario.sample(universe, rng, 2)
            chip = ChipUnderTest(fpva, faults)
            full = dictionary.diagnose_chip(chip)
            session = engine.diagnose(chip)
            assert session.report.candidates == full.candidates
            assert session.report.syndrome == full.syndrome


@st.composite
def diagnosis_layouts(draw):
    """Small randomized layouts, kept cheap for per-example generation."""
    nr = draw(st.integers(3, 4))
    nc = draw(st.integers(3, 4))
    builder = FPVABuilder(nr, nc, name=f"adaptive-hypo-{nr}x{nc}")
    if draw(st.booleans()):
        builder.channel(Cell(nr - 1, 1), "east", 1)
    builder.source(Side.WEST, 1).sink(Side.EAST, nr)
    return builder.build()


@pytest.mark.slow
class TestEquivalenceProperty:
    """Satellite: differential property over randomized layouts."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(diagnosis_layouts(), st.integers(0, 2**16))
    def test_adaptive_equals_full_suite_all_scenarios(self, fpva, seed):
        vectors = generate_suite(fpva).all_vectors()
        for name in scenario_names():
            _assert_matches_full_suite(
                fpva, vectors, get_scenario(name), seed=seed, chips=2
            )


class TestDeterministicScheduling:
    def test_best_split_breaks_ties_to_lowest_vector_index(self, small_bundle):
        """Equal-entropy candidates resolve to the lowest vector index, so
        sessions replay identically across platforms and runs."""
        import math

        fpva, vectors = small_bundle
        engine = AdaptiveDiagnoser(FaultDictionary(fpva, vectors))
        alive = list(engine._hypotheses)
        unapplied = bytearray([1]) * len(vectors)
        chosen, best_entropy = engine._best_split(alive, unapplied)
        assert chosen is not None

        # Recompute every vector's entropy independently; the winner must
        # be the *first* index attaining the maximum.
        total = float(sum(h.weight for h in alive))
        entropies = {}
        for vi in range(len(vectors)):
            buckets: dict[int, int] = {}
            for h in alive:
                buckets[h.sig_ids[vi]] = buckets.get(h.sig_ids[vi], 0) + h.weight
            if len(buckets) < 2:
                continue
            entropies[vi] = -sum(
                (m / total) * math.log2(m / total) for m in buckets.values()
            )
        top = max(entropies.values())
        assert best_entropy == top
        assert chosen == min(vi for vi, e in entropies.items() if e == top)

    def test_sessions_replay_identically(self, small_bundle):
        fpva, vectors = small_bundle
        dictionary = FaultDictionary(fpva, vectors)
        chip = ChipUnderTest(fpva, [StuckAt0(fpva.valves[3])])
        runs = [AdaptiveDiagnoser(dictionary).diagnose(chip) for _ in range(2)]
        assert [s.vector_name for s in runs[0].steps] == [
            s.vector_name for s in runs[1].steps
        ]
        assert runs[0].report == runs[1].report


class TestSessionMechanics:
    def test_early_stop_saves_vectors(self, small_bundle):
        fpva, vectors = small_bundle
        dictionary = FaultDictionary(fpva, vectors)
        session = adaptive_diagnose(
            dictionary, ChipUnderTest(fpva, [StuckAt0(fpva.valves[0])])
        )
        assert 0 < session.num_applied < len(vectors)
        assert session.saved_fraction > 0.0
        assert not session.exhausted_budget
        # The trace records one positive-entropy step per application.
        assert len(session.steps) == session.num_applied
        assert all(step.entropy_bits > 0 for step in session.steps)

    def test_budget_cap_reported(self, small_bundle):
        fpva, vectors = small_bundle
        dictionary = FaultDictionary(fpva, vectors)
        engine = AdaptiveDiagnoser(dictionary)
        chip = ChipUnderTest(fpva, [StuckAt0(fpva.valves[2])])
        capped = engine.diagnose(chip, max_vectors=1)
        assert capped.num_applied == 1
        assert capped.exhausted_budget
        # A capped session may stay ambiguous, but never loses the truth:
        full = dictionary.diagnose_chip(chip)
        assert set(full.candidates) <= set(capped.report.candidates)

    def test_out_of_space_chip_verdict_consistent(self, small_bundle):
        """A chip the dictionary cannot model gets a best-effort verdict:
        every returned candidate explains every applied outcome."""
        fpva, vectors = small_bundle
        dictionary = FaultDictionary(fpva, vectors, include_control_leaks=False)
        faults = [StuckAt0(v) for v in fpva.valves]  # everything broken
        session = AdaptiveDiagnoser(dictionary).diagnose(
            ChipUnderTest(fpva, faults)
        )
        assert session.outcomes  # something observable happened
        for candidate in session.report.candidates:
            explainer = ChipUnderTest(fpva, list(candidate))
            for outcome in session.outcomes:
                replay = dictionary.tester.apply(explainer, outcome.vector)
                assert replay.observed == outcome.observed


@pytest.mark.slow
class TestAcceptance8x8:
    def test_thirty_percent_fewer_vectors_on_8x8(self):
        """Acceptance bar: ≥30% fewer applied vectors on average, 8x8."""
        fpva = full_layout(8, 8, name="accept-8x8")
        vectors = generate_suite(fpva).all_vectors()
        scenario = get_scenario("stuck-at")
        universe = scenario.universe(fpva)
        dictionary = FaultDictionary(fpva, vectors, universe=universe)
        engine = AdaptiveDiagnoser(dictionary)
        rng = random.Random(0)
        applied = []
        for _ in range(30):
            chip = ChipUnderTest(fpva, scenario.sample(universe, rng, 1))
            session = engine.diagnose(chip)
            full = dictionary.diagnose_chip(chip)
            assert session.report.candidates == full.candidates
            applied.append(session.num_applied)
        mean_applied = sum(applied) / len(applied)
        assert mean_applied <= 0.7 * len(vectors), (mean_applied, len(vectors))
