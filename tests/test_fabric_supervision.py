"""Corruption-injection and supervision suite for the self-healing fabric.

Three layers of sabotage:

* **Artifact corruption** — flip bits inside a published shard's
  ``result.npz``, tear its ``meta.json`` mid-write, corrupt a warm
  kernel or dictionary artifact — then assert the store *quarantines*
  the evidence and the caller *heals* by re-deriving, with the final
  merged sweep bit-identical to the uninterrupted serial reference.
* **Poison workloads** — a shard whose simulation always raises must be
  retried a bounded number of times, then parked in quarantine with a
  diagnostic record (never retried forever, never silently merged), and
  an operator ``requeue`` must heal the campaign back to bit-identical.
* **Property checks** — hypothesis drives arbitrary sequences of
  claim/fail/requeue transitions through the supervision ledger and
  checks the attempt-count/quarantine invariants the poison protocol
  rests on, plus the retry schedule's determinism and bounds.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import generate_suite
from repro.engine import run_sweep
from repro.fabric import (
    CampaignJournal,
    CampaignSpec,
    RetryPolicy,
    ShardWorker,
    run_journaled_sweep,
)
from repro.fabric.supervision import SupervisionLedger
from repro.fpva import full_layout
from repro.store import (
    ArtifactCorruptionError,
    KernelStore,
    data_checksum,
    digest_int,
    verify_file,
)
from repro.store.integrity import quarantined_artifacts


def _noop_sleep(_delay):
    pass


#: Zero-delay policy for tests that exercise retry *logic*, not waiting.
FAST_RETRY = RetryPolicy(max_attempts=3, base=0.0, max_delay=0.0)


@pytest.fixture(scope="module")
def bundle():
    fpva = full_layout(3, 3, name="supervision-3x3")
    return fpva, tuple(generate_suite(fpva).all_vectors())


@pytest.fixture(scope="module")
def spec(bundle):
    fpva, vectors = bundle
    return CampaignSpec(
        fpva=fpva,
        vectors=vectors,
        fault_counts=(1, 2),
        trials=30,
        seed=5,
        shard_trials=10,
    )


@pytest.fixture(scope="module")
def reference(bundle):
    fpva, vectors = bundle
    return run_sweep(
        fpva, vectors, fault_counts=(1, 2), trials=30, seed=5,
        shard_trials=10, workers=1,
    )


def _result_key(result):
    return (
        result.num_faults,
        result.trials,
        result.detected,
        result.undetected_examples,
        result.undetected_trials,
    )


def assert_sweeps_identical(got, want):
    assert sorted(got) == sorted(want)
    for k in want:
        assert _result_key(got[k]) == _result_key(want[k]), f"k={k}"


def _flip_bits(path, offset=None):
    """Corrupt one byte of ``path`` in place (default: the middle)."""
    data = bytearray(path.read_bytes())
    assert data, f"{path} is empty"
    index = len(data) // 2 if offset is None else offset
    data[index] ^= 0xFF
    path.write_bytes(bytes(data))


# -- integrity primitives ----------------------------------------------------


class TestVerifyFile:
    def test_roundtrip_and_mismatch(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"payload-bytes")
        checksum = data_checksum(b"payload-bytes")
        assert verify_file(path, checksum) == b"payload-bytes"
        _flip_bits(path)
        with pytest.raises(ArtifactCorruptionError, match="checksum mismatch"):
            verify_file(path, checksum)

    def test_legacy_artifacts_load_unverified(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"pre-checksum artifact")
        assert verify_file(path, None) == b"pre-checksum artifact"

    def test_missing_file_is_corruption(self, tmp_path):
        with pytest.raises(ArtifactCorruptionError, match="missing"):
            verify_file(tmp_path / "gone", data_checksum(b""))


# -- shard artifact corruption heals at merge --------------------------------


class TestShardCorruptionHeals:
    def _published_paths(self, journal_dir, spec):
        store = CampaignJournal(journal_dir).store
        return [store.path_for(d.digest) for d in spec.shards()]

    def test_bit_flip_quarantines_and_heals(self, tmp_path, spec, reference):
        journal_dir = tmp_path / "journal"
        results, stats = run_journaled_sweep(spec, journal_dir, workers=1)
        assert_sweeps_identical(results, reference)
        assert stats.healed == 0 and not stats.degraded

        victim = self._published_paths(journal_dir, spec)[2]
        _flip_bits(victim / "result.npz")

        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True
        )
        assert stats.healed == 1
        assert stats.executed == 1  # only the quarantined shard re-ran
        assert not stats.degraded
        assert_sweeps_identical(results, reference)
        # The corrupt evidence (and its diagnostic) survives for the
        # operator under the journal's quarantine/ directory.
        pens = quarantined_artifacts(journal_dir)
        assert len(pens) == 1
        assert "checksum mismatch" in pens[0]["reason"]

    def test_torn_meta_json_heals(self, tmp_path, spec, reference):
        journal_dir = tmp_path / "journal"
        run_journaled_sweep(spec, journal_dir, workers=1)
        victim = self._published_paths(journal_dir, spec)[0]
        (victim / "meta.json").write_text('{"version": 1, "dig')

        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True
        )
        assert stats.healed == 1
        assert_sweeps_identical(results, reference)

    def test_multiple_corruptions_heal_in_one_pass(
        self, tmp_path, spec, reference
    ):
        journal_dir = tmp_path / "journal"
        run_journaled_sweep(spec, journal_dir, workers=1)
        paths = self._published_paths(journal_dir, spec)
        _flip_bits(paths[1] / "result.npz")
        _flip_bits(paths[4] / "result.npz")
        (paths[5] / "meta.json").write_text("")

        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True
        )
        assert stats.healed == 3
        assert stats.executed == 3
        assert_sweeps_identical(results, reference)

    def test_strict_load_sweep_surfaces_corruption(self, tmp_path, spec):
        from repro.fabric import load_sweep

        journal_dir = tmp_path / "journal"
        run_journaled_sweep(spec, journal_dir, workers=1)
        victim = self._published_paths(journal_dir, spec)[3]
        _flip_bits(victim / "result.npz")
        journal = CampaignJournal(journal_dir)
        with pytest.raises(ArtifactCorruptionError):
            load_sweep(journal, spec)


# -- kernel and dictionary artifacts heal at their callers -------------------


class TestKernelCorruptionHeals:
    def test_get_or_compile_heals(self, tmp_path, bundle):
        fpva, _ = bundle
        store = KernelStore(tmp_path / "kernels")
        first = store.get_or_compile(fpva)
        _flip_bits(store.path_for(fpva))
        healed = store.get_or_compile(fpva)
        assert healed.to_arrays().keys() == first.to_arrays().keys()
        assert quarantined_artifacts(store.root)
        # The healed artifact republished and verifies cleanly now.
        assert store.load(fpva) is not None

    def test_context_warm_load_heals(self, tmp_path, bundle):
        from repro.context import ExecutionContext

        fpva, _ = bundle
        cache = tmp_path / "cache"
        ExecutionContext(fpva, cache_dir=cache).kernel  # cold compile + save
        _flip_bits(KernelStore(cache / "kernels").path_for(fpva))
        ctx = ExecutionContext(fpva, cache_dir=cache)
        ctx.kernel
        assert ctx.kernel_heals == 1
        assert ctx.kernel_compiles == 1  # healed by recompiling
        # The *next* session warm-loads the republished artifact.
        nxt = ExecutionContext(fpva, cache_dir=cache)
        nxt.kernel
        assert nxt.kernel_loads == 1 and nxt.kernel_heals == 0

    def test_path_shipped_kernel_heals_in_worker(self, tmp_path, bundle):
        from repro.engine.parallel import _KERNEL_MEMO, _resolve_kernel

        fpva, _ = bundle
        store = KernelStore(tmp_path / "kernels")
        store.get_or_compile(fpva)
        path = str(store.path_for(fpva))
        _flip_bits(store.path_for(fpva))
        _KERNEL_MEMO.pop(path, None)
        try:
            shipped_fpva, kernel = _resolve_kernel(fpva, path)
        finally:
            _KERNEL_MEMO.pop(path, None)
        assert shipped_fpva is kernel.fpva
        assert quarantined_artifacts(store.root)


class TestDictionaryCorruptionHeals:
    def _build(self, tmp_path, fpva, vectors):
        from repro.sim.diagnosis import FaultDictionary

        return FaultDictionary(
            fpva, vectors, max_cardinality=1, store=tmp_path / "cache"
        )

    @pytest.mark.parametrize("victim", ["chunk", "syndromes"])
    def test_corrupt_artifact_rebuilds(self, tmp_path, bundle, victim):
        from repro.store import DictionaryStore

        fpva, vectors = bundle
        cold = self._build(tmp_path, fpva, vectors)
        store = DictionaryStore(tmp_path / "cache" / "dictionaries")
        directory = store.path_for(cold.digest)
        if victim == "chunk":
            _flip_bits(next(iter(sorted(directory.glob("chunk-*.npz")))))
        else:
            _flip_bits(directory / "syndromes.json")

        rebuilt = self._build(tmp_path, fpva, vectors)
        assert not rebuilt.warm_loaded  # healed via cold rebuild
        assert dict(rebuilt._table) == dict(cold._table)
        assert quarantined_artifacts(store.root)
        warm = self._build(tmp_path, fpva, vectors)
        assert warm.warm_loaded  # the rebuild republished a clean artifact


# -- poison shards: bounded retries, quarantine, requeue ---------------------


def failing_worker(poison_digest: str) -> type[ShardWorker]:
    """A worker whose simulation of one shard always raises."""

    class FailingWorker(ShardWorker):
        def run_shard(self, descriptor):
            if descriptor.digest == poison_digest:
                raise RuntimeError("injected workload failure")
            return super().run_shard(descriptor)

    return FailingWorker


class TestPoisonShards:
    def test_bounded_retries_then_quarantine(self, tmp_path, spec, reference):
        journal_dir = tmp_path / "journal"
        poison = spec.shards()[2]
        results, stats = run_journaled_sweep(
            spec,
            journal_dir,
            workers=1,
            worker_cls=failing_worker(poison.digest),
            retry=FAST_RETRY,
            sleep=_noop_sleep,
        )
        assert stats.degraded
        assert [r["digest"] for r in stats.quarantined] == [poison.digest]
        record = stats.quarantined[0]
        assert record["attempts"] == FAST_RETRY.max_attempts
        assert len(record["failures"]) == FAST_RETRY.max_attempts
        assert "injected workload failure" in record["failures"][0]["error"]
        assert stats.retried == FAST_RETRY.max_attempts - 1
        # Every other shard ran exactly once and merged; the poison
        # shard's trials are withheld, never silently merged.
        assert stats.executed == stats.total - 1
        k = poison.num_faults
        assert results[k].trials == spec.trials - poison.trials
        other = 1 if k == 2 else 2
        assert _result_key(results[other]) == _result_key(reference[other])

        # A resume keeps the shard parked without burning more attempts.
        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True, retry=FAST_RETRY,
            sleep=_noop_sleep,
        )
        assert stats.degraded and stats.executed == 0

        # The operator's heal verb: requeue, re-drain, bit-identical.
        journal = CampaignJournal(journal_dir)
        assert journal.requeue(poison.digest)
        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True, sleep=_noop_sleep,
        )
        assert not stats.degraded
        assert stats.executed == 1
        assert_sweeps_identical(results, reference)

    def test_sigkilled_attempts_burn_budget(self, tmp_path, spec):
        """Attempt counts are burned at *claim* time, so a worker that
        dies mid-shard (no exception ever raised) still converges on the
        poison threshold instead of wedging the campaign forever."""
        journal = CampaignJournal(tmp_path / "journal")
        journal.ensure(spec)
        victim = spec.shards()[0]
        for expected in (1, 2, 3):
            claimed = journal.claim([victim])
            assert claimed == victim
            assert journal.note_attempt(claimed) == expected
            # simulate SIGKILL: no publish, no release — reclaim the lease
            # the way a resumed run would.
            journal._reclaim(victim.digest)
        fresh = CampaignJournal(tmp_path / "journal")
        assert FAST_RETRY.exhausted(fresh.attempts(victim.digest))


# -- retry policy ------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base=0.1, growth=2.0, max_delay=0.5, jitter=0.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4, 5)] == [
            0.1, 0.2, 0.4, 0.5, 0.5,
        ]
        assert policy.delay(0) == 0.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base=0.1, growth=2.0, max_delay=5.0, jitter=0.5)
        key = digest_int("deadbeefcafebabe")
        first = [policy.delay(a, key) for a in range(1, 6)]
        assert first == [policy.delay(a, key) for a in range(1, 6)]
        for attempt, delay in enumerate(first, start=1):
            raw = min(0.1 * 2.0 ** (attempt - 1), 5.0)
            assert raw * 0.5 <= delay <= raw
        assert first != [policy.delay(a, key + 1) for a in range(1, 6)]

    def test_wait_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(base=0.25, jitter=0.0)
        assert policy.wait(1, sleep=slept.append) == 0.25
        assert slept == [0.25]

    @settings(max_examples=200, deadline=None)
    @given(
        attempt=st.integers(min_value=1, max_value=30),
        key=st.integers(min_value=0, max_value=2**64 - 1),
        base=st.floats(min_value=0.001, max_value=1.0),
        growth=st.floats(min_value=1.0, max_value=4.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_delay_bounds_property(self, attempt, key, base, growth, jitter):
        policy = RetryPolicy(
            base=base, growth=growth, max_delay=10.0, jitter=jitter
        )
        delay = policy.delay(attempt, key)
        raw = min(base * growth ** (attempt - 1), 10.0)
        assert 0.0 <= delay <= raw + 1e-12
        assert delay >= raw * (1.0 - jitter) - 1e-12
        assert delay == policy.delay(attempt, key)


# -- supervision ledger properties -------------------------------------------


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestSupervisionLedger:
    def test_heartbeat_age(self, tmp_path):
        clock = FakeClock()
        ledger = SupervisionLedger(tmp_path, clock=clock)
        assert ledger.heartbeat_age("inst") is None
        ledger.beat("inst", owner="w0")
        assert ledger.heartbeat_age("inst") == 0.0
        clock.now += 42.0
        assert ledger.heartbeat_age("inst") == 42.0

    def test_stale_heartbeat_reclaims_hung_worker(self, tmp_path, spec):
        """A lease whose holder's pid is alive but whose heartbeat went
        stale is reclaimable — the hung-worker case the pid probe and the
        claim-time timeout both miss."""
        clock = FakeClock()
        journal = CampaignJournal(
            tmp_path / "journal", lease_timeout=30.0, clock=clock
        )
        journal.ensure(spec)
        victim = spec.shards()[0]
        assert journal.claim([victim]) == victim
        journal.beat()
        # Same-process lease, so the dead-pid path cannot trigger; only
        # heartbeat staleness can free it.
        other = CampaignJournal(
            tmp_path / "journal", lease_timeout=30.0, clock=clock
        )
        clock.now += 10.0
        assert not other._lease_stale(victim.digest)
        clock.now += 25.0  # heartbeat now 35s old, past the 30s timeout
        assert other._lease_stale(victim.digest)
        # ... while a re-beat (the worker came back) re-protects it.
        journal.beat()
        assert not other._lease_stale(victim.digest)

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["claim", "fail", "requeue"]),
            min_size=1,
            max_size=25,
        )
    )
    def test_attempt_quarantine_transitions(self, ops, tmp_path_factory, spec):
        """Drive the poison protocol's claim-time decision procedure
        through arbitrary op sequences and check its invariants."""
        root = tmp_path_factory.mktemp("ledger")
        ledger = SupervisionLedger(root, clock=FakeClock())
        policy = FAST_RETRY
        descriptor = spec.shards()[0]
        model_attempts = 0
        for op in ops:
            if op == "claim":
                prior = ledger.attempts(descriptor.digest)
                assert prior == model_attempts
                if ledger.is_quarantined(descriptor.digest):
                    pass  # claim loops skip quarantined shards
                elif policy.exhausted(prior):
                    ledger.quarantine_shard(
                        descriptor, reason="poison", attempts=prior
                    )
                else:
                    assert ledger.note_attempt(descriptor) == prior + 1
                    model_attempts = prior + 1
            elif op == "fail":
                if not ledger.is_quarantined(descriptor.digest):
                    ledger.record_failure(
                        descriptor, RuntimeError("boom")
                    )
            else:  # requeue
                ledger.requeue(descriptor.digest)
                model_attempts = 0
            # Invariants: the budget is never exceeded, and quarantine
            # implies an exhausted budget (until a requeue resets both).
            assert model_attempts <= policy.max_attempts
            if ledger.is_quarantined(descriptor.digest):
                assert policy.exhausted(model_attempts)

    def test_quarantined_shards_are_not_claimable(self, tmp_path, spec):
        journal = CampaignJournal(tmp_path / "journal")
        journal.ensure(spec)
        shards = spec.shards()
        journal.quarantine_shard(shards[0], reason="poison", attempts=3)
        claimed = journal.claim(shards)
        assert claimed == shards[1]
        journal.release(claimed)
        assert journal.state(shards[0]) == "quarantined"
        assert journal.requeue(shards[0].digest)
        journal.release(journal.claim(shards))
        assert journal.claim([shards[0]]) == shards[0]


# -- durability: publishes fsync payloads and directories --------------------


class TestDurability:
    def _count_fsyncs(self, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real(fd)))
        return calls

    def test_shard_publish_fsyncs(self, tmp_path, spec, monkeypatch):
        from repro.fabric import ShardStore
        from repro.sim import CampaignResult

        store = ShardStore(tmp_path / "shards")
        descriptor = spec.shards()[0]
        result = CampaignResult(
            num_faults=descriptor.num_faults,
            trials=descriptor.trials,
            detected=descriptor.trials,
            undetected_examples=[],
            undetected_trials=[],
        )
        calls = self._count_fsyncs(monkeypatch)
        store.publish(descriptor, result)
        # payload + meta + tmp dir + store root, at minimum
        assert len(calls) >= 4

    def test_kernel_save_fsyncs(self, tmp_path, bundle, monkeypatch):
        from repro.sim.kernel import ReachabilityKernel

        fpva, _ = bundle
        kernel = ReachabilityKernel(fpva)
        calls = self._count_fsyncs(monkeypatch)
        KernelStore(tmp_path / "kernels").save(kernel)
        assert len(calls) >= 3  # payload + sidecar + directory


# -- DrainStats reporting ----------------------------------------------------


class TestDrainStats:
    def test_report_and_summary_flags_degradation(self):
        from repro.fabric import DrainStats

        clean = DrainStats(
            total=6, executed=6, cache_hits=0, reclaimed=0,
            workers=1, scheduler="greedy",
        )
        assert not clean.degraded
        assert clean.report()["degraded"] is False
        assert "QUARANTINED" not in clean.summary()

        poisoned = DrainStats(
            total=6, executed=5, cache_hits=0, reclaimed=0,
            workers=1, scheduler="greedy", retried=2, healed=1,
            quarantined=({"digest": "abc", "reason": "poison"},),
        )
        assert poisoned.degraded
        report = poisoned.report()
        assert report["quarantined"][0]["digest"] == "abc"
        assert report["retried"] == 2 and report["healed"] == 1
        text = poisoned.summary()
        assert "1 QUARANTINED" in text and "2 retried" in text


# -- CLI: degraded sweeps exit 3 and list quarantined shards in --json -------


class TestCliDegradedExit:
    def test_campaign_degraded_json_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.testgen import TestGenerator

        journal_dir = tmp_path / "journal"
        json_path = tmp_path / "sweep.json"
        argv = [
            "campaign", "--size", "3", "--full", "--trials", "60",
            "--max-faults", "2", "--journal-dir", str(journal_dir),
            "--json", str(json_path),
        ]
        assert main(argv) == 0
        healthy = json.loads(json_path.read_text())
        assert "quarantined" not in healthy
        capsys.readouterr()

        # Reconstruct the CLI's campaign spec (everything is content
        # addressed, so an equal spec addresses the same shards), park
        # one shard as poison, and drop its published artifact.
        fpva = full_layout(3, 3)
        suite = TestGenerator(fpva).generate().testset
        spec = CampaignSpec(
            fpva=fpva,
            vectors=tuple(suite.all_vectors()),
            fault_counts=(1, 2),
            trials=60,
            seed=0,
        )
        journal = CampaignJournal(journal_dir)
        poison = spec.shards()[1]
        assert journal.store.has(poison.digest)
        journal.quarantine_shard(poison, reason="operator test", attempts=3)
        shutil.rmtree(journal.store.path_for(poison.digest))

        assert main([*argv, "--resume"]) == 3
        captured = capsys.readouterr()
        assert "QUARANTINED" in captured.err
        degraded = json.loads(json_path.read_text())
        assert degraded["quarantined"][0]["digest"] == poison.digest
        # The merged counts shrink by exactly the withheld shard.
        k = str(poison.num_faults)
        assert degraded[k]["trials"] == healthy[k]["trials"] - poison.trials
