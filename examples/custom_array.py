"""Testing a custom irregular FPVA: obstacles, channels, multiple meters.

Builds an array that does not exist in the paper — a 12x12 FPVA with an
off-centre obstacle block, two transport channels and two pressure meters —
and walks the full flow: generate, validate, measure coverage, audit the
two-fault guarantee, and render the artifacts.

    python examples/custom_array.py
"""

from repro import (
    ExecutionContext,
    FPVABuilder,
    Side,
    TestGenerator,
    audit_two_fault_detection,
    measure_coverage,
    render_array,
    validate_suite,
)
from repro.fpva import Cell


def build_chip():
    return (
        FPVABuilder(12, 12, name="lab-on-chip")
        .obstacle_rect(5, 5, 6, 7)          # sensor window: no valves here
        .channel(Cell(2, 3), "east", 4)     # permanent supply channel
        .channel(Cell(9, 8), "south", 2)    # permanent waste channel
        .source(Side.WEST, 1)
        .sink(Side.EAST, 12, name="meter-se")
        .sink(Side.SOUTH, 4, name="meter-s")
        .build()
    )


def main() -> None:
    fpva = build_chip()
    # One session end to end: generation, validation, coverage and the
    # two-fault audit all share a single compiled kernel.
    ctx = ExecutionContext(fpva)
    print(fpva.describe())
    print(render_array(fpva))
    print()

    generated = TestGenerator(
        fpva, path_strategy="hierarchical", subblock=4, context=ctx
    ).generate()
    suite = generated.testset
    print("generation:", generated.report.row())

    # Independent validation: every vector legal, every fault observed.
    report = validate_suite(
        fpva, suite.all_vectors(), check_pair_coverage=True, context=ctx
    )
    print(f"suite validation: {'OK' if report.ok else report.issues[:3]}")

    coverage = measure_coverage(fpva, suite.all_vectors(), context=ctx)
    print("coverage:", coverage.summary())

    # The paper's guarantee: any two simultaneous faults are detected.
    audit = audit_two_fault_detection(
        fpva,
        suite.all_vectors(),
        include_control_leaks=False,
        max_pairs=2000,
        context=ctx,
    )
    print(
        f"two-fault audit: {audit.singles_checked} singles, "
        f"{audit.pairs_checked} pairs checked -> "
        f"{'all detected' if audit.ok else audit.pairs_missed[:3]}"
    )


if __name__ == "__main__":
    main()
