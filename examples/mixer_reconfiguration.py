"""Dynamic devices on an FPVA and why testing matters before mapping them.

Reproduces the scenario of the paper's Fig 2: a 4x2 and a 2x4 dynamic mixer
sharing the same chip area (time-multiplexed), each a ring of cells whose
eight pump valves drive a circular mixing flow.  Then shows the testing
angle: a single stuck-at-0 valve inside the shared area breaks one mixer
configuration but not the other, and the generated test suite pinpoints
whether the region is usable.

    python examples/mixer_reconfiguration.py
"""

from repro import (
    ChipUnderTest,
    DynamicMixer,
    ExecutionContext,
    StuckAt0,
    TestGenerator,
    ValveState,
    full_layout,
)
from repro.fpva import Cell


def ring_intact(fpva, chip, mixer) -> bool:
    """Can fluid still circulate the full mixer ring on this chip?"""
    config = mixer.configuration(fpva)
    opened = {v for v, s in config.items() if s is ValveState.OPEN}
    effective = chip.effective_open_valves(opened)
    return all(v in effective for v in mixer.ring_valves)


def main() -> None:
    fpva = full_layout(8, 8, name="mixer-board")

    tall = DynamicMixer(Cell(2, 3), height=4, width=2)  # Fig 2(b)
    wide = DynamicMixer(Cell(3, 2), height=2, width=4)  # Fig 2(c)
    print(f"4x2 mixer: ring of {len(tall.ring_cells)} cells, "
          f"{len(tall.pump_valves)} pump valves")
    print(f"2x4 mixer: ring of {len(wide.ring_cells)} cells, "
          f"{len(wide.pump_valves)} pump valves")
    print(f"mixers share chip area (Fig 2(d)): {tall.overlaps(wide)}\n")

    for mixer, name in ((tall, "4x2"), (wide, "2x4")):
        mixer.validate(fpva)
        phases = mixer.pump_phases(plug_width=2)
        print(f"{name} mixer: {len(phases)} peristaltic phases; "
              f"phase 0 closes {sum(s is ValveState.CLOSED for s in phases[0].values())} pump valves")

    # A manufacturing defect in the shared area: one valve never opens.
    # It sits on the tall mixer's ring but only walls the wide mixer.
    broken = tall.ring_valves[0]
    chip = ChipUnderTest(fpva, [StuckAt0(broken)])
    print(f"\ninjected defect: {StuckAt0(broken)}")
    print(f"  4x2 mixer ring usable: {ring_intact(fpva, chip, tall)}")
    print(f"  2x4 mixer ring usable: {ring_intact(fpva, chip, wide)}")

    # The generated suite catches the defect at manufacturing test, before
    # any application mapping happens — generation and testing share one
    # compiled-kernel session.
    ctx = ExecutionContext(fpva)
    suite = TestGenerator(fpva, include_leakage=False, context=ctx).generate().testset
    tester = ctx.tester
    run = tester.run(chip, suite.all_vectors(), stop_at_first_fail=True)
    print(f"\nmanufacturing test: defect detected = {run.fault_detected} "
          f"(vector {run.failing[0].vector.name!r})")


if __name__ == "__main__":
    main()
