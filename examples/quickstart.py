"""Quickstart: generate a test suite, screen a faulty chip, read the report.

Runs on the paper's 5x5 benchmark array (39 valves, one transport channel).

    python examples/quickstart.py
"""

from repro import (
    ChipUnderTest,
    ExecutionContext,
    StuckAt0,
    StuckAt1,
    TestGenerator,
    render_array,
    table1_layout,
)


def main() -> None:
    # 1. The device under test: the paper's 5x5 Table I array, wrapped in
    #    one ExecutionContext — the session that compiles the reachability
    #    kernel once and shares it across generation and testing.
    fpva = table1_layout(5)
    ctx = ExecutionContext(fpva)
    print(fpva.describe())
    print(render_array(fpva))
    print()

    # 2. Generate the complete test suite: flow paths (stuck-at-0),
    #    cut-sets (stuck-at-1) and control-leakage vectors.
    generated = TestGenerator(fpva, context=ctx).generate()
    suite = generated.testset
    print("generation report:")
    print(" ", generated.report.row())
    print(" ", suite.summary())
    print()

    # 3. A defect-free chip passes every vector.
    tester = ctx.tester
    good = ChipUnderTest(fpva)
    result = tester.run(good, suite.all_vectors())
    print(f"defect-free chip: {len(result.outcomes)} vectors applied, "
          f"fault detected: {result.fault_detected}")

    # 4. A chip with manufacturing defects fails fast.
    blocked = fpva.valves[7]   # a broken flow channel -> valve never opens
    leaking = fpva.valves[20]  # a leaking flow channel -> valve never closes
    bad = ChipUnderTest(fpva, [StuckAt0(blocked), StuckAt1(leaking)])
    result = tester.run(bad, suite.all_vectors(), stop_at_first_fail=True)
    first = result.failing[0]
    print(f"faulty chip    : detected by vector {first.vector.name!r} "
          f"({first.vector.kind.value}); expected {first.expected}, "
          f"observed {first.observed}")


if __name__ == "__main__":
    main()
