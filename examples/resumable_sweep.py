"""Resumable campaigns: journal a sweep, crash it, resume it, cache it.

Every ``(k, shard)`` slice of a fault-injection sweep is a
content-addressed task; completed shards publish atomically into a
durable journal directory, so a killed run resumes from the last
published shard — with any worker count — and re-running a finished
campaign simulates nothing.  The merged result is bit-identical to the
plain in-memory sweep in every case.

    python examples/resumable_sweep.py
"""

import tempfile
from pathlib import Path

from repro import ExecutionContext, TestGenerator, full_layout
from repro.engine import run_sweep
from repro.fabric import CampaignSpec, ShardWorker, run_journaled_sweep


class Quitter(ShardWorker):
    """A worker that walks off the job after three shards."""

    def checkpoint(self, point, descriptor):
        if point == "pre-claim" and self.executed >= 3:
            raise KeyboardInterrupt("simulated ^C mid-campaign")


def main() -> None:
    # 1. One campaign = one CampaignSpec.  Its shard descriptors are pure
    #    functions of the spec, so any process anywhere can recompute the
    #    same task list and address the same artifacts.
    fpva = full_layout(4, 4, name="resumable-4x4")
    ctx = ExecutionContext(fpva)
    suite = TestGenerator(fpva, context=ctx).generate().testset
    spec = CampaignSpec(
        fpva=fpva,
        vectors=tuple(suite.all_vectors()),
        fault_counts=(1, 2),
        trials=200,
        seed=42,
        shard_trials=25,
    )
    shards = spec.shards()
    print(f"campaign {spec.digest[:12]}…: {len(shards)} shards "
          f"({', '.join(f'k={k}' for k in spec.fault_counts)})")

    with tempfile.TemporaryDirectory() as tmp:
        journal_dir = Path(tmp) / "journal"

        # 2. Start draining, then "crash" partway through.  Everything
        #    published before the crash is already durable.
        try:
            run_journaled_sweep(
                spec, journal_dir, workers=1, worker_cls=Quitter
            )
        except KeyboardInterrupt as exc:
            print(f"crashed: {exc}")

        # 3. Resume.  Only the unpublished shards run; the crashed run's
        #    progress comes back as cache hits.
        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True
        )
        print(f"resume:  {stats.summary()}")

        # 4. A finished campaign is a pure cache hit — zero simulation.
        results, stats = run_journaled_sweep(
            spec, journal_dir, workers=1, resume=True
        )
        print(f"rerun:   {stats.summary()}")
        assert stats.executed == 0 and stats.cache_hits == stats.total

        # 5. The merge is bit-identical to the plain in-memory sweep,
        #    crash or no crash, whatever the worker count.
        memory = run_sweep(
            fpva, suite.all_vectors(), fault_counts=(1, 2), trials=200,
            seed=42, shard_trials=25, context=ctx,
        )
        for k in sorted(results):
            assert results[k].detected == memory[k].detected
            assert results[k].undetected_examples == memory[k].undetected_examples
            print(f"  k={k}: {results[k].detected}/{results[k].trials} "
                  f"detected — matches the in-memory sweep bit-for-bit")


if __name__ == "__main__":
    main()
