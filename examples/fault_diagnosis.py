"""Fault localization: from a failing test run to the defect's location.

A failing chip is not always waste — an FPVA with a localized defect can
still run applications mapped around the bad region.  This example builds a
syndrome dictionary from the generated suite and localizes randomly
injected faults.

    python examples/fault_diagnosis.py
"""

import random

from repro import (
    ChipUnderTest,
    ExecutionContext,
    FaultDictionary,
    TestGenerator,
    full_layout,
)
from repro.sim import fault_universe, sample_fault_set


def main() -> None:
    fpva = full_layout(5, 5, name="diagnosable")
    ctx = ExecutionContext(fpva)  # one compiled kernel for suite + dictionary
    suite = TestGenerator(fpva, context=ctx).generate().testset
    print(f"{fpva.describe()}")
    print(f"suite: {suite.summary()}")

    # Precompute the syndrome dictionary for all single faults.
    dictionary = FaultDictionary(
        fpva,
        suite.all_vectors(),
        include_control_leaks=True,
        max_cardinality=1,
        context=ctx,
    )
    print(
        f"dictionary: {dictionary.distinct_syndromes} distinct syndromes, "
        f"avg candidates per syndrome = {dictionary.resolution():.2f}\n"
    )

    rng = random.Random(7)
    universe = fault_universe(fpva)
    hits = unique = 0
    for trial in range(10):
        (fault,) = sample_fault_set(universe, 1, rng)
        chip = ChipUnderTest(fpva, [fault])
        report = dictionary.diagnose_chip(chip)
        located = any(fault in cand for cand in report.candidates)
        hits += located
        unique += report.is_unique
        label = "UNIQUE" if report.is_unique else f"{len(report.candidates)} candidates"
        print(f"  trial {trial}: injected {fault} -> "
              f"{'located' if located else 'MISSED'} ({label})")

    print(f"\nlocalized {hits}/10 injected faults "
          f"({unique} with a unique syndrome)")


if __name__ == "__main__":
    main()
