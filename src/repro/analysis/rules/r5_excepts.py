"""R5 — no bare/broad ``except`` that can swallow corruption errors.

The warm-load paths raise :class:`ArtifactCorruptionError` precisely so
callers quarantine-and-heal instead of computing on garbage.  A bare
``except:`` or ``except Exception:`` between the loader and the healer
eats that signal and turns "corruption heals" back into "corruption
corrupts results".

A broad handler is exempt when its body re-raises (``raise`` /
``raise X from err``): catch-log-reraise and probe-and-narrow patterns
are fine, silent swallowing is not.  Handlers at genuine supervision
boundaries — the shard worker's drain loop, which must record *any*
workload failure and burn an attempt — keep an inline
``# repro: ignore[R5]`` with the reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule

_BROAD = {"Exception", "BaseException"}


def _broad_names(node: ast.expr | None) -> list[str]:
    """Broad exception names in an ``except`` clause (handles tuples)."""
    if node is None:
        return ["(bare)"]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD:
            names.append(expr.id)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(sub, ast.Raise) for sub in ast.walk(handler))


class BroadExceptRule(Rule):
    id = "R5"
    name = "broad-except"
    severity = "error"
    rationale = (
        "ArtifactCorruptionError must reach the quarantine-and-heal "
        "path; broad handlers may not swallow it silently"
    )
    scope = ("src/repro/", "scripts/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _broad_names(node.type)
            if not names or _reraises(node):
                continue
            label = names[0]
            yield ctx.finding(
                self,
                node,
                f"except {label} without re-raise can swallow "
                f"ArtifactCorruptionError — catch the specific exceptions, "
                f"or re-raise",
            )
