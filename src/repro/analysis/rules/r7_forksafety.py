"""R7 — fork-safety: no mutable defaults or module-level mutable state.

Worker processes import ``sim``/``fabric``/``engine``/``store`` modules
at spawn; module-level mutable containers forked (or re-imported) into
workers diverge silently between processes, and mutable default
arguments accumulate state across calls within one worker — both make
"same shard, same bytes" a lie that only shows up under ``--workers``.

Deliberate per-process caches (the kernel memo, the backend registry)
are real and stay — with an inline ``# repro: ignore[R7]`` naming the
reason, so every shared-state site is enumerable by grep.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import (
    WORKER_IMPORTED,
    FileContext,
    Finding,
    Rule,
    is_mutable_literal,
)

_EXEMPT_NAMES = {"__all__"}


class ForkSafetyRule(Rule):
    id = "R7"
    name = "fork-safety"
    severity = "warning"
    rationale = (
        "process-pool workers must not share (or resurrect) mutable "
        "module state; caches must be per-process and deliberate"
    )
    scope = WORKER_IMPORTED

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Mutable default arguments, anywhere in the file.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if is_mutable_literal(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default argument on {node.name}() is "
                        f"shared across calls — default to None and "
                        f"construct inside",
                    )
        # Module-level mutable containers.
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not is_mutable_literal(value):
                continue
            names = [
                t.id for t in targets if isinstance(t, ast.Name)
            ]
            if not names or all(n in _EXEMPT_NAMES for n in names):
                continue
            yield ctx.finding(
                self,
                stmt,
                f"module-level mutable state ({', '.join(names)}) in a "
                f"worker-imported module — make it per-process and mark "
                f"it deliberate, or move it into an object",
            )
