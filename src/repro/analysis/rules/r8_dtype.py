"""R8 — numpy dtype hygiene on the bit-parallel hot path.

The reachability kernel packs test vectors into ``uint64`` words; a
``np.arange(...)`` or ``np.zeros(...)`` without an explicit ``dtype=``
defaults to ``int64``/``float64``, and one such array touching the
packed words promotes the whole expression — silently doubling memory
and breaking the bitwise identities the word-parallel backend depends
on.  On the hot path, every array constructor says its dtype out loud.

``asarray``/``ascontiguousarray`` are excluded (they preserve their
input's dtype, which is the point), as are the ``*_like`` constructors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import HOT_PATH, FileContext, Finding, Rule, dotted_tail

_CONSTRUCTORS = {"array", "zeros", "ones", "empty", "full", "arange"}


class DtypeHygieneRule(Rule):
    id = "R8"
    name = "dtype-hygiene"
    severity = "warning"
    rationale = (
        "untyped array constructors default to int64/float64 and "
        "silently promote the uint64 bit-parallel words"
    )
    scope = HOT_PATH

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = dotted_tail(node.func)
            if tail not in _CONSTRUCTORS:
                continue
            resolved = ctx.resolve(node.func)
            if not (
                resolved.startswith("numpy.") or resolved.startswith("cupy.")
            ):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.full(shape, fill) infers from the fill value; a literal
            # int still lands on int64, so it is flagged like the rest.
            yield ctx.finding(
                self,
                node,
                f"{resolved}(...) without dtype= on the bit-parallel hot "
                f"path — spell the dtype explicitly (uint64 words, int64 "
                f"indices)",
            )
