"""R4 — no internal use of deprecated call spellings.

``run_campaign(backend=...)`` / ``FaultDictionary(kernel=...)`` /
``cache_dir=`` are compatibility shims kept for external callers; they
emit :class:`DeprecationWarning` and will be removed.  Internal code
using them both delays that removal and advertises the wrong idiom to
readers — new code passes ``context=ExecutionContext(...)``.

Only the known shimmed callees are checked: ``kernel=`` on ``Tester``
(say) is real API and stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, dotted_tail

#: callee → keyword args that are deprecated *on that callee*.
_DEPRECATED = {
    "run_campaign": {"backend", "cache_dir"},
    "run_sweep": {"backend", "cache_dir"},
    "run_sharded_sweep": {"backend", "cache_dir"},
    "run_journaled_sweep": {"backend", "cache_dir"},
    "FaultDictionary": {"kernel"},
}


class DeprecatedSpellingRule(Rule):
    id = "R4"
    name = "deprecated-spellings"
    severity = "warning"
    rationale = (
        "internal code must not depend on deprecation shims slated for "
        "removal; pass context= instead"
    )
    scope = ("src/repro/", "scripts/", "examples/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_tail(node.func)
            banned = _DEPRECATED.get(callee)
            if not banned:
                continue
            for kw in node.keywords:
                if kw.arg in banned:
                    yield ctx.finding(
                        self,
                        node,
                        f"{callee}({kw.arg}=...) is a deprecated spelling "
                        f"internally — pass context=ExecutionContext(...)",
                    )
