"""R1 — no unseeded randomness or wall-clock reads in deterministic modules.

Every result in ``sim/``, ``fabric/``, ``engine/``, and ``store/`` must
be a pure function of (inputs, seed): shard merges are bit-compared
against serial references, and campaign resumes re-execute work
expecting identical bytes.  One ``random.random()`` or ``time.time()``
folded into a result breaks that silently, in a way the test suite only
catches probabilistically.

Flagged are *calls* — ``time.time()``, ``datetime.now()``,
``uuid.uuid4()``, module-level ``random.*`` functions, and legacy
``numpy.random.*`` — not references, so the sanctioned
dependency-injection idiom (``def __init__(self, clock=time.time)``)
stays legal: the default is a reference, and tests inject a fake.
Seeded constructions (``random.Random(seed)``,
``numpy.random.default_rng(seed)``) are the approved alternative.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import DETERMINISTIC_PACKAGES, FileContext, Finding, Rule

#: Wall-clock / uniqueness reads that leak real time into results.
_WALL_CLOCK = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "time/MAC-derived uuid",
    "uuid.uuid4": "os-entropy uuid",
}

#: ``random.X()`` constructions that *are* allowed — an explicitly
#: seeded generator is the approved idiom.
_RANDOM_OK = {"random.Random"}

#: ``numpy.random.X`` constructions that are allowed (seeded generator
#: API); everything else on ``numpy.random`` is legacy global state.
_NP_RANDOM_OK = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}


class DeterminismRule(Rule):
    id = "R1"
    name = "determinism"
    severity = "error"
    rationale = (
        "deterministic modules must be a pure function of (inputs, seed); "
        "wall-clock reads and unseeded RNGs break bit-identical resume"
    )
    scope = DETERMINISTIC_PACKAGES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name in _WALL_CLOCK:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() is a {_WALL_CLOCK[name]} in a deterministic "
                    f"module — inject a clock/ids via parameters instead",
                )
            elif name.startswith("random.") and name not in _RANDOM_OK:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() uses the unseeded global RNG — construct "
                    f"random.Random(seed) and thread it through",
                )
            elif (
                name.startswith("numpy.random.")
                and name not in _NP_RANDOM_OK
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{name}() uses numpy's legacy global RNG — use "
                    f"numpy.random.default_rng(seed)",
                )
