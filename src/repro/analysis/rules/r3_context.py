"""R3 — simulators and kernels are built by the session layer, not callers.

``ExecutionContext`` (PR 5) guarantees exactly one kernel compile per
session and one shared simulator; a private
``ReachabilityKernel(fpva)`` in caller code silently duplicates that
work and — worse — bypasses the kernel store's warm-load/heal path, so
the caller's kernel never benefits from (or exercises) artifact
integrity checking.

Construction is allowed only where it is the point: ``context.py``
itself, the ``sim/`` package that defines these types, and the kernel
store's compile-on-miss path.  Everyone else accepts ``context=``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import SESSION_FACTORIES, FileContext, Finding, Rule, dotted_tail, in_any

_SESSION_TYPES = {"PressureSimulator", "ReachabilityKernel"}


class ContextDisciplineRule(Rule):
    id = "R3"
    name = "session-discipline"
    severity = "error"
    rationale = (
        "exactly-one-kernel-compile and warm-load healing only hold when "
        "simulators/kernels are built via ExecutionContext"
    )

    def applies_to(self, path: str) -> bool:
        return not in_any(path, SESSION_FACTORIES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = dotted_tail(node.func)
            if tail in _SESSION_TYPES:
                yield ctx.finding(
                    self,
                    node,
                    f"private {tail}(...) construction outside the session "
                    f"layer — accept context= and use "
                    f"ExecutionContext.kernel/.simulator",
                )
