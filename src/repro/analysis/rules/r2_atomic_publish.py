"""R2 — writes under store/journal roots go through atomic publish.

The store's healing guarantees (PR 8) assume readers only ever see
either a complete artifact or no artifact: writers stage into a temp
name, fsync, then ``os.replace`` into place, with the ``meta.json``
completeness marker landing last.  A raw ``open(path, "w")`` in the
store or fabric layers can expose a torn file to a concurrent verifying
reader — exactly the race the chaos suite exists to rule out.

The rule is deliberately scope-granular rather than statement-granular:
a write is exempt when its target expression mentions ``tmp`` (staging
into a temp name *is* the protocol's first half) or when the enclosing
function/class also performs the ``os.replace``/``os.rename``/``os.link``
that completes the publish.  That passes the existing two-phase writers
(``DictionaryWriter`` stages in ``_write_payload`` and renames in
``commit``) without false positives, while still catching the
one-liner that writes straight to a final name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import STORE_LAYERS, FileContext, Finding, Rule, dotted_tail

_WRITE_METHODS = {"write_text", "write_bytes"}
_ATOMIC_COMPLETIONS = {
    "os.replace", "replace", "os.rename", "rename", "os.link", "link",
}


def _write_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open``/``Path.open`` call, if literal."""
    mode: ast.expr | None = None
    if len(node.args) >= 2 and dotted_tail(node.func) == "open" and not isinstance(
        node.func, ast.Attribute
    ):
        mode = node.args[1]
    elif node.args and isinstance(node.func, ast.Attribute):
        mode = node.args[0]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class AtomicPublishRule(Rule):
    id = "R2"
    name = "atomic-publish"
    severity = "error"
    rationale = (
        "readers under store/journal roots must only ever see complete "
        "artifacts; writes must stage to tmp and os.replace into place"
    )
    scope = STORE_LAYERS

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = dotted_tail(node.func)
            target: ast.expr | None = None
            verb = ""
            if tail in _WRITE_METHODS and isinstance(node.func, ast.Attribute):
                target = node.func.value
                verb = f".{tail}()"
            elif tail == "open":
                mode = _write_mode(node)
                if mode is None or not any(c in mode for c in "wax+"):
                    continue
                if isinstance(node.func, ast.Attribute):
                    target = node.func.value
                elif node.args:
                    target = node.args[0]
                verb = f'open(mode="{mode}")'
            else:
                continue
            if target is not None and self._is_temp(ctx, target):
                continue
            if self._completes_atomically(ctx, node):
                continue
            yield ctx.finding(
                self,
                node,
                f"raw {verb} under a store/journal layer — stage into a "
                f"tmp name and os.replace into place (see "
                f"repro.store.integrity)",
            )

    @staticmethod
    def _is_temp(ctx: FileContext, target: ast.expr) -> bool:
        segment = ast.get_source_segment(ctx.source, target) or ""
        return "tmp" in segment.lower() or "temp" in segment.lower()

    @staticmethod
    def _completes_atomically(ctx: FileContext, node: ast.Call) -> bool:
        return bool(ctx.enclosing_calls(node) & _ATOMIC_COMPLETIONS)
