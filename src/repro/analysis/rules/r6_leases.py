"""R6 — lease/heartbeat files are touched only by the claim helpers.

Shard mutual exclusion rides on one primitive: ``os.link`` fails with
``EEXIST`` if the lease name already exists, so exactly one worker wins
each claim (``CampaignJournal._try_acquire``).  Any other code path
creating, rewriting, or deleting lease/heartbeat files — even
well-meaning cleanup — can hand two workers the same shard or make a
live worker look dead to the stale-lease reaper.

Two checks: ``os.link`` itself is reserved to ``fabric/journal.py``
(the only sanctioned claim site), and file operations whose target
mentions ``lease``/``heartbeat`` are reserved to ``journal.py`` and
``supervision.py`` (which owns heartbeat beacons).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, dotted_tail

_CLAIM_SITES = ("src/repro/fabric/journal.py",)
_BEACON_SITES = (
    "src/repro/fabric/journal.py",
    "src/repro/fabric/supervision.py",
)
_FILE_OPS = {
    "write_text", "write_bytes", "unlink", "remove", "touch", "open",
    "rename", "replace", "rmdir",
}


class LeaseDisciplineRule(Rule):
    id = "R6"
    name = "lease-discipline"
    severity = "error"
    rationale = (
        "hard-link lease claims guarantee exactly one winner per shard; "
        "only the claim helpers may touch lease/heartbeat files"
    )
    scope = ("src/repro/fabric/", "scripts/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name == "os.link" and ctx.path not in _CLAIM_SITES:
                yield ctx.finding(
                    self,
                    node,
                    "os.link outside fabric/journal.py — lease claims go "
                    "through CampaignJournal's claim helpers only",
                )
                continue
            if ctx.path in _BEACON_SITES:
                continue
            tail = dotted_tail(node.func)
            if tail not in _FILE_OPS:
                continue
            segment = ast.get_source_segment(ctx.source, node) or ""
            lowered = segment.lower()
            if "lease" in lowered or "heartbeat" in lowered:
                yield ctx.finding(
                    self,
                    node,
                    f"direct {tail}() on a lease/heartbeat path outside the "
                    f"claim helpers — use CampaignJournal / "
                    f"SupervisionLedger APIs",
                )
