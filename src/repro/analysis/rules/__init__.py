"""Rule registry: every ``r*.py`` module in this package contributes.

Discovery is by module, not by a hand-maintained list, so deleting a
rule module really removes its rule (and trips the per-rule registry
tests) instead of leaving a dangling import error or — worse — a list
entry that silently keeps passing.
"""

from __future__ import annotations

import importlib
import pkgutil

from ..core import Rule

__all__ = ["all_rules", "rules_by_id"]

_cache: list[Rule] | None = None


def all_rules() -> list[Rule]:
    """One instance of every rule defined in this package, id-sorted."""
    global _cache
    if _cache is None:
        rules: list[Rule] = []
        for info in pkgutil.iter_modules(__path__):
            if not info.name.startswith("r"):
                continue
            module = importlib.import_module(f"{__name__}.{info.name}")
            for obj in vars(module).values():
                if (
                    isinstance(obj, type)
                    and issubclass(obj, Rule)
                    and obj is not Rule
                    and obj.__module__ == module.__name__
                    and obj.id
                ):
                    rules.append(obj())
        rules.sort(key=lambda r: (len(r.id), r.id))
        _cache = rules
    return list(_cache)


def rules_by_id() -> dict[str, Rule]:
    return {rule.id: rule for rule in all_rules()}
