"""The committed baseline of grandfathered findings.

A baseline entry says "this finding is known, justified, and allowed to
stay" — it is the file-level counterpart of an inline ``# repro:
ignore[...]`` comment, for findings that predate the rule or that an
inline comment can't reach (generated files, findings whose fix is a
separate PR).  Every entry must carry a non-empty ``justification``;
loading rejects entries without one, so the baseline can't silently
accumulate unexplained exemptions.

Matching is by fingerprint (rule + path + normalized source line +
occurrence index — see :func:`repro.analysis.core.fingerprint`), so a
baselined finding survives unrelated edits that shift its line number,
but *not* edits to the flagged line itself: touch the line, re-earn the
exemption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed or an entry lacks a justification."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    fingerprint: str
    line: int
    message: str
    justification: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "line": self.line,
            "message": self.message,
            "justification": self.justification,
        }


def parse_baseline(payload: dict) -> list[BaselineEntry]:
    """Validate a decoded baseline document into entries."""
    if not isinstance(payload, dict):
        raise BaselineError("baseline must be a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError("baseline 'entries' must be a list")
    entries = []
    for i, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"entry {i} is not an object")
        missing = [
            key
            for key in ("rule", "path", "fingerprint", "justification")
            if not isinstance(raw.get(key), str)
        ]
        if missing:
            raise BaselineError(
                f"entry {i} is missing string field(s): {', '.join(missing)}"
            )
        if not raw["justification"].strip():
            raise BaselineError(
                f"entry {i} ({raw['rule']} at {raw['path']}) has an empty "
                f"justification — every grandfathered finding must say why"
            )
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                fingerprint=raw["fingerprint"],
                line=int(raw.get("line", 0)),
                message=str(raw.get("message", "")),
                justification=raw["justification"],
            )
        )
    return entries


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Load and validate a baseline file; a missing file is empty."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    return parse_baseline(payload)


def render_baseline(entries: Iterable[BaselineEntry]) -> str:
    """Serialize entries into the canonical committed form (sorted,
    trailing newline) so regeneration is diff-stable."""
    ordered = sorted(entries, key=lambda e: (e.path, e.rule, e.fingerprint))
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.as_dict() for entry in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def write_baseline(path: Path, entries: Iterable[BaselineEntry]) -> None:
    path.write_text(render_baseline(entries), encoding="utf-8")


def entries_from_findings(
    findings: Iterable[Finding],
    previous: Iterable[BaselineEntry] = (),
    placeholder: str = "TODO: justify or fix",
) -> list[BaselineEntry]:
    """Baseline entries for ``findings``, carrying forward justifications
    from ``previous`` where fingerprints still match."""
    kept = {entry.fingerprint: entry.justification for entry in previous}
    return [
        BaselineEntry(
            rule=f.rule,
            path=f.path,
            fingerprint=f.fingerprint,
            line=f.line,
            message=f.message,
            justification=kept.get(f.fingerprint, placeholder),
        )
        for f in findings
    ]


def split_by_baseline(
    findings: Iterable[Finding],
    entries: Iterable[BaselineEntry],
    analyzed_paths: Iterable[str] | None = None,
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Partition into (new findings, baselined findings, stale entries).

    Stale entries are baseline lines whose finding no longer occurs —
    under ``--strict`` they fail the run, forcing the baseline to shrink
    as violations are actually fixed.  When ``analyzed_paths`` is given
    (a partial lint of a path subset), only entries for files that were
    actually analyzed can read as stale; entries outside the subset are
    simply unjudged.
    """
    by_fp = {entry.fingerprint: entry for entry in entries}
    new: list[Finding] = []
    matched: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        if finding.fingerprint in by_fp:
            matched.append(finding)
            seen.add(finding.fingerprint)
        else:
            new.append(finding)
    judged = None if analyzed_paths is None else set(analyzed_paths)
    stale = [
        entry
        for fp, entry in by_fp.items()
        if fp not in seen and (judged is None or entry.path in judged)
    ]
    stale.sort(key=lambda e: (e.path, e.rule, e.fingerprint))
    return new, matched, stale
