"""The rule engine: findings, suppressions, and the per-file driver.

One :class:`FileContext` is built per analyzed file — the parsed AST,
the raw source lines, an import-alias resolver (``np.random.rand`` →
``numpy.random.rand`` whatever the file imported numpy as), and a
function/class scope index — and every registered rule runs over it.
Rules never re-parse and never re-walk imports; all shared work lives
here.

**Suppressions.**  A finding whose line (or whose line's immediately
preceding comment-only line) carries ``# repro: ignore[RULE] -- reason``
is suppressed.  The reason string is *required*: an ignore without one —
or one naming a rule id that does not exist — is itself reported as a
:data:`SUPPRESS_RULE_ID` error, so suppressions stay auditable instead
of rotting into cargo cult.

**Fingerprints.**  Findings are identified for baselining by a BLAKE2b
fingerprint of ``(rule, path, normalized source line, occurrence
index)`` — deliberately *not* the line number, so unrelated edits above
a grandfathered finding do not invalidate the baseline entry.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Severity levels, in increasing order of strictness of enforcement:
#: ``error`` fails a default run, ``warning`` only fails ``--strict``.
SEVERITIES = ("warning", "error")

#: Pseudo-rule id used for findings about the suppression mechanism
#: itself (missing reason, unknown rule id in an ignore).
SUPPRESS_RULE_ID = "SUP"

#: ``# repro: ignore[R1]`` / ``ignore[R2,R7]`` with a required reason
#: after ``--`` or ``:``.
_IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s-]*)\]\s*(?:(?:--|:)\s*(\S.*?))?\s*$"
)

# -- path predicates ---------------------------------------------------------
# Module scoping is by repo-relative posix path; rules share these so the
# notion of "deterministic module" / "store layer" stays in one place.

#: Packages whose results must be a pure function of (inputs, seed):
#: unseeded randomness or wall-clock reads here break reproducibility.
DETERMINISTIC_PACKAGES = (
    "src/repro/sim/",
    "src/repro/fabric/",
    "src/repro/engine/",
    "src/repro/store/",
)

#: Layers that write under store/journal roots: every publish must flow
#: through the atomic temp + rename(+fsync) discipline.
STORE_LAYERS = ("src/repro/store/", "src/repro/fabric/", "scripts/")

#: Modules imported by process-pool workers (fork/spawn safety).
WORKER_IMPORTED = DETERMINISTIC_PACKAGES

#: The bit-parallel hot path, where an untyped literal silently promotes
#: ``uint64`` intermediates to ``int64``/``float64``.
HOT_PATH = ("src/repro/sim/kernel.py", "src/repro/sim/backends/")

#: The only modules allowed to construct simulators/kernels privately:
#: the session layer itself, the package that defines them, and the
#: kernel store's compile-on-miss path.
SESSION_FACTORIES = (
    "src/repro/context.py",
    "src/repro/sim/",
    "src/repro/store/kernels.py",
)


def in_any(path: str, prefixes: Iterable[str]) -> bool:
    """Whether a repo-relative posix path sits under any of ``prefixes``."""
    return any(path == p or path.startswith(p) for p in prefixes)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    fingerprint: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule} {self.severity}: {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    line: int           #: line the comment sits on (1-based)
    target_line: int    #: line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str


class Rule:
    """Base class every analysis rule derives from.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` scopes the rule to path prefixes (``scope=()``
    means repo-wide).  Rules are stateless — one instance serves every
    file — and yield plain ``(node, message)`` pairs through
    :meth:`FileContext.finding`.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    #: One-line statement of the invariant the rule protects.
    rationale: str = ""
    #: Path prefixes the rule applies to; empty means everywhere.
    scope: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        return not self.scope or in_any(path, self.scope)

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError


_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "deque"}


def is_mutable_literal(node: ast.expr) -> bool:
    """Whether an expression is a mutable container display/constructor."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_tail(node.func)
        return name in _MUTABLE_CALLS
    return False


def dotted_tail(node: ast.expr) -> str:
    """The last attribute/name component of an expression, or ``""``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted_chain(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class FileContext:
    """Everything rules need about one file, computed exactly once."""

    def __init__(self, path: str, source: str, tree: ast.Module | None = None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self.imports = self._collect_imports()
        self._scopes: list[tuple[ast.AST, set[str]]] | None = None
        self._fingerprint_counts: dict[tuple[str, str], int] = {}

    # -- imports -------------------------------------------------------------
    def _collect_imports(self) -> dict[str, str]:
        """Local alias → fully dotted origin (``np`` → ``numpy``,
        ``now`` → ``datetime.datetime.now`` for ``from datetime import
        datetime`` + attribute access resolved in :meth:`resolve`)."""
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    full = alias.name if alias.asname else alias.name.split(".")[0]
                    table[local] = full
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{node.module}.{alias.name}"
        return table

    def resolve(self, node: ast.expr) -> str:
        """Fully-qualified dotted name of an expression, alias-resolved.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        file did ``import numpy as np``; unresolvable expressions (calls
        on call results, subscripts…) resolve to ``""``.
        """
        chain = _dotted_chain(node)
        if not chain:
            return ""
        head, rest = chain[0], chain[1:]
        origin = self.imports.get(head, head)
        return ".".join([origin, *rest])

    # -- scopes --------------------------------------------------------------
    def _scope_index(self) -> list[tuple[ast.AST, set[str]]]:
        """(function-or-class node, resolved call names inside it) pairs.

        Used by scope-sensitive rules ("a write is fine if the same
        function/class also performs the atomic rename").
        """
        if self._scopes is None:
            index = []
            for node in ast.walk(self.tree):
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    calls = {
                        self.resolve(sub.func)
                        for sub in ast.walk(node)
                        if isinstance(sub, ast.Call)
                    }
                    calls |= {
                        dotted_tail(sub.func)
                        for sub in ast.walk(node)
                        if isinstance(sub, ast.Call)
                    }
                    index.append((node, calls))
            self._scopes = index
        return self._scopes

    def enclosing_calls(self, node: ast.AST) -> set[str]:
        """Union of call names across every function/class scope whose
        source span contains ``node`` (falls back to the whole module for
        top-level statements).

        The union is deliberate: a two-phase writer may stage bytes in
        one method and ``os.replace`` in a sibling method of the same
        class — the class scope ties them together.
        """
        union: set[str] = set()
        contained = False
        for scope, calls in self._scope_index():
            start = scope.lineno
            end = getattr(scope, "end_lineno", start)
            if start <= node.lineno <= end:
                union |= calls
                contained = True
        if contained:
            return union
        # Module scope: every call in the file.
        all_calls = {
            self.resolve(sub.func)
            for sub in ast.walk(self.tree)
            if isinstance(sub, ast.Call)
        }
        all_calls |= {
            dotted_tail(sub.func)
            for sub in ast.walk(self.tree)
            if isinstance(sub, ast.Call)
        }
        return all_calls

    # -- findings ------------------------------------------------------------
    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.snippet(line)
        key = (rule.id, snippet)
        occurrence = self._fingerprint_counts.get(key, 0)
        self._fingerprint_counts[key] = occurrence + 1
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            line=line,
            col=col + 1,
            message=message,
            snippet=snippet,
            fingerprint=fingerprint(rule.id, self.path, snippet, occurrence),
        )


def fingerprint(rule: str, path: str, snippet: str, occurrence: int = 0) -> str:
    """Stable identity of one finding (line-number independent)."""
    payload = "\0".join((rule, path, " ".join(snippet.split()), str(occurrence)))
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def _comment_lines(source: str) -> dict[int, str]:
    """Line → comment text, for *real* comment tokens only (a docstring
    that quotes the ignore syntax must not suppress anything)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_suppressions(
    source: str, lines: list[str], known_rules: Iterable[str]
) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """All ``# repro: ignore`` comments in a file, plus malformed ones.

    A comment-only line suppresses the next non-blank source line; an
    end-of-line comment suppresses its own line.  Returns
    ``(suppressions, problems)`` where each problem is ``(line,
    message)`` — a missing reason or an unknown rule id.
    """
    known = set(known_rules)
    suppressions: list[Suppression] = []
    problems: list[tuple[int, str]] = []
    for i, comment in sorted(_comment_lines(source).items()):
        text = lines[i - 1] if i <= len(lines) else comment
        match = _IGNORE_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = (match.group(2) or "").strip()
        target = i
        if text.strip().startswith("#"):
            # Comment-only line: applies to the next non-blank line.
            j = i
            while j < len(lines) and not lines[j].strip():
                j += 1
            target = j + 1 if j < len(lines) else i
        if not rules:
            problems.append((i, "ignore[] names no rule"))
            continue
        unknown = [r for r in rules if r not in known]
        if unknown:
            problems.append(
                (i, f"ignore[] names unknown rule(s): {', '.join(unknown)}")
            )
        if not reason:
            problems.append(
                (i, f"ignore[{','.join(rules)}] has no reason — append "
                    f"'-- why this is deliberately kept'")
            )
            continue
        suppressions.append(
            Suppression(line=i, target_line=target, rules=rules, reason=reason)
        )
    return suppressions, problems


@dataclass
class FileReport:
    """Outcome of analyzing one file."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)


class _SuppressMeta(Rule):
    """Internal pseudo-rule for malformed suppression comments."""

    id = SUPPRESS_RULE_ID
    name = "suppression-hygiene"
    severity = "error"
    rationale = (
        "every ignore must name a real rule and carry a reason string, "
        "so suppressions stay auditable"
    )


SUPPRESS_META = _SuppressMeta()


class _ParseMeta(Rule):
    """Internal pseudo-rule for unparseable files."""

    id = "PARSE"
    name = "syntax"
    severity = "error"
    rationale = "analyzed files must parse"


PARSE_META = _ParseMeta()


def analyze_source(
    path: str,
    source: str,
    rules: Iterable[Rule],
) -> FileReport:
    """Run every applicable rule over one file's source."""
    report = FileReport(path=path)
    all_ids = {r.id for r in rules}
    rules = [r for r in rules if r.applies_to(path)]
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        report.findings.append(
            Finding(
                rule=PARSE_META.id,
                severity=PARSE_META.severity,
                path=path,
                line=line,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
                snippet="",
                fingerprint=fingerprint(PARSE_META.id, path, str(exc.msg)),
            )
        )
        return report

    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))

    known_ids = all_ids | {SUPPRESS_RULE_ID, PARSE_META.id}
    suppressions, problems = parse_suppressions(ctx.source, ctx.lines, known_ids)
    for line, message in problems:
        raw.append(
            Finding(
                rule=SUPPRESS_META.id,
                severity=SUPPRESS_META.severity,
                path=path,
                line=line,
                col=1,
                message=message,
                snippet=ctx.snippet(line),
                fingerprint=fingerprint(
                    SUPPRESS_META.id, path, ctx.snippet(line)
                ),
            )
        )

    by_line: dict[int, set[str]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, set()).update(sup.rules)
    for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        if finding.rule in by_line.get(finding.line, ()):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report


def iter_python_files(
    root: Path,
    targets: Iterable[str],
    exclude: Iterable[str] = ("tests", "benchmarks"),
) -> Iterator[tuple[Path, str]]:
    """Yield ``(absolute path, repo-relative posix path)`` deterministically."""
    excluded = set(exclude)
    for target in targets:
        base = root / target
        if base.is_file() and base.suffix == ".py":
            yield base, base.relative_to(root).as_posix()
            continue
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root)
            parts = rel.parts
            if any(p.startswith(".") or p == "__pycache__" for p in parts):
                continue
            if parts[0] in excluded:
                continue
            yield path, rel.as_posix()


def analyze_files(
    root: Path,
    targets: Iterable[str],
    rules: Iterable[Rule],
    reader: Callable[[Path], str] | None = None,
) -> list[FileReport]:
    """Analyze every python file under ``targets`` (relative to ``root``)."""
    rules = list(rules)
    read = reader if reader is not None else (
        lambda p: p.read_text(encoding="utf-8")
    )
    return [
        analyze_source(rel, read(path), rules)
        for path, rel in iter_python_files(root, targets)
    ]
