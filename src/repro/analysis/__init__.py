"""Static analysis for the repo's own invariants.

The guarantees this reproduction makes — bit-identical shard merges for
any worker count, corruption that heals instead of corrupting results,
exactly-one-kernel-compile sessions — rest on coding conventions.  This
package checks them mechanically:

====  ========================  =====================================
rule  name                      invariant protected
====  ========================  =====================================
R1    determinism               results are a pure function of (inputs, seed)
R2    atomic-publish            readers never see torn artifacts
R3    session-discipline        one kernel compile, via ExecutionContext
R4    deprecated-spellings      internal code models the current API
R5    broad-except              corruption errors reach the healer
R6    lease-discipline          exactly one claim winner per shard
R7    fork-safety               no shared mutable module state in workers
R8    dtype-hygiene             no silent uint64 promotions on the hot path
====  ========================  =====================================

Run it with ``python -m repro.analysis`` (or ``python -m repro lint``);
suppress a deliberate finding inline with ``# repro: ignore[R1] -- why``
and grandfather pre-existing ones in ``analysis-baseline.json``.
"""

from .baseline import BaselineEntry, load_baseline, write_baseline
from .core import Finding, Rule, analyze_files, analyze_source, fingerprint
from .rules import all_rules, rules_by_id

__all__ = [
    "BaselineEntry",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_files",
    "analyze_source",
    "fingerprint",
    "load_baseline",
    "rules_by_id",
    "write_baseline",
]
