"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 clean (or everything baselined/suppressed), 1 new
findings (errors by default; any severity under ``--strict``, which
also fails on stale baseline entries), 2 usage/configuration problems
(unreadable baseline, unknown rule, no files).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from . import baseline as baseline_mod
from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    entries_from_findings,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from .core import Finding, analyze_files
from .rules import all_rules

#: What gets analyzed when no explicit paths are given.
DEFAULT_TARGETS = ("src/repro", "scripts", "examples")

#: Files mypy is scoped to (matches mypy.ini's ``files``): the layers
#: whose type discipline the store/fabric guarantees lean on.
MYPY_SCOPE = ("src/repro/store", "src/repro/fabric", "src/repro/context.py")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "static analysis enforcing the repo's determinism, "
            "atomic-publish, and session invariants"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files/directories to analyze (default: {', '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: auto-detected from this file)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover all current findings "
             "(preserves existing justifications; new entries get a "
             "TODO placeholder you must fill in)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="also write the full JSON report to this file",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings and on stale baseline entries, not just "
             "new errors",
    )
    parser.add_argument(
        "--mypy", action="store_true",
        help="also run the scoped mypy pass (skipped with a note if "
             "mypy is not installed)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def detect_root(start: Path | None = None) -> Path:
    """The repository root: nearest ancestor holding ``src/repro``."""
    here = start if start is not None else Path(__file__).resolve()
    for candidate in [here, *here.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


def _print_rule_table() -> None:
    print(f"{'ID':<5} {'severity':<8} {'name':<20} rationale")
    for rule in all_rules():
        print(f"{rule.id:<5} {rule.severity:<8} {rule.name:<20} {rule.rationale}")


def run_mypy(root: Path) -> tuple[int, str]:
    """The scoped mypy pass; (exit, transcript).  Exit 0 when mypy is
    absent — the container cannot install it, CI does."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return 0, "mypy not installed; scoped type pass skipped (CI runs it)"
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(root / "mypy.ini")],
        cwd=root,
        capture_output=True,
        text=True,
    )
    return proc.returncode, (proc.stdout + proc.stderr).strip()


def _report(
    new: list[Finding],
    matched: list[Finding],
    stale: list,
    suppressed: list[Finding],
    files: int,
) -> dict:
    return {
        "files": files,
        "new": [f.as_dict() for f in new],
        "baselined": [f.as_dict() for f in matched],
        "stale_baseline": [e.as_dict() for e in stale],
        "suppressed": [f.as_dict() for f in suppressed],
        "counts": {
            "new": len(new),
            "new_errors": sum(1 for f in new if f.severity == "error"),
            "baselined": len(matched),
            "stale_baseline": len(stale),
            "suppressed": len(suppressed),
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # The stdout consumer (`repro lint ... | head`) closed the pipe;
        # redirect to devnull so the interpreter's shutdown flush does
        # not traceback, and report failure per the python docs' recipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


def _run(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rule_table()
        return 0

    root = (args.root or detect_root()).resolve()
    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    targets = list(args.paths) or list(DEFAULT_TARGETS)

    rules = all_rules()
    reports = analyze_files(root, targets, rules)
    if not reports:
        print(f"repro.analysis: no python files under {targets}", file=sys.stderr)
        return 2

    findings = [f for report in reports for f in report.findings]
    suppressed = [f for report in reports for f in report.suppressed]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    try:
        entries = load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        new_entries = entries_from_findings(findings, previous=entries)
        write_baseline(baseline_path, new_entries)
        print(
            f"repro.analysis: baseline rewritten with {len(new_entries)} "
            f"entr{'y' if len(new_entries) == 1 else 'ies'} at {baseline_path}"
        )
        todo = sum(
            1 for e in new_entries
            if e.justification.startswith("TODO")
        )
        if todo:
            print(
                f"repro.analysis: {todo} entr{'y' if todo == 1 else 'ies'} "
                f"carry a TODO justification — fill them in before committing",
                file=sys.stderr,
            )
        return 0

    new, matched, stale = split_by_baseline(
        findings, entries, analyzed_paths=(r.path for r in reports)
    )

    report = _report(new, matched, stale, suppressed, files=len(reports))
    mypy_exit = 0
    if args.mypy:
        mypy_exit, mypy_out = run_mypy(root)
        report["mypy"] = {"exit": mypy_exit, "output": mypy_out}

    if args.output is not None:
        args.output.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in new:
            print(finding.render())
            if finding.snippet:
                print(f"    {finding.snippet}")
        for entry in stale:
            print(
                f"{entry.path}: stale baseline entry {entry.rule} "
                f"({entry.fingerprint}): finding no longer occurs — "
                f"remove it from the baseline"
            )
        counts = report["counts"]
        summary = (
            f"repro.analysis: {len(reports)} files, "
            f"{counts['new']} new finding(s) "
            f"({counts['new_errors']} error), "
            f"{counts['baselined']} baselined, "
            f"{counts['suppressed']} suppressed, "
            f"{counts['stale_baseline']} stale baseline entr"
            f"{'y' if counts['stale_baseline'] == 1 else 'ies'}"
        )
        print(summary)
        if args.mypy:
            print(f"repro.analysis: mypy exit {mypy_exit}")
            if report["mypy"]["output"]:
                print(report["mypy"]["output"])

    if args.strict:
        failed = bool(new) or bool(stale)
    else:
        failed = any(f.severity == "error" for f in new)
    if mypy_exit != 0:
        failed = True
    return 1 if failed else 0


# Re-exported for tests that monkeypatch module-level names.
baseline = baseline_mod
