"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  Generate a test suite for a benchmark or full array and print
              (or save as JSON) the vectors.
``table1``    Regenerate the paper's Table I rows.
``show``      Render an array (optionally with its flow paths) as ASCII.
``campaign``  Run a random fault-injection campaign against a generated
              suite and report detection rates.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import TestGenerator, measure_coverage, render_array, render_paths
from repro.fpva import TABLE1_SIZES, full_layout, table1_layout
from repro.sim import run_sweep


def _layout(args):
    if args.full:
        return full_layout(args.size, args.size)
    if args.size in TABLE1_SIZES:
        return table1_layout(args.size)
    return full_layout(args.size, args.size)


def _add_array_args(p):
    p.add_argument("--size", type=int, default=5, help="array dimension n (n x n)")
    p.add_argument(
        "--full",
        action="store_true",
        help="use a plain full array instead of the Table I layout",
    )


def cmd_generate(args) -> int:
    fpva = _layout(args)
    generated = TestGenerator(fpva, path_strategy=args.strategy).generate()
    print(generated.report.row())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(generated.testset.to_json())
        print(f"wrote {generated.testset.total} vectors to {args.out}")
    if args.coverage:
        report = measure_coverage(fpva, generated.testset.all_vectors())
        print("coverage:", report.summary())
    return 0


def cmd_table1(args) -> int:
    sizes = [args.size] if args.size else list(TABLE1_SIZES)
    for n in sizes:
        fpva = table1_layout(n)
        strategy = "direct" if n == 5 else "hierarchical"
        generated = TestGenerator(fpva, path_strategy=strategy).generate()
        print(generated.report.row())
    return 0


def cmd_show(args) -> int:
    fpva = _layout(args)
    print(fpva.describe())
    if args.paths:
        generated = TestGenerator(fpva, include_leakage=False).generate()
        print(render_paths(fpva, generated.testset.flow_paths))
    else:
        print(render_array(fpva))
    return 0


def cmd_campaign(args) -> int:
    fpva = _layout(args)
    suite = TestGenerator(fpva).generate().testset
    print(suite.summary())
    sweep = run_sweep(
        fpva,
        suite.all_vectors(),
        fault_counts=tuple(range(1, args.max_faults + 1)),
        trials=args.trials,
        seed=args.seed,
    )
    failures = 0
    for k, result in sorted(sweep.items()):
        print(
            f"  k={k}: {result.detected}/{result.trials} detected "
            f"({result.detection_rate:.2%})"
        )
        failures += result.trials - result.detected
    return 0 if failures == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FPVA test generation (Liu et al., DATE 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a full test suite")
    _add_array_args(p)
    p.add_argument("--strategy", default="auto",
                   choices=["auto", "direct", "hierarchical", "greedy"])
    p.add_argument("--out", help="write the suite as JSON to this path")
    p.add_argument("--coverage", action="store_true",
                   help="also measure observability-based fault coverage")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("table1", help="regenerate the paper's Table I")
    p.add_argument("--size", type=int, choices=TABLE1_SIZES,
                   help="only this array (default: all five)")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("show", help="render an array as ASCII")
    _add_array_args(p)
    p.add_argument("--paths", action="store_true",
                   help="also generate and render the flow paths")
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("campaign", help="random fault-injection campaign")
    _add_array_args(p)
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--max-faults", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_campaign)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
