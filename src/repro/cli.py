"""Command-line interface: ``python -m repro <command>``.

Every command builds one :class:`~repro.context.ExecutionContext` per
array — the session owning the compiled kernel, the artifact store and
the shared simulator/tester — and threads it through generation,
campaigns and diagnosis, so ``--cache-dir`` warm-starts *every*
subcommand (generation included) and nothing compiles twice.

Commands
--------
``generate``  Generate a test suite for a benchmark or full array and print
              (or save as JSON) the vectors.  ``--cache-dir`` warm-loads
              the compiled reachability kernel from the artifact store.
``table1``    Regenerate the paper's Table I rows (``--cache-dir`` warm
              starts each row's kernel).
``show``      Render an array (optionally with its flow paths) as ASCII.
``campaign``  Run a random fault-injection campaign against a generated
              suite and report detection rates.  ``--workers N`` shards the
              trials over a process pool (same results, less wall-clock);
              ``--scenario NAME`` swaps the fault workload; ``--cache-dir``
              ships the compiled kernel to workers by artifact path.
              ``--journal-dir`` reroutes the identical shard structure
              through the campaign fabric: completed shards publish
              durably, a killed run resumes from the last published shard
              (``--resume`` insists a journal exists), ``--scheduler``
              picks the shard assignment, ``--json`` saves the merged
              sweep — bit-identical to the in-memory path either way.
``diagnose``  Inject random faults and localize them with the dictionary —
              ``--adaptive`` schedules vectors one at a time by information
              gain instead of applying the whole suite; ``--cache-dir``
              warm-starts the dictionary from the artifact store.
``warm``      Prebuild the cached artifacts (compiled kernel + fault
              dictionary) for an array into ``--cache-dir``, so later
              runs skip compilation entirely; ``--table1`` prebuilds (and
              reports) the kernel artifacts for every Table I generation
              layout instead.
``store``     Artifact-store maintenance.  ``store gc`` lists (default:
              dry run) or removes dictionary artifacts that are
              superseded by a lineage descendant — every delta build
              records its parent, so ancestors a newer artifact fully
              subsumes can be reclaimed without losing any warm start;
              ``--apply`` deletes, ``--apply --quarantine`` moves the
              bytes into the store's ``quarantine/`` directory instead
              (never delete evidence).
``lint``      Run the repo's own static-analysis pass
              (:mod:`repro.analysis`): determinism, atomic-publish and
              session invariants, checked mechanically.  All flags are
              forwarded (``--strict``, ``--format json``, ...).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.context import ExecutionContext
from repro.core import TestGenerator, measure_coverage, render_array, render_paths
from repro.engine import (
    AdaptiveDiagnoser,
    get_scenario,
    run_sweep as run_sweep_sharded,
    scenario_names,
)
from repro.fpva import TABLE1_SIZES, full_layout, table1_layout
from repro.sim import ChipUnderTest


def _layout(args):
    if args.full:
        return full_layout(args.size, args.size)
    if args.size in TABLE1_SIZES:
        return table1_layout(args.size)
    return full_layout(args.size, args.size)


def _context(args, fpva=None) -> ExecutionContext:
    """The command's session: one kernel, one store, one tester."""
    return ExecutionContext(
        fpva if fpva is not None else _layout(args),
        cache_dir=getattr(args, "cache_dir", None),
        seed=getattr(args, "seed", 0),
        kernel_backend=getattr(args, "kernel_backend", None),
    )


def _add_backend_arg(p):
    from repro.sim.backends import backend_names

    p.add_argument(
        "--kernel-backend",
        choices=backend_names(),
        default=None,
        help="kernel propagation tier (default: tile, or "
        "$REPRO_KERNEL_BACKEND; unavailable tiers warn and fall back)",
    )


def _add_array_args(p):
    p.add_argument("--size", type=int, default=5, help="array dimension n (n x n)")
    p.add_argument(
        "--full",
        action="store_true",
        help="use a plain full array instead of the Table I layout",
    )


def cmd_generate(args) -> int:
    ctx = _context(args)
    generated = TestGenerator(
        ctx.fpva, path_strategy=args.strategy, context=ctx
    ).generate()
    print(generated.report.row())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(generated.testset.to_json())
        print(f"wrote {generated.testset.total} vectors to {args.out}")
    if args.coverage:
        report = measure_coverage(
            ctx.fpva, generated.testset.all_vectors(), context=ctx
        )
        print("coverage:", report.summary())
    return 0


def cmd_table1(args) -> int:
    sizes = [args.size] if args.size else list(TABLE1_SIZES)
    for n in sizes:
        fpva = table1_layout(n)
        ctx = _context(args, fpva)
        strategy = "direct" if n == 5 else "hierarchical"
        generated = TestGenerator(
            fpva, path_strategy=strategy, context=ctx
        ).generate()
        print(generated.report.row())
    return 0


def cmd_show(args) -> int:
    fpva = _layout(args)
    print(fpva.describe())
    if args.paths:
        generated = TestGenerator(fpva, include_leakage=False).generate()
        print(render_paths(fpva, generated.testset.flow_paths))
    else:
        print(render_array(fpva))
    return 0


def cmd_campaign(args) -> int:
    if args.resume and not args.journal_dir:
        print("--resume requires --journal-dir", file=sys.stderr)
        return 2
    ctx = _context(args)
    fpva = ctx.fpva
    suite = TestGenerator(fpva, context=ctx).generate().testset
    print(suite.summary())
    scenario = get_scenario(args.scenario) if args.scenario else None
    fault_counts = tuple(range(1, args.max_faults + 1))
    print(f"scenario={scenario.name if scenario else 'stuck-at'} "
          f"workers={args.workers}"
          + (f" journal={args.journal_dir}" if args.journal_dir else ""))
    if args.journal_dir:
        # The campaign fabric: shards publish durably as they complete, a
        # killed run resumes from the last published shard, and the merge
        # is bit-identical to the in-memory path below.
        from repro.fabric import CampaignSpec, run_journaled_sweep

        mode, kernel, kernel_backend = ctx.shipping_spec()
        spec = CampaignSpec(
            fpva=fpva,
            vectors=tuple(suite.all_vectors()),
            fault_counts=fault_counts,
            trials=args.trials,
            seed=args.seed,
            scenario=scenario,
        )
        extra = (
            {} if args.max_attempts is None
            else {"max_attempts": args.max_attempts}
        )
        sweep, stats = run_journaled_sweep(
            spec,
            args.journal_dir,
            workers=args.workers,
            scheduler=args.scheduler,
            resume=args.resume,
            mode=mode,
            kernel=kernel,
            kernel_backend=kernel_backend,
            **extra,
        )
        print(f"journal: {stats.summary()}")
    else:
        stats = None
        # In-memory fast case: the sharded runner's workers<=1 branch runs
        # the identical shard structure serially, so --workers only
        # changes wall-clock.
        sweep = run_sweep_sharded(
            fpva,
            suite.all_vectors(),
            fault_counts=fault_counts,
            trials=args.trials,
            seed=args.seed,
            workers=args.workers,
            scenario=scenario,
            context=ctx,
        )
    degraded = stats is not None and stats.degraded
    if args.json:
        payload = {str(k): sweep[k].as_dict() for k in sorted(sweep)}
        if degraded:
            # Only a degraded sweep grows this key, so the healthy-case
            # payload stays byte-identical to pre-supervision outputs
            # (CI diffs resumed runs against a serial reference).
            payload["quarantined"] = list(stats.quarantined)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote sweep results to {args.json}")
    failures = 0
    for k, result in sorted(sweep.items()):
        print(
            f"  k={k}: {result.detected}/{result.trials} detected "
            f"({result.detection_rate:.2%})"
        )
        failures += result.trials - result.detected
    if degraded:
        # Exit 3: the merge is *incomplete* (quarantined shards withheld
        # trials) — distinct from exit 1, where every trial ran but some
        # faults escaped detection.
        for record in stats.quarantined:
            print(
                f"  QUARANTINED k={record.get('num_faults')} "
                f"shard={record.get('shard')}: {record.get('reason')}",
                file=sys.stderr,
            )
        return 3
    return 0 if failures == 0 else 1


def _build_status(dictionary) -> str:
    """One human line on how the dictionary table was obtained."""
    stats = dictionary.build_stats
    mode = stats.get("mode")
    if mode == "warm":
        return "warm-loaded"
    if mode == "delta":
        return (
            f"delta-built from {stats['parent'][:12]} "
            f"({stats['new_vectors']} new vectors, "
            f"{stats['reused_sets']} reused sets, "
            f"{stats['promoted_sets']} promoted)"
        )
    return "cold-built"


def cmd_diagnose(args) -> int:
    if args.base_digest and not args.cache_dir:
        print("--base-digest requires --cache-dir", file=sys.stderr)
        return 2
    ctx = _context(args)
    fpva = ctx.fpva
    suite = TestGenerator(fpva, context=ctx).generate().testset
    print(suite.summary())
    scenario = get_scenario(args.scenario)
    universe = scenario.universe(fpva)
    t0 = time.perf_counter()
    dictionary = ctx.dictionary(
        suite.all_vectors(),
        universe=universe,
        max_cardinality=args.cardinality,
        base_digest=args.base_digest,
    )
    print(
        f"dictionary {_build_status(dictionary)} "
        f"in {time.perf_counter() - t0:.2f}s "
        f"({dictionary.distinct_syndromes} syndromes)"
    )
    engine = AdaptiveDiagnoser(dictionary, context=ctx) if args.adaptive else None
    rng = random.Random(args.seed)

    localized = unique = 0
    applied_total = 0
    t0 = time.perf_counter()
    for trial in range(args.trials):
        faults = scenario.sample(universe, rng, args.faults)
        chip = ChipUnderTest(fpva, faults)
        if engine is not None:
            session = engine.diagnose(chip)
            report, applied = session.report, session.num_applied
        else:
            report, applied = dictionary.diagnose_chip(chip), suite.total
        applied_total += applied
        localized += report.localized
        unique += report.is_unique
        hit = any(set(c) == set(faults) for c in report.candidates)
        print(
            f"  chip{trial}: injected {list(faults)} -> "
            f"{len(report.candidates)} candidate(s) in {applied} vectors"
            f"{' [exact]' if hit else ''}"
        )
    elapsed = time.perf_counter() - t0
    mode = "adaptive" if engine is not None else "full-suite"
    print(
        f"{mode}: {localized}/{args.trials} localized, {unique} unique, "
        f"mean {applied_total / max(args.trials, 1):.1f}/{suite.total} vectors "
        f"applied, {elapsed:.2f}s"
    )
    return 0 if localized == args.trials else 1


def _warm_kernel(ctx: ExecutionContext) -> None:
    """Warm-load or compile-and-persist one session kernel; report it."""
    t0 = time.perf_counter()
    kernel = ctx.kernel
    status = "warm" if ctx.kernel_loads else "cold"
    print(
        f"kernel  {ctx.store.kernels.path_for(ctx.fpva).name}: {kernel!r} "
        f"({status}, {time.perf_counter() - t0:.2f}s)"
    )


def cmd_warm(args) -> int:
    """Prebuild the cached artifacts for one array configuration."""
    if args.table1:
        # Generation layouts: one kernel artifact per Table I array, so
        # `generate`/`table1 --cache-dir` warm-start every row.
        for n in TABLE1_SIZES:
            ctx = _context(args, table1_layout(n))
            _warm_kernel(ctx)
        return 0

    ctx = _context(args)
    fpva = ctx.fpva
    # Kernel first, so the reported time is the actual compile/load (suite
    # generation below reuses it from the session).
    _warm_kernel(ctx)
    suite = TestGenerator(fpva, context=ctx).generate().testset
    print(suite.summary())

    scenario = get_scenario(args.scenario)
    universe = scenario.universe(fpva)
    t0 = time.perf_counter()
    dictionary = ctx.dictionary(
        suite.all_vectors(),
        universe=universe,
        max_cardinality=args.cardinality,
        base_digest=args.base_digest,
    )
    print(
        f"dictionary  {dictionary.digest}: "
        f"{dictionary.total_fault_sets} detectable fault sets, "
        f"{dictionary.distinct_syndromes} syndromes "
        f"({_build_status(dictionary)}, "
        f"{time.perf_counter() - t0:.2f}s)"
    )
    return 0


def cmd_store(args) -> int:
    """Artifact-store maintenance (currently: lineage-aware gc)."""
    if args.quarantine and not args.apply:
        print("--quarantine requires --apply", file=sys.stderr)
        return 2
    from repro.store import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    report = store.dictionaries.gc(
        apply=args.apply, quarantine_evidence=args.quarantine
    )
    for entry in report["superseded"]:
        print(
            f"  superseded {entry['digest']}: cardinality {entry['cardinality']}, "
            f"{entry['fault_sets']} fault sets, {entry['vectors']} vectors, "
            f"{entry['bytes']} bytes (subsumed by "
            f"{', '.join(entry['superseded_by'])})"
        )
    verb = {
        "dry-run": "reclaimable",
        "removed": "reclaimed",
        "quarantined": "moved to quarantine",
    }[report["action"]]
    print(
        f"{len(report['superseded'])} superseded, "
        f"{len(report['kept'])} kept; "
        f"{report['reclaimable_bytes']} bytes {verb}"
    )
    if report["action"] == "dry-run" and report["superseded"]:
        print(
            "(dry run; pass --apply to delete, or --apply --quarantine "
            "to keep the bytes as evidence)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FPVA test generation (Liu et al., DATE 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a full test suite")
    _add_array_args(p)
    p.add_argument("--strategy", default="auto",
                   choices=["auto", "direct", "hierarchical", "greedy"])
    p.add_argument("--out", help="write the suite as JSON to this path")
    p.add_argument("--coverage", action="store_true",
                   help="also measure observability-based fault coverage")
    p.add_argument("--cache-dir", default=None,
                   help="artifact store; generation warm-loads the compiled "
                        "kernel from here (see `warm --table1`)")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("table1", help="regenerate the paper's Table I")
    p.add_argument("--size", type=int, choices=TABLE1_SIZES,
                   help="only this array (default: all five)")
    p.add_argument("--cache-dir", default=None,
                   help="artifact store; each row warm-loads its compiled "
                        "kernel from here (see `warm --table1`)")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("show", help="render an array as ASCII")
    _add_array_args(p)
    p.add_argument("--paths", action="store_true",
                   help="also generate and render the flow paths")
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("campaign", help="random fault-injection campaign")
    _add_array_args(p)
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--max-faults", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size; results are worker-count independent")
    p.add_argument("--scenario", choices=scenario_names(), default=None,
                   help="fault workload (default: the paper's stuck-at space)")
    p.add_argument("--cache-dir", default=None,
                   help="artifact store; workers load the compiled kernel "
                        "from here instead of unpickling one per shard")
    p.add_argument("--journal-dir", default=None,
                   help="run through the campaign fabric: shards publish "
                        "durably here as they complete, a killed run "
                        "resumes from the last published shard, and "
                        "re-running a finished campaign simulates nothing")
    p.add_argument("--resume", action="store_true",
                   help="insist the journal already exists (guards a "
                        "mistyped --journal-dir from silently starting "
                        "a fresh campaign); requires --journal-dir")
    p.add_argument("--scheduler", choices=("greedy", "ilp"), default="greedy",
                   help="shard-to-worker assignment: greedy cost model or "
                        "ILP makespan solve over measured worker profiles "
                        "(advisory — results are identical either way)")
    p.add_argument("--max-attempts", type=int, default=None, metavar="N",
                   help="journaled runs: attempts before a repeatedly "
                        "failing shard is quarantined as poison instead of "
                        "retried (default 3); the sweep then completes "
                        "degraded with exit code 3")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the merged sweep results as JSON "
                        "(a degraded sweep adds a 'quarantined' key "
                        "listing the withheld shards)")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("diagnose", help="inject faults and localize them")
    _add_array_args(p)
    p.add_argument("--adaptive", action="store_true",
                   help="schedule vectors by information gain, one at a time")
    p.add_argument("--scenario", choices=scenario_names(), default="stuck-at")
    p.add_argument("--faults", type=int, default=1,
                   help="faults injected per chip (dictionary models singles)")
    p.add_argument("--trials", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cardinality", type=int, choices=(1, 2, 3), default=1,
                   help="max faults per dictionary entry (match the `warm` "
                        "invocation to hit its cached artifact)")
    p.add_argument("--cache-dir", default=None,
                   help="artifact store; warm-starts the fault dictionary "
                        "when a matching artifact exists, or delta-builds "
                        "from the nearest stored ancestor (see `warm`)")
    p.add_argument("--base-digest", default=None, metavar="DIGEST",
                   help="pin the incremental build to this stored ancestor "
                        "artifact instead of auto-resolving the nearest one "
                        "(still validated; falls back to a cold build when "
                        "incompatible); requires --cache-dir")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser(
        "warm", help="prebuild cached artifacts (kernel + dictionary)"
    )
    _add_array_args(p)
    p.add_argument("--cache-dir", required=True,
                   help="artifact store directory to populate")
    p.add_argument("--scenario", choices=scenario_names(), default="stuck-at",
                   help="fault universe the dictionary is built over "
                        "(must match the later `diagnose` invocation)")
    p.add_argument("--cardinality", type=int, choices=(1, 2, 3), default=1,
                   help="max faults per dictionary entry (2 streams the "
                        "quadratic double-fault universe to disk; 3 the "
                        "cubic triple-fault one — prefer promoting an "
                        "existing cardinality-2 artifact incrementally)")
    p.add_argument("--base-digest", default=None, metavar="DIGEST",
                   help="pin the incremental dictionary build to this "
                        "stored ancestor artifact instead of auto-resolving "
                        "the nearest one (still validated; falls back to a "
                        "cold build when incompatible)")
    p.add_argument("--table1", action="store_true",
                   help="instead: prebuild/report the kernel artifacts for "
                        "every Table I generation layout")
    _add_backend_arg(p)
    p.set_defaults(func=cmd_warm)

    p = sub.add_parser("store", help="artifact-store maintenance")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    g = store_sub.add_parser(
        "gc",
        help="collect dictionary artifacts superseded by lineage "
             "descendants (dry run by default)",
    )
    g.add_argument("--cache-dir", required=True,
                   help="artifact store directory to collect in")
    g.add_argument("--apply", action="store_true",
                   help="actually remove the superseded artifacts "
                        "(default: dry-run report only)")
    g.add_argument("--quarantine", action="store_true",
                   help="with --apply: move superseded artifacts into the "
                        "store's quarantine/ directory instead of deleting "
                        "them (never delete evidence)")
    g.set_defaults(func=cmd_store)

    p = sub.add_parser(
        "lint",
        help="static analysis of the repo's own invariant conventions",
        add_help=False,  # every flag (including -h) belongs to repro.analysis
    )
    p.set_defaults(func=cmd_lint)
    return parser


def cmd_lint(args) -> int:
    from repro.analysis.cli import main as analysis_main

    return analysis_main(args.rest)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args, rest = parser.parse_known_args(argv)
    if args.func is not cmd_lint and rest:
        # Everything except `lint` keeps strict argparse behaviour.
        parser.parse_args(argv)
    args.rest = rest
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
