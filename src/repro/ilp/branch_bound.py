"""A self-contained branch-and-bound MILP solver.

Solves mixed-integer linear programs by LP-relaxation branch-and-bound:

* LP relaxations are solved with :func:`scipy.optimize.linprog` (HiGHS LP);
* branching picks the integer variable whose fractional part is closest to
  one half (most-fractional rule);
* the node queue is explored depth-first (children of the most recent node
  first) with best-bound pruning against the incumbent;
* a rounding heuristic attempts to turn each LP solution into an incumbent
  early.

This backend exists for two reasons: it removes the dependency on any
particular MILP library (the paper used a commercial solver we do not have),
and it serves as a differential-testing oracle for the HiGHS backend — both
are exact, so they must agree on optimal objective values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.ilp.model import Model
from repro.ilp.status import Solution, SolveStatus

_INT_TOL = 1e-6
_OBJ_TOL = 1e-9


@dataclass
class _Node:
    """A branch-and-bound node: variable bound overrides + parent LP bound."""

    lb: np.ndarray
    ub: np.ndarray
    bound: float  # LP objective of the parent (a valid lower bound)
    depth: int


class _LPRelaxation:
    """LP relaxation machinery shared across nodes."""

    def __init__(self, model: Model):
        form = model.to_standard_form()
        self.c = form.c
        self.sign = form.sign
        self.objective_constant = form.objective_constant
        self.integrality = form.integrality.astype(bool)
        self.base_lb = form.var_lb
        self.base_ub = form.var_ub
        # Split two-sided linear constraints into A_ub / A_eq blocks once.
        eq_mask = np.isfinite(form.con_lb) & (form.con_lb == form.con_ub)
        A = form.A
        self.A_eq = A[eq_mask] if eq_mask.any() else None
        self.b_eq = form.con_ub[eq_mask] if eq_mask.any() else None
        ub_rows = []
        ub_rhs = []
        ineq = ~eq_mask
        if ineq.any():
            A_ineq = A[ineq]
            lo = form.con_lb[ineq]
            hi = form.con_ub[ineq]
            finite_hi = np.isfinite(hi)
            if finite_hi.any():
                ub_rows.append(A_ineq[finite_hi])
                ub_rhs.append(hi[finite_hi])
            finite_lo = np.isfinite(lo)
            if finite_lo.any():
                ub_rows.append(-A_ineq[finite_lo])
                ub_rhs.append(-lo[finite_lo])
        if ub_rows:
            from scipy import sparse

            self.A_ub = sparse.vstack(ub_rows, format="csr")
            self.b_ub = np.concatenate(ub_rhs)
        else:
            self.A_ub = None
            self.b_ub = None

    def solve(self, lb: np.ndarray, ub: np.ndarray):
        """Solve the LP with the given bound overrides.

        Returns ``(status, objective, x)`` where status is one of
        ``"optimal" | "infeasible" | "unbounded" | "error"``.
        """
        res = linprog(
            self.c,
            A_ub=self.A_ub,
            b_ub=self.b_ub,
            A_eq=self.A_eq,
            b_eq=self.b_eq,
            bounds=np.column_stack([lb, ub]),
            method="highs",
        )
        if res.status == 0:
            return "optimal", float(res.fun), np.asarray(res.x)
        if res.status == 2:
            return "infeasible", None, None
        if res.status == 3:
            return "unbounded", None, None
        return "error", None, None


def solve_with_branch_and_bound(
    model: Model,
    time_limit: float | None = None,
    node_limit: int = 200_000,
) -> Solution:
    """Solve ``model`` by branch and bound.  Exact (up to tolerances)."""
    start = time.perf_counter()
    relax = _LPRelaxation(model)
    n = model.num_variables

    def out_of_time() -> bool:
        return time_limit is not None and time.perf_counter() - start > time_limit

    incumbent_x: np.ndarray | None = None
    incumbent_obj = np.inf  # minimizing convention

    def try_incumbent(x: np.ndarray) -> None:
        """Round integral vars and accept if feasible and improving."""
        nonlocal incumbent_x, incumbent_obj
        cand = x.copy()
        cand[relax.integrality] = np.round(cand[relax.integrality])
        obj = float(relax.c @ cand)
        if obj >= incumbent_obj - _OBJ_TOL:
            return
        values = {var: float(cand[var.index]) for var in model.variables}
        if model.is_feasible_point(values, tol=1e-6):
            incumbent_x = cand
            incumbent_obj = obj

    stack: list[_Node] = [
        _Node(relax.base_lb.copy(), relax.base_ub.copy(), -np.inf, 0)
    ]
    nodes = 0
    root_unbounded = False
    any_lp_solved = False

    while stack:
        if nodes >= node_limit or out_of_time():
            break
        node = stack.pop()
        if node.bound >= incumbent_obj - _OBJ_TOL:
            continue  # pruned by bound
        nodes += 1

        status, obj, x = relax.solve(node.lb, node.ub)
        if status == "infeasible":
            continue
        if status == "unbounded":
            if node.depth == 0:
                root_unbounded = True
                break
            continue
        if status != "optimal":
            continue
        any_lp_solved = True
        if obj >= incumbent_obj - _OBJ_TOL:
            continue  # cannot improve

        frac = np.abs(x - np.round(x))
        frac[~relax.integrality] = 0.0
        if frac.max(initial=0.0) <= _INT_TOL:
            # Integral LP optimum: new incumbent.
            try_incumbent(x)
            continue

        try_incumbent(x)  # rounding heuristic

        # Branch on the most fractional integer variable.
        j = int(np.argmax(frac))
        xv = x[j]
        lo_lb, lo_ub = node.lb.copy(), node.ub.copy()
        hi_lb, hi_ub = node.lb.copy(), node.ub.copy()
        lo_ub[j] = np.floor(xv)
        hi_lb[j] = np.ceil(xv)
        # Push the branch nearer the LP value last so it is explored first.
        if xv - np.floor(xv) <= 0.5:
            stack.append(_Node(hi_lb, hi_ub, obj, node.depth + 1))
            stack.append(_Node(lo_lb, lo_ub, obj, node.depth + 1))
        else:
            stack.append(_Node(lo_lb, lo_ub, obj, node.depth + 1))
            stack.append(_Node(hi_lb, hi_ub, obj, node.depth + 1))

    elapsed = time.perf_counter() - start
    exhausted = not stack and not root_unbounded

    if root_unbounded:
        return Solution(
            status=SolveStatus.UNBOUNDED,
            backend="branch-and-bound",
            nodes=nodes,
            wall_time=elapsed,
        )

    if incumbent_x is not None:
        values = {var: float(incumbent_x[var.index]) for var in model.variables}
        for var in model.variables:
            if var.is_integral:
                values[var] = float(round(values[var]))
        objective = relax.sign * incumbent_obj + relax.objective_constant
        status = SolveStatus.OPTIMAL if exhausted else SolveStatus.FEASIBLE
        return Solution(
            status=status,
            objective=objective,
            values=values,
            backend="branch-and-bound",
            nodes=nodes,
            wall_time=elapsed,
        )

    if exhausted and not any_lp_solved:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            backend="branch-and-bound",
            nodes=nodes,
            wall_time=elapsed,
        )
    if exhausted:
        # LPs solved but no integral point exists in any leaf.
        return Solution(
            status=SolveStatus.INFEASIBLE,
            backend="branch-and-bound",
            nodes=nodes,
            wall_time=elapsed,
        )
    return Solution(
        status=SolveStatus.TIME_LIMIT,
        backend="branch-and-bound",
        nodes=nodes,
        wall_time=elapsed,
        message="node or time limit reached without incumbent",
    )
