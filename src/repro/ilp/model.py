"""A small MILP modeling language.

Provides :class:`Var`, :class:`LinExpr`, :class:`Constraint` and
:class:`Model`.  Expressions are built with ordinary Python arithmetic::

    m = Model()
    x = m.binary_var("x")
    y = m.integer_var("y", lb=0, ub=10)
    m.add_constraint(2 * x + y <= 7, name="cap")
    m.minimize(-x - y)

The model can be exported to matrix form for solver backends via
:meth:`Model.to_standard_form`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

BINARY = "binary"
INTEGER = "integer"
CONTINUOUS = "continuous"

_VTYPES = (BINARY, INTEGER, CONTINUOUS)

LE = "<="
GE = ">="
EQ = "=="

_SENSES = (LE, GE, EQ)


class ModelError(ValueError):
    """Raised for malformed models, expressions or constraints."""


class Var:
    """A decision variable.

    Variables are created through :class:`Model` factory methods and are tied
    to their model by index.  They support arithmetic, producing
    :class:`LinExpr` objects, and comparisons, producing :class:`Constraint`
    objects.
    """

    __slots__ = ("name", "index", "lb", "ub", "vtype")

    def __init__(self, name: str, index: int, lb: float, ub: float, vtype: str):
        if vtype not in _VTYPES:
            raise ModelError(f"unknown variable type {vtype!r}")
        if lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        self.name = name
        self.index = index
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype

    @property
    def is_integral(self) -> bool:
        return self.vtype in (BINARY, INTEGER)

    def to_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, other):
        return self.to_expr() * other

    __rmul__ = __mul__

    def __neg__(self):
        return self.to_expr() * -1.0

    # -- comparisons -> constraints --------------------------------------
    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self.to_expr() == other

    def __hash__(self):  # identity hash; Vars are unique per model slot
        return id(self)

    def __repr__(self):
        return f"Var({self.name!r})"


class LinExpr:
    """A linear expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Var, float] | None = None, constant: float = 0.0):
        self.terms: dict[Var, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    def add_term(self, var: Var, coef: float) -> "LinExpr":
        """In-place accumulate ``coef * var``; returns self for chaining."""
        new = self.terms.get(var, 0.0) + coef
        if new == 0.0:
            self.terms.pop(var, None)
        else:
            self.terms[var] = new
        return self

    # -- arithmetic ------------------------------------------------------
    def _coerce(self, other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return other.to_expr()
        if isinstance(other, (int, float, np.integer, np.floating)):
            return LinExpr(constant=float(other))
        raise ModelError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other):
        other = self._coerce(other)
        out = self.copy()
        for var, coef in other.terms.items():
            out.add_term(var, coef)
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other):
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float, np.integer, np.floating)):
            raise ModelError("LinExpr may only be multiplied by a scalar")
        scalar = float(scalar)
        return LinExpr(
            {v: c * scalar for v, c in self.terms.items() if c * scalar != 0.0},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- comparisons -> constraints --------------------------------------
    def __le__(self, other):
        return Constraint(self - self._coerce(other), LE)

    def __ge__(self, other):
        return Constraint(self - self._coerce(other), GE)

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - self._coerce(other), EQ)

    def __hash__(self):
        return id(self)

    def evaluate(self, values: Mapping[Var, float]) -> float:
        """Evaluate the expression under an assignment of variable values."""
        return self.constant + sum(c * values[v] for v, c in self.terms.items())

    def __repr__(self):
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` (rhs folded into the expr).

    Stored internally as ``lhs sense 0`` where ``lhs`` carries the constant,
    i.e. ``x + 2 <= 5`` becomes ``x - 3 <= 0``.
    """

    lhs: LinExpr
    sense: str
    name: str = ""

    def __post_init__(self):
        if self.sense not in _SENSES:
            raise ModelError(f"unknown constraint sense {self.sense!r}")

    @property
    def rhs(self) -> float:
        """Right-hand side with variable terms on the left."""
        return -self.lhs.constant

    def satisfied_by(self, values: Mapping[Var, float], tol: float = 1e-6) -> bool:
        lhs = self.lhs.evaluate(values)
        if self.sense == LE:
            return lhs <= tol
        if self.sense == GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint({self.lhs!r} {self.sense} 0{label})"


@dataclass
class StandardForm:
    """Matrix form of a model for solver backends.

    minimize ``c @ x`` subject to ``con_lb <= A @ x <= con_ub`` and
    ``var_lb <= x <= var_ub``; ``integrality[i]`` is 1 for integer variables,
    0 for continuous ones (the encoding :func:`scipy.optimize.milp` expects).
    ``sign`` is +1 if the original objective was a minimization, -1 if it was
    a maximization (the true objective is ``sign * c @ x`` evaluated with the
    minimizing convention).
    """

    c: np.ndarray
    A: sparse.csr_matrix
    con_lb: np.ndarray
    con_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    integrality: np.ndarray
    sign: float
    objective_constant: float


class Model:
    """A mixed-integer linear program."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: str = "min"
        self._name_counter = itertools.count()

    # -- variables --------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = float("inf"),
        vtype: str = CONTINUOUS,
    ) -> Var:
        if not name:
            name = f"v{next(self._name_counter)}"
        var = Var(name, len(self.variables), lb, ub, vtype)
        self.variables.append(var)
        return var

    def binary_var(self, name: str = "") -> Var:
        return self.add_var(name, lb=0.0, ub=1.0, vtype=BINARY)

    def integer_var(
        self, name: str = "", lb: float = 0.0, ub: float = float("inf")
    ) -> Var:
        return self.add_var(name, lb=lb, ub=ub, vtype=INTEGER)

    def continuous_var(
        self, name: str = "", lb: float = 0.0, ub: float = float("inf")
    ) -> Var:
        return self.add_var(name, lb=lb, ub=ub, vtype=CONTINUOUS)

    def expr(self, constant: float = 0.0) -> LinExpr:
        """An empty expression, handy as ``sum(..., start=m.expr())``."""
        return LinExpr(constant=constant)

    @staticmethod
    def total(items: Iterable[Var | LinExpr]) -> LinExpr:
        """Sum of variables/expressions as a LinExpr (avoids int + Var issues)."""
        out = LinExpr()
        for item in items:
            if isinstance(item, Var):
                out.add_term(item, 1.0)
            else:
                for var, coef in item.terms.items():
                    out.add_term(var, coef)
                out.constant += item.constant
        return out

    # -- constraints & objective ------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (did the comparison "
                "collapse to bool?)"
            )
        for var in constraint.lhs.terms:
            if not (0 <= var.index < len(self.variables)) or self.variables[var.index] is not var:
                raise ModelError(f"variable {var.name!r} does not belong to this model")
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: LinExpr | Var) -> None:
        self.objective = expr.to_expr() if isinstance(expr, Var) else expr
        self.sense = "min"

    def maximize(self, expr: LinExpr | Var) -> None:
        self.objective = expr.to_expr() if isinstance(expr, Var) else expr
        self.sense = "max"

    # -- introspection ------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def is_feasible_point(self, values: Mapping[Var, float], tol: float = 1e-6) -> bool:
        """True if ``values`` satisfies all bounds, integrality and constraints."""
        for var in self.variables:
            val = values[var]
            if val < var.lb - tol or val > var.ub + tol:
                return False
            if var.is_integral and abs(val - round(val)) > tol:
                return False
        return all(c.satisfied_by(values, tol) for c in self.constraints)

    # -- export -------------------------------------------------------------
    def to_standard_form(self) -> StandardForm:
        n = len(self.variables)
        sign = 1.0 if self.sense == "min" else -1.0

        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] = sign * coef

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        con_lb = np.empty(len(self.constraints))
        con_ub = np.empty(len(self.constraints))
        for i, con in enumerate(self.constraints):
            for var, coef in con.lhs.terms.items():
                rows.append(i)
                cols.append(var.index)
                data.append(coef)
            rhs = con.rhs
            if con.sense == LE:
                con_lb[i], con_ub[i] = -np.inf, rhs
            elif con.sense == GE:
                con_lb[i], con_ub[i] = rhs, np.inf
            else:
                con_lb[i] = con_ub[i] = rhs

        A = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self.constraints), n)
        )
        var_lb = np.array([v.lb for v in self.variables])
        var_ub = np.array([v.ub for v in self.variables])
        integrality = np.array(
            [1 if v.is_integral else 0 for v in self.variables], dtype=int
        )
        return StandardForm(
            c=c,
            A=A,
            con_lb=con_lb,
            con_ub=con_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            integrality=integrality,
            sign=sign,
            objective_constant=self.objective.constant,
        )

    def __repr__(self):
        return (
            f"Model({self.name!r}, {self.num_variables} vars, "
            f"{self.num_constraints} cons, {self.sense})"
        )
