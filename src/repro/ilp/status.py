"""Solver status codes and solution objects shared by all backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.ilp.model import Model, Var


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"  # limit hit with no incumbent
    ERROR = "error"


@dataclass
class Solution:
    """Result of solving a :class:`~repro.ilp.model.Model`.

    ``values`` maps every model variable to its value when a feasible point
    was found (status OPTIMAL or FEASIBLE); it is empty otherwise.
    """

    status: SolveStatus
    objective: float | None = None
    values: Mapping[Var, float] = field(default_factory=dict)
    backend: str = ""
    nodes: int = 0
    wall_time: float = 0.0
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, var: Var) -> float:
        """Value of ``var`` in the solution."""
        return self.values[var]

    def int_value(self, var: Var) -> int:
        """Value of ``var`` rounded to the nearest integer."""
        return int(round(self.values[var]))

    def check(self, model: Model, tol: float = 1e-5) -> bool:
        """Independently verify feasibility of the solution against ``model``."""
        if not self.has_solution:
            return False
        return model.is_feasible_point(self.values, tol)
