"""Integer linear programming substrate.

The paper solves its flow-path and cut-set formulations with a commercial ILP
solver from C++.  This subpackage provides the equivalent substrate in pure
Python: a small modeling language (:mod:`repro.ilp.model`), an exact MILP
backend built on HiGHS via :func:`scipy.optimize.milp`
(:mod:`repro.ilp.scipy_backend`), and a self-contained branch-and-bound solver
over LP relaxations (:mod:`repro.ilp.branch_bound`) used both as a fallback
and as a differential-testing oracle.

Typical use::

    from repro.ilp import Model, solve

    m = Model("cover")
    x = [m.binary_var(f"x{i}") for i in range(4)]
    m.add_constraint(x[0] + x[1] >= 1)
    m.add_constraint(x[2] + x[3] >= 1)
    m.minimize(sum(x, start=m.expr()))
    sol = solve(m)
    assert sol.is_optimal and sol.objective == 2
"""

from repro.ilp.model import (
    BINARY,
    CONTINUOUS,
    INTEGER,
    Constraint,
    LinExpr,
    Model,
    Var,
)
from repro.ilp.solver import SolveOptions, solve
from repro.ilp.status import Solution, SolveStatus

__all__ = [
    "BINARY",
    "CONTINUOUS",
    "INTEGER",
    "Constraint",
    "LinExpr",
    "Model",
    "Var",
    "SolveOptions",
    "Solution",
    "SolveStatus",
    "solve",
]
