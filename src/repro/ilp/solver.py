"""Unified solve() front end with backend selection."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ilp.model import Model
from repro.ilp.status import Solution

BACKEND_AUTO = "auto"
BACKEND_HIGHS = "highs"
BACKEND_BRANCH_AND_BOUND = "branch-and-bound"

_BACKENDS = (BACKEND_AUTO, BACKEND_HIGHS, BACKEND_BRANCH_AND_BOUND)


@dataclass
class SolveOptions:
    """Options shared by all backends.

    ``backend`` selects the solver: ``"auto"`` prefers HiGHS
    (:func:`scipy.optimize.milp`) and falls back to the built-in
    branch-and-bound if scipy's MILP interface is unavailable.
    """

    backend: str = BACKEND_AUTO
    time_limit: float | None = None
    mip_rel_gap: float | None = None
    node_limit: int = 200_000

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )


def _highs_available() -> bool:
    try:
        from scipy.optimize import milp  # noqa: F401
    except ImportError:  # pragma: no cover - environment dependent
        return False
    return True


def solve(model: Model, options: SolveOptions | None = None) -> Solution:
    """Solve ``model`` and return a :class:`Solution`."""
    options = options or SolveOptions()
    backend = options.backend
    if backend == BACKEND_AUTO:
        backend = (
            BACKEND_HIGHS if _highs_available() else BACKEND_BRANCH_AND_BOUND
        )

    if backend == BACKEND_HIGHS:
        from repro.ilp.scipy_backend import solve_with_scipy

        return solve_with_scipy(
            model,
            time_limit=options.time_limit,
            mip_rel_gap=options.mip_rel_gap,
        )

    from repro.ilp.branch_bound import solve_with_branch_and_bound

    return solve_with_branch_and_bound(
        model,
        time_limit=options.time_limit,
        node_limit=options.node_limit,
    )
