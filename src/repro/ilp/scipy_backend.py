"""Exact MILP backend built on HiGHS via :func:`scipy.optimize.milp`."""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.model import Model
from repro.ilp.status import Solution, SolveStatus

# scipy.optimize.milp status codes (see its docstring).
_MILP_OPTIMAL = 0
_MILP_INFEASIBLE = 2
_MILP_UNBOUNDED = 3
_MILP_LIMIT = 1  # iteration/time limit


def solve_with_scipy(
    model: Model,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> Solution:
    """Solve ``model`` with HiGHS.  Returns a :class:`Solution`."""
    start = time.perf_counter()
    form = model.to_standard_form()

    options: dict = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)

    kwargs: dict = {
        "c": form.c,
        "integrality": form.integrality,
        "bounds": Bounds(form.var_lb, form.var_ub),
        "options": options,
    }
    if model.num_constraints:
        kwargs["constraints"] = LinearConstraint(form.A, form.con_lb, form.con_ub)

    res = milp(**kwargs)
    elapsed = time.perf_counter() - start

    if res.status == _MILP_OPTIMAL:
        status = SolveStatus.OPTIMAL
    elif res.status == _MILP_INFEASIBLE:
        status = SolveStatus.INFEASIBLE
    elif res.status == _MILP_UNBOUNDED:
        status = SolveStatus.UNBOUNDED
    elif res.x is not None:
        status = SolveStatus.FEASIBLE
    else:
        status = SolveStatus.TIME_LIMIT

    values: dict = {}
    objective = None
    if res.x is not None:
        x = np.asarray(res.x, dtype=float)
        # Snap integral variables: HiGHS returns values within tolerance.
        for var in model.variables:
            val = x[var.index]
            if var.is_integral:
                val = float(round(val))
            values[var] = val
        objective = form.sign * float(form.c @ x) + form.objective_constant

    return Solution(
        status=status,
        objective=objective,
        values=values,
        backend="scipy-highs",
        wall_time=elapsed,
        message=str(getattr(res, "message", "")),
    )
