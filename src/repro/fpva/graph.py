"""Graph views of an FPVA.

Two graphs drive everything in this reproduction:

* the **cell graph** — fluid cells plus port nodes; edges are valves,
  permanent channels and port openings.  Flow paths (and the pressure
  simulator) live here.
* the **junction (dual) graph** — valve-corner lattice points; each valve
  corresponds to one dual edge.  Cut-set *walls* are paths here
  (section III-C).  Dual edges across obstacle walls are free (weight 0,
  permanently sealed); dual edges across channels do not exist (a channel
  can never be closed, so no wall can cross it).

The sealed chip perimeter is split by the port gaps into **boundary arcs**
(Fig 7(d)): walking from the source gap in both directions until a sink gap
is reached yields the two junction sets a wall must connect to separate all
sources from all sinks.
"""

from __future__ import annotations

from typing import NamedTuple

import networkx as nx

from repro.fpva.array import FPVA
from repro.fpva.components import EdgeKind
from repro.fpva.geometry import (
    Cell,
    Edge,
    Junction,
    iter_interior_edges,
    perimeter_junction_cycle,
)
from repro.fpva.ports import Port


class UnsupportedTopologyError(ValueError):
    """Port arrangement outside the supported boundary-arc scheme."""


def cell_graph(fpva: FPVA) -> nx.Graph:
    """The cell graph: nodes are :class:`Cell` objects and :class:`Port`\\ s.

    Edge attributes: ``kind`` (:class:`EdgeKind`) and ``edge`` (the
    :class:`Edge`, for VALVE/CHANNEL edges) or ``port`` (for PORT edges).
    """
    g = nx.Graph()
    g.add_nodes_from(fpva.cells())
    for edge in fpva.flow_edges:
        kind = EdgeKind.CHANNEL if edge in fpva.channels else EdgeKind.VALVE
        g.add_edge(edge.a, edge.b, kind=kind, edge=edge)
    for port in fpva.ports:
        g.add_node(port)
        g.add_edge(port, fpva.port_cell(port), kind=EdgeKind.PORT, port=port)
    return g


class DualEdgeKind(NamedTuple):
    """Attributes of a dual (junction-graph) edge."""

    closable: bool  # True if closing is controllable (a real valve)
    valve: Edge | None  # the valve this dual edge crosses, if any


def junction_graph(fpva: FPVA) -> nx.Graph:
    """The dual lattice used for cut-set walls.

    Edge attributes: ``valve`` (the :class:`Edge` crossed, or None for
    permanently sealed segments along obstacles) and ``weight`` (1 for valve
    segments, 0 for free segments).  Channel segments are omitted entirely —
    a wall cannot cross an always-open channel.
    """
    g = nx.Graph()
    nr, nc = fpva.nr, fpva.nc
    for edge in iter_interior_edges(nr, nc):
        u, w = edge.dual()
        a_fluid = fpva.is_cell(edge.a)
        b_fluid = fpva.is_cell(edge.b)
        if a_fluid and b_fluid:
            if edge in fpva.channels:
                continue  # channels can never be closed: no wall may cross
            g.add_edge(u, w, valve=edge, weight=1)
        else:
            # At least one side is an obstacle: permanently sealed segment.
            g.add_edge(u, w, valve=None, weight=0)
    return g


class BoundaryArcs(NamedTuple):
    """The two boundary-junction arcs of Fig 7(d).

    ``start_arc`` is reached walking clockwise from the source gap,
    ``end_arc`` counter-clockwise; both walks stop at the first sink gap.
    A wall (cut-set) must run from a junction in one arc to a junction in
    the other.
    """

    start_arc: tuple[Junction, ...]
    end_arc: tuple[Junction, ...]


def _gap_indices(
    cycle: list[Junction], gap: tuple[Junction, Junction]
) -> tuple[int, int]:
    """Positions of a gap's junctions as consecutive indices in the cycle."""
    n = len(cycle)
    pos = {j: i for i, j in enumerate(cycle)}
    i, k = pos[gap[0]], pos[gap[1]]
    if (i + 1) % n == k:
        return i, k
    if (k + 1) % n == i:
        return k, i
    raise ValueError(f"gap {gap} is not a perimeter segment")


def boundary_arcs(fpva: FPVA) -> BoundaryArcs:
    """Split the sealed perimeter into the two arcs of Fig 7(d).

    Supported topology: all source gaps contiguous along the boundary (no
    sink gap interleaved between sources).  Raises
    :class:`UnsupportedTopologyError` otherwise.
    """
    cycle = perimeter_junction_cycle(fpva.nr, fpva.nc)
    n = len(cycle)

    sink_gap_members: set[Junction] = set()
    for port in fpva.sinks:
        sink_gap_members.update(port.gap(fpva.nr, fpva.nc))
    source_gaps = [p.gap(fpva.nr, fpva.nc) for p in fpva.sources]
    source_gap_members = {j for gap in source_gaps for j in gap}
    if sink_gap_members & source_gap_members:
        raise UnsupportedTopologyError(
            "a source and a sink share a perimeter junction; move the ports apart"
        )

    # Walk clockwise from the source gap's clockwise end.
    first_gap = source_gaps[0]
    lo, hi = _gap_indices(cycle, first_gap)

    def walk(start: int, step: int) -> tuple[Junction, ...]:
        arc: list[Junction] = []
        idx = start
        first = True
        for _ in range(n):
            j = cycle[idx]
            if j in source_gap_members and not first:
                # Another source gap: skip past it (sources must be
                # contiguous for the two-arc scheme to separate them all).
                idx = (idx + step) % n
                continue
            # The walk's very first junction is this gap's own endpoint on
            # our side; it belongs to the arc (a wall may terminate right
            # at the edge of the port opening).
            first = False
            arc.append(j)
            if j in sink_gap_members:
                return tuple(arc)
            idx = (idx + step) % n
        raise UnsupportedTopologyError("no sink gap found walking the perimeter")

    start_arc = walk(hi, +1)
    end_arc = walk(lo, -1)

    # The two arcs must not overlap except possibly at a shared terminal
    # when there is a single sink adjacent to the source.
    overlap = set(start_arc) & set(end_arc)
    if overlap and len(fpva.sinks) == 1 and len(overlap) < min(len(start_arc), len(end_arc)):
        pass  # tiny chips: arcs may meet at the single sink gap's ends
    return BoundaryArcs(start_arc=start_arc, end_arc=end_arc)


def port_node(port: Port) -> Port:
    """The cell-graph node representing a port (identity, for readability)."""
    return port
