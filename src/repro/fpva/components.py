"""Component-level vocabulary: valve states and edge kinds."""

from __future__ import annotations

import enum


class ValveState(enum.Enum):
    """Commanded state of a valve (control line actuated or released)."""

    OPEN = "open"
    CLOSED = "closed"

    def flipped(self) -> "ValveState":
        return ValveState.CLOSED if self is ValveState.OPEN else ValveState.OPEN


class EdgeKind(enum.Enum):
    """What occupies a flow-edge position in the array."""

    VALVE = "valve"  # a real, controllable, testable valve
    CHANNEL = "channel"  # transport channel: always open, no valve built
    PORT = "port"  # breach in the sealed boundary for a source/sink


class FaultClass(enum.Enum):
    """Component-level fault classes from section II of the paper.

    ``STUCK_AT_0``: the valve can never open (a break in the flow channel is
    equivalent to the valve at the channel entrance never opening).
    ``STUCK_AT_1``: the valve can never close (a leaking flow channel, or a
    break in the control channel so actuation pressure never arrives).
    ``CONTROL_LEAK``: two control channels share pressure, so actuating one
    valve also closes the other.
    """

    STUCK_AT_0 = "stuck-at-0"
    STUCK_AT_1 = "stuck-at-1"
    CONTROL_LEAK = "control-leak"
