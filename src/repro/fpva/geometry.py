"""Lattice geometry of an FPVA.

The chip is modeled as the interleaved lattice the paper's constraint (1)
implies:

* **Cells** — fluid chambers at integer coordinates ``(r, c)`` with
  ``1 <= r <= n_r`` and ``1 <= c <= n_c`` (the paper's row/column indexing).
  Cell ``(r, c)`` occupies the unit square ``[r-1, r] x [c-1, c]``.
* **Valves** — one per edge between orthogonally adjacent cells.  A valve is
  identified by the (normalized) pair of cells it separates.
* **Junctions** — the corner points ``(r, c)`` with ``0 <= r <= n_r`` and
  ``0 <= c <= n_c``.  Junctions form the planar dual lattice: each valve
  corresponds to exactly one *dual edge* between the two junctions at the
  ends of the wall segment it sits on.  Cut-sets are paths in this dual
  lattice (section III-C of the paper).

The chip boundary (the perimeter of the ``n_r x n_c`` cell block) is sealed
except where ports breach it; the breached perimeter segments are *gaps*
identified by the junction pair at their ends.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple


class Cell(NamedTuple):
    """A fluid cell at 1-based ``(row, col)``."""

    r: int
    c: int

    def __repr__(self):
        return f"Cell({self.r},{self.c})"


class Junction(NamedTuple):
    """A valve-corner lattice point at 0-based ``(row, col)``."""

    r: int
    c: int

    def __repr__(self):
        return f"J({self.r},{self.c})"


class Side(enum.Enum):
    """A side of the chip."""

    NORTH = "north"
    EAST = "east"
    SOUTH = "south"
    WEST = "west"


class Orientation(enum.Enum):
    """Orientation of an edge (the direction fluid flows through it)."""

    HORIZONTAL = "horizontal"  # connects cells in the same row
    VERTICAL = "vertical"  # connects cells in the same column


class Edge(NamedTuple):
    """An undirected flow edge between two adjacent cells (normalized a < b).

    Use :func:`edge_between` to construct; it normalizes the endpoint order
    so edges compare and hash consistently.
    """

    a: Cell
    b: Cell

    @property
    def orientation(self) -> Orientation:
        if self.a.r == self.b.r:
            return Orientation.HORIZONTAL
        return Orientation.VERTICAL

    @property
    def cells(self) -> tuple[Cell, Cell]:
        return (self.a, self.b)

    def other(self, cell: Cell) -> Cell:
        if cell == self.a:
            return self.b
        if cell == self.b:
            return self.a
        raise ValueError(f"{cell} is not an endpoint of {self}")

    def dual(self) -> tuple[Junction, Junction]:
        """The junction pair at the ends of this edge's wall segment.

        A horizontal edge between cells ``(r, c)`` and ``(r, c+1)`` crosses
        the vertical wall segment from junction ``(r-1, c)`` to ``(r, c)``.
        A vertical edge between ``(r, c)`` and ``(r+1, c)`` crosses the
        horizontal segment from junction ``(r, c-1)`` to ``(r, c)``.
        """
        if self.orientation is Orientation.HORIZONTAL:
            r, c = self.a.r, self.a.c
            return (Junction(r - 1, c), Junction(r, c))
        r, c = self.a.r, self.a.c
        return (Junction(r, c - 1), Junction(r, c))

    def __repr__(self):
        return f"Edge[{self.a.r},{self.a.c}|{self.b.r},{self.b.c}]"


def edge_between(c1: Cell, c2: Cell) -> Edge:
    """The normalized edge between two orthogonally adjacent cells."""
    if not cells_adjacent(c1, c2):
        raise ValueError(f"cells {c1} and {c2} are not orthogonally adjacent")
    return Edge(min(c1, c2), max(c1, c2))


def cells_adjacent(c1: Cell, c2: Cell) -> bool:
    """True if the two cells share a wall segment."""
    return abs(c1.r - c2.r) + abs(c1.c - c2.c) == 1


def neighbors4(cell: Cell) -> tuple[Cell, Cell, Cell, Cell]:
    """The four orthogonal neighbour coordinates (may be out of bounds)."""
    r, c = cell
    return (Cell(r - 1, c), Cell(r + 1, c), Cell(r, c - 1), Cell(r, c + 1))


def in_bounds(cell: Cell, nr: int, nc: int) -> bool:
    return 1 <= cell.r <= nr and 1 <= cell.c <= nc


def iter_cells(nr: int, nc: int) -> Iterator[Cell]:
    for r in range(1, nr + 1):
        for c in range(1, nc + 1):
            yield Cell(r, c)


def iter_interior_edges(nr: int, nc: int) -> Iterator[Edge]:
    """All edges of the full ``nr x nc`` cell grid (``2*nr*nc - nr - nc``)."""
    for r in range(1, nr + 1):
        for c in range(1, nc + 1):
            if c < nc:
                yield Edge(Cell(r, c), Cell(r, c + 1))
            if r < nr:
                yield Edge(Cell(r, c), Cell(r + 1, c))


def junctions_of_cell(cell: Cell) -> tuple[Junction, ...]:
    """The four corner junctions of a cell."""
    r, c = cell
    return (
        Junction(r - 1, c - 1),
        Junction(r - 1, c),
        Junction(r, c - 1),
        Junction(r, c),
    )


def iter_junctions(nr: int, nc: int) -> Iterator[Junction]:
    for r in range(nr + 1):
        for c in range(nc + 1):
            yield Junction(r, c)


def is_boundary_junction(j: Junction, nr: int, nc: int) -> bool:
    return j.r in (0, nr) or j.c in (0, nc)


def perimeter_junction_cycle(nr: int, nc: int) -> list[Junction]:
    """Boundary junctions in clockwise order starting from ``(0, 0)``.

    The returned list is a cycle: consecutive entries (and last→first) are
    the endpoints of consecutive perimeter wall segments.
    """
    cycle: list[Junction] = []
    for c in range(0, nc + 1):  # north edge, west→east
        cycle.append(Junction(0, c))
    for r in range(1, nr + 1):  # east edge, north→south
        cycle.append(Junction(r, nc))
    for c in range(nc - 1, -1, -1):  # south edge, east→west
        cycle.append(Junction(nr, c))
    for r in range(nr - 1, 0, -1):  # west edge, south→north
        cycle.append(Junction(r, 0))
    return cycle


def boundary_cell(side: Side, index: int, nr: int, nc: int) -> Cell:
    """The boundary cell at 1-based position ``index`` along ``side``.

    For NORTH/SOUTH, ``index`` is the column; for EAST/WEST it is the row.
    """
    if side is Side.NORTH:
        cell = Cell(1, index)
    elif side is Side.SOUTH:
        cell = Cell(nr, index)
    elif side is Side.WEST:
        cell = Cell(index, 1)
    else:
        cell = Cell(index, nc)
    if not in_bounds(cell, nr, nc):
        raise ValueError(f"port position {side}/{index} outside a {nr}x{nc} array")
    return cell


def port_gap(side: Side, cell: Cell) -> tuple[Junction, Junction]:
    """The perimeter segment (junction pair) a port at ``cell`` breaches."""
    r, c = cell
    if side is Side.NORTH:
        return (Junction(r - 1, c - 1), Junction(r - 1, c))
    if side is Side.SOUTH:
        return (Junction(r, c - 1), Junction(r, c))
    if side is Side.WEST:
        return (Junction(r - 1, c - 1), Junction(r, c - 1))
    return (Junction(r - 1, c), Junction(r, c))


def side_of_boundary_cell(cell: Cell, nr: int, nc: int) -> list[Side]:
    """All chip sides the cell touches (corner cells touch two)."""
    sides = []
    if cell.r == 1:
        sides.append(Side.NORTH)
    if cell.r == nr:
        sides.append(Side.SOUTH)
    if cell.c == 1:
        sides.append(Side.WEST)
    if cell.c == nc:
        sides.append(Side.EAST)
    return sides


def full_grid_valve_count(nr: int, nc: int) -> int:
    """Number of interior edges (valve positions) of a full grid."""
    return 2 * nr * nc - nr - nc
