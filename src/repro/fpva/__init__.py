"""FPVA chip model: lattice geometry, arrays, layouts, graphs and devices."""

from repro.fpva.array import FPVA, LayoutError
from repro.fpva.builder import FPVABuilder
from repro.fpva.components import EdgeKind, FaultClass, ValveState
from repro.fpva.control import control_adjacent_pairs, neighbors_of
from repro.fpva.devices import DynamicMixer, transport_route
from repro.fpva.geometry import (
    Cell,
    Edge,
    Junction,
    Orientation,
    Side,
    edge_between,
    full_grid_valve_count,
)
from repro.fpva.graph import (
    BoundaryArcs,
    UnsupportedTopologyError,
    boundary_arcs,
    cell_graph,
    junction_graph,
)
from repro.fpva.layouts import (
    TABLE1_PAPER,
    TABLE1_SIZES,
    TABLE1_VALVE_COUNTS,
    Table1Row,
    all_table1_layouts,
    fig8_layout,
    fig9_layout,
    full_layout,
    table1_layout,
)
from repro.fpva.ports import Port, PortKind, sink, source

__all__ = [
    "FPVA",
    "FPVABuilder",
    "LayoutError",
    "EdgeKind",
    "FaultClass",
    "ValveState",
    "control_adjacent_pairs",
    "neighbors_of",
    "DynamicMixer",
    "transport_route",
    "Cell",
    "Edge",
    "Junction",
    "Orientation",
    "Side",
    "edge_between",
    "full_grid_valve_count",
    "BoundaryArcs",
    "UnsupportedTopologyError",
    "boundary_arcs",
    "cell_graph",
    "junction_graph",
    "TABLE1_PAPER",
    "TABLE1_SIZES",
    "TABLE1_VALVE_COUNTS",
    "Table1Row",
    "all_table1_layouts",
    "fig8_layout",
    "fig9_layout",
    "full_layout",
    "table1_layout",
    "Port",
    "PortKind",
    "sink",
    "source",
]
