"""Benchmark array layouts reproducing Table I of the paper.

Table I reports five arrays (5x5 .. 30x30) "with long channels for
transportation and obstacle areas without valves".  The exact layouts were
not published, but the valve counts pin down the budget precisely: for every
n x n array the reported ``n_v`` equals the full-grid valve count
``2n^2 - 2n`` minus ``(n/5)^2`` — exactly one valve position per 5x5
subblock is consumed by channel/obstacle structure:

    ============  =====  ===============  ========  =======
    array         n_v    full-grid count  removed   (n/5)^2
    ============  =====  ===============  ========  =======
    5 x 5          39          40             1        1
    10 x 10       176         180             4        4
    15 x 15       411         420             9        9
    20 x 20       744         760            16       16
    30 x 30      1704        1740            36       36
    ============  =====  ===============  ========  =======

The layouts below place long channels and obstacle blocks consuming exactly
that budget (the 20x20 array uses three channels and two obstacles, matching
the Fig 9 description).  Tests assert the resulting valve counts equal the
published n_v values.

Every benchmark array has one pressure source at the top of the west side
and one pressure meter at the bottom of the east side.  Diagonally opposite
ports make every straight row/column wall a valid source/sink cut, which is
what produces the paper's n_c = n_r + n_c - 2 cut-set counts (8, 18, 28,
38, 58 for the five arrays).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpva.array import FPVA
from repro.fpva.builder import FPVABuilder
from repro.fpva.geometry import Cell, Side


@dataclass(frozen=True)
class Table1Row:
    """Published Table I numbers for one array (for benchmark comparison)."""

    dimension: str
    nv: int
    top: str
    subblock: str
    np_paths: int
    tp_seconds: float
    nc_cuts: int
    tc_seconds: float
    nl_leak: int
    tl_seconds: float
    total_vectors: int
    total_seconds: float


#: The published Table I, row by row.
TABLE1_PAPER: tuple[Table1Row, ...] = (
    Table1Row("5x5", 39, "1x1", "5x5", 5, 0.3, 8, 0.2, 4, 2.0, 17, 2.5),
    Table1Row("10x10", 176, "2x2", "5x5", 4, 4.0, 18, 5.0, 4, 10.0, 26, 19.0),
    Table1Row("15x15", 411, "3x3", "5x5", 8, 17.0, 28, 26.0, 8, 127.0, 44, 170.0),
    Table1Row("20x20", 744, "4x4", "5x5", 16, 35.0, 38, 41.0, 16, 742.0, 70, 818.0),
    Table1Row("30x30", 1704, "6x6", "5x5", 20, 255.0, 58, 171.0, 20, 1492.0, 98, 1918.0),
)

#: Published valve counts keyed by array size.
TABLE1_VALVE_COUNTS = {5: 39, 10: 176, 15: 411, 20: 744, 30: 1704}

TABLE1_SIZES = (5, 10, 15, 20, 30)


def full_layout(nr: int, nc: int, name: str = "") -> FPVA:
    """A full array with no channels or obstacles (used by Fig 8).

    Ports sit at diagonally opposite corners (source NW, sink SE) so that
    every straight row/column wall separates them.
    """
    return (
        FPVABuilder(nr, nc, name=name or f"full-{nr}x{nc}")
        .source(Side.WEST, 1)
        .sink(Side.EAST, nr)
        .build()
    )


def table1_layout(n: int) -> FPVA:
    """The benchmark array of size ``n`` (one of 5, 10, 15, 20, 30)."""
    if n not in TABLE1_SIZES:
        raise ValueError(f"Table I arrays are {TABLE1_SIZES}, got {n}")
    b = FPVABuilder(n, n, name=f"table1-{n}x{n}")
    b.source(Side.WEST, 1).sink(Side.EAST, n)
    if n == 5:
        # One channel edge (budget 1).
        b.channel(Cell(3, 2), "east", 1)
    elif n == 10:
        # One transport channel of length 4 (budget 4).
        b.channel(Cell(5, 3), "east", 4)
    elif n == 15:
        # One 1x1 obstacle (4) + one channel of length 5 (budget 9).
        b.obstacle(8, 8)
        b.channel(Cell(3, 5), "east", 5)
    elif n == 20:
        # Fig 9: three channels and two obstacles (budget 16 = 2*4 + 3+3+2).
        b.obstacle(6, 6)
        b.obstacle(15, 15)
        b.channel(Cell(3, 8), "east", 3)
        b.channel(Cell(10, 12), "south", 3)
        b.channel(Cell(17, 4), "east", 2)
    else:  # n == 30
        # Two 2x2 obstacle areas (2*12) + three channels of length 4
        # (budget 36 = 24 + 12).
        b.obstacle_rect(8, 8, 9, 9)
        b.obstacle_rect(20, 20, 21, 21)
        b.channel(Cell(15, 3), "east", 4)
        b.channel(Cell(3, 15), "south", 4)
        b.channel(Cell(25, 22), "east", 4)
    return b.build()


def fig9_layout() -> FPVA:
    """The 20x20 array with three channels and two obstacles shown in Fig 9."""
    return table1_layout(20)


def fig8_layout() -> FPVA:
    """The full 10x10 array (no channels or obstacles) used in Fig 8."""
    return full_layout(10, 10, name="fig8-10x10")


def all_table1_layouts() -> dict[int, FPVA]:
    """All five Table I arrays keyed by size."""
    return {n: table1_layout(n) for n in TABLE1_SIZES}
