"""Control-layer model.

Every valve is driven by its own control line (the paper's arrays are fully
programmable: each valve is individually addressable).  The control lines of
physically neighbouring valves run close together, so the leaking-control-
channel defect of Fig 3(d) couples *adjacent* valves: actuating one valve's
line also pressurizes (closes) the neighbour.

We model leakage candidates as unordered pairs of valves that share a
junction (the lattice corner where their channel segments meet) — this
covers both collinear neighbours and perpendicular "turning" neighbours.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.fpva.array import FPVA
from repro.fpva.geometry import Edge, Junction


def valves_by_junction(fpva: FPVA) -> dict[Junction, list[Edge]]:
    """Map each junction to the valves whose dual edge touches it."""
    by_junction: dict[Junction, list[Edge]] = defaultdict(list)
    for valve in fpva.valves:
        for j in valve.dual():
            by_junction[j].append(valve)
    return dict(by_junction)


def control_adjacent_pairs(fpva: FPVA) -> frozenset[frozenset[Edge]]:
    """All candidate control-leakage pairs: valves sharing a junction."""
    pairs: set[frozenset[Edge]] = set()
    for valves in valves_by_junction(fpva).values():
        for i, a in enumerate(valves):
            for b in valves[i + 1 :]:
                pairs.add(frozenset((a, b)))
    return frozenset(pairs)


def neighbors_of(fpva: FPVA, valve: Edge) -> tuple[Edge, ...]:
    """Valves control-adjacent to ``valve`` (sharing a junction)."""
    by_junction = valves_by_junction(fpva)
    out: set[Edge] = set()
    for j in valve.dual():
        out.update(by_junction.get(j, ()))
    out.discard(valve)
    return tuple(sorted(out))


def iter_ordered_pairs(fpva: FPVA) -> Iterator[tuple[Edge, Edge]]:
    """All ordered control-adjacent pairs ``(aggressor, victim)``."""
    for pair in control_adjacent_pairs(fpva):
        a, b = sorted(pair)
        yield (a, b)
        yield (b, a)
