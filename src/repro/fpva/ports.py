"""Pressure source and pressure-meter (sink) ports.

A port breaches the sealed chip boundary at one boundary cell.  Following the
paper we call a pressure source a *source port* and a pressure-meter port a
*sink port*.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.fpva.geometry import Cell, Junction, Side, boundary_cell, port_gap


class PortKind(enum.Enum):
    SOURCE = "source"
    SINK = "sink"


class Port(NamedTuple):
    """A port on side ``side`` at 1-based position ``index`` along that side.

    ``index`` is a column for NORTH/SOUTH ports and a row for EAST/WEST
    ports.  ``name`` is a display label (e.g. ``"src0"``, ``"o2"``).
    """

    kind: PortKind
    side: Side
    index: int
    name: str

    def cell(self, nr: int, nc: int) -> Cell:
        """The boundary cell this port opens into."""
        return boundary_cell(self.side, self.index, nr, nc)

    def gap(self, nr: int, nc: int) -> tuple[Junction, Junction]:
        """The perimeter junction segment breached by this port."""
        return port_gap(self.side, self.cell(nr, nc))

    @property
    def is_source(self) -> bool:
        return self.kind is PortKind.SOURCE

    @property
    def is_sink(self) -> bool:
        return self.kind is PortKind.SINK


def source(side: Side, index: int, name: str = "") -> Port:
    """Convenience constructor for a pressure source port."""
    return Port(PortKind.SOURCE, side, index, name or f"src@{side.value}{index}")


def sink(side: Side, index: int, name: str = "") -> Port:
    """Convenience constructor for a pressure-meter (sink) port."""
    return Port(PortKind.SINK, side, index, name or f"meter@{side.value}{index}")
