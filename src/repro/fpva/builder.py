"""Fluent construction of FPVA layouts."""

from __future__ import annotations

from repro.fpva.array import FPVA, LayoutError
from repro.fpva.geometry import Cell, Edge, Side, edge_between
from repro.fpva.ports import Port, sink, source


class FPVABuilder:
    """Builds an :class:`~repro.fpva.array.FPVA` step by step.

    Example::

        fpva = (
            FPVABuilder(10, 10, name="demo")
            .obstacle_rect(4, 4, 5, 5)
            .channel(Cell(8, 2), "east", 3)
            .source(Side.WEST, 5)
            .sink(Side.EAST, 5)
            .build()
        )
    """

    _DIRECTIONS = {
        "north": (-1, 0),
        "south": (1, 0),
        "east": (0, 1),
        "west": (0, -1),
    }

    def __init__(self, nr: int, nc: int, name: str = ""):
        self.nr = nr
        self.nc = nc
        self.name = name
        self._obstacles: set[Cell] = set()
        self._channels: set[Edge] = set()
        self._ports: list[Port] = []

    # -- obstacles -------------------------------------------------------
    def obstacle(self, r: int, c: int) -> "FPVABuilder":
        """Mark a single cell as an obstacle."""
        self._obstacles.add(Cell(r, c))
        return self

    def obstacle_rect(self, r1: int, c1: int, r2: int, c2: int) -> "FPVABuilder":
        """Mark the inclusive rectangle ``(r1,c1)..(r2,c2)`` as obstacles."""
        if r2 < r1 or c2 < c1:
            raise LayoutError("obstacle rectangle corners out of order")
        for r in range(r1, r2 + 1):
            for c in range(c1, c2 + 1):
                self._obstacles.add(Cell(r, c))
        return self

    # -- channels --------------------------------------------------------
    def channel_edge(self, c1: Cell, c2: Cell) -> "FPVABuilder":
        """Declare the edge between two adjacent cells a permanent channel."""
        self._channels.add(edge_between(Cell(*c1), Cell(*c2)))
        return self

    def channel(self, start: Cell, direction: str, length: int) -> "FPVABuilder":
        """A straight run of ``length`` channel edges from ``start``.

        ``direction`` is one of ``"north" | "south" | "east" | "west"``.
        A channel of length L spans L+1 cells.
        """
        if direction not in self._DIRECTIONS:
            raise LayoutError(f"unknown direction {direction!r}")
        if length < 1:
            raise LayoutError("channel length must be >= 1")
        dr, dc = self._DIRECTIONS[direction]
        cur = Cell(*start)
        for _ in range(length):
            nxt = Cell(cur.r + dr, cur.c + dc)
            self.channel_edge(cur, nxt)
            cur = nxt
        return self

    # -- ports -----------------------------------------------------------
    def source(self, side: Side, index: int, name: str = "") -> "FPVABuilder":
        self._ports.append(source(side, index, name))
        return self

    def sink(self, side: Side, index: int, name: str = "") -> "FPVABuilder":
        self._ports.append(sink(side, index, name))
        return self

    def port(self, port: Port) -> "FPVABuilder":
        self._ports.append(port)
        return self

    # -- build -----------------------------------------------------------
    def build(self) -> FPVA:
        return FPVA(
            self.nr,
            self.nc,
            obstacles=self._obstacles,
            channels=self._channels,
            ports=self._ports,
            name=self.name,
        )
