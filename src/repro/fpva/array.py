"""The FPVA chip model: dimensions, obstacles, channels and ports."""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

from repro.fpva.components import EdgeKind
from repro.fpva.geometry import (
    Cell,
    Edge,
    Side,
    cells_adjacent,
    full_grid_valve_count,
    in_bounds,
    iter_cells,
    iter_interior_edges,
    neighbors4,
)
from repro.fpva.ports import Port, PortKind


class LayoutError(ValueError):
    """Raised for physically impossible or inconsistent array descriptions."""


class FPVA:
    """A fully programmable valve array.

    Parameters mirror the paper's problem formulation (section II):

    * ``nr`` x ``nc`` — the cell-grid dimensions;
    * ``obstacles`` — cells with no flow structure ("conceptually always
      closed"); every edge touching an obstacle cell is absent;
    * ``channels`` — edges where no valve is built ("conceptually always
      open"): permanent transport channels;
    * ``ports`` — pressure sources and pressure meters on the boundary.

    The object is immutable after construction and validates itself.
    """

    def __init__(
        self,
        nr: int,
        nc: int,
        obstacles: Iterable[Cell] = (),
        channels: Iterable[Edge] = (),
        ports: Sequence[Port] = (),
        name: str = "",
    ):
        if nr < 1 or nc < 1:
            raise LayoutError(f"array dimensions must be positive, got {nr}x{nc}")
        self.nr = nr
        self.nc = nc
        self.obstacles = frozenset(Cell(*o) for o in obstacles)
        self.channels = frozenset(Edge(Cell(*e[0]), Cell(*e[1])) for e in channels)
        self.ports = tuple(ports)
        self.name = name or f"fpva-{nr}x{nc}"
        self._validate()

    # -- validation --------------------------------------------------------
    def _validate(self) -> None:
        for cell in self.obstacles:
            if not in_bounds(cell, self.nr, self.nc):
                raise LayoutError(f"obstacle {cell} outside {self.nr}x{self.nc} array")
        for edge in self.channels:
            if not cells_adjacent(edge.a, edge.b):
                raise LayoutError(f"channel edge {edge} endpoints not adjacent")
            for cell in edge.cells:
                if not in_bounds(cell, self.nr, self.nc):
                    raise LayoutError(f"channel edge {edge} outside the array")
                if cell in self.obstacles:
                    raise LayoutError(
                        f"channel edge {edge} touches obstacle cell {cell}"
                    )
        names = [p.name for p in self.ports]
        if len(set(names)) != len(names):
            raise LayoutError(f"duplicate port names in {names}")
        occupied: set[tuple[Side, int]] = set()
        for port in self.ports:
            cell = port.cell(self.nr, self.nc)  # raises if off-side
            if cell in self.obstacles:
                raise LayoutError(f"port {port.name} opens into obstacle {cell}")
            key = (port.side, port.index)
            if key in occupied:
                raise LayoutError(f"two ports share boundary position {key}")
            occupied.add(key)
        if not any(p.is_source for p in self.ports):
            raise LayoutError("array has no pressure source port")
        if not any(p.is_sink for p in self.ports):
            raise LayoutError("array has no pressure-meter (sink) port")
        self._validate_no_shorted_valves()

    def _validate_no_shorted_valves(self) -> None:
        """Reject valves whose both end cells share one channel component.

        Such a valve is permanently bypassed by the always-open channel
        around it: neither opening nor closing it can ever change any
        pressure reading, so it is untestable by construction.  Layouts
        containing one are almost certainly mistakes (a channel looping back
        on itself).
        """
        for component in self.channel_components:
            for edge in self.flow_edges:
                if edge in self.channels:
                    continue
                if edge.a in component and edge.b in component:
                    raise LayoutError(
                        f"valve {edge} is shorted by the always-open channel "
                        f"region around it and can never be tested"
                    )

    # -- cells ---------------------------------------------------------------
    def is_cell(self, cell: Cell) -> bool:
        """True if ``cell`` is in bounds and not an obstacle."""
        return in_bounds(cell, self.nr, self.nc) and cell not in self.obstacles

    def cells(self) -> Iterator[Cell]:
        """All fluid cells (obstacles excluded)."""
        for cell in iter_cells(self.nr, self.nc):
            if cell not in self.obstacles:
                yield cell

    @cached_property
    def cell_count(self) -> int:
        return self.nr * self.nc - len(self.obstacles)

    # -- edges ---------------------------------------------------------------
    @cached_property
    def flow_edges(self) -> tuple[Edge, ...]:
        """All fluidic edges: valves plus channel segments (sorted)."""
        edges = [
            e
            for e in iter_interior_edges(self.nr, self.nc)
            if self.is_cell(e.a) and self.is_cell(e.b)
        ]
        return tuple(sorted(edges))

    @cached_property
    def valves(self) -> tuple[Edge, ...]:
        """The testable valves: flow edges that are not permanent channels."""
        return tuple(e for e in self.flow_edges if e not in self.channels)

    @cached_property
    def valve_set(self) -> frozenset[Edge]:
        return frozenset(self.valves)

    @cached_property
    def valve_count(self) -> int:
        return len(self.valves)

    def edge_kind(self, edge: Edge) -> EdgeKind:
        if edge in self.channels:
            return EdgeKind.CHANNEL
        if edge in self.valve_set:
            return EdgeKind.VALVE
        raise LayoutError(f"{edge} is not a flow edge of this array")

    def is_valve(self, edge: Edge) -> bool:
        return edge in self.valve_set

    def edges_at(self, cell: Cell) -> list[Edge]:
        """Flow edges incident to ``cell``."""
        out = []
        for nb in neighbors4(cell):
            if self.is_cell(nb) and self.is_cell(cell):
                edge = Edge(min(cell, nb), max(cell, nb))
                if edge in self._flow_edge_set:
                    out.append(edge)
        return out

    @cached_property
    def _flow_edge_set(self) -> frozenset[Edge]:
        return frozenset(self.flow_edges)

    @cached_property
    def channel_components(self) -> tuple[frozenset[Cell], ...]:
        """Connected cell groups joined by permanent channels.

        All cells of a component are one pressure node: a transport channel
        is always open, so pressure anywhere in the component floods all of
        it.  Flow paths must treat a component as a single step (enter once,
        leave once), which the generators enforce with region-crossing caps.
        """
        parent: dict[Cell, Cell] = {}

        def find(x: Cell) -> Cell:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self.channels:
            for cell in edge.cells:
                parent.setdefault(cell, cell)
            ra, rb = find(edge.a), find(edge.b)
            if ra != rb:
                parent[ra] = rb
        groups: dict[Cell, set[Cell]] = {}
        for cell in parent:
            groups.setdefault(find(cell), set()).add(cell)
        return tuple(frozenset(g) for g in groups.values())

    # -- ports -----------------------------------------------------------------
    @cached_property
    def sources(self) -> tuple[Port, ...]:
        return tuple(p for p in self.ports if p.is_source)

    @cached_property
    def sinks(self) -> tuple[Port, ...]:
        return tuple(p for p in self.ports if p.is_sink)

    def port_cell(self, port: Port) -> Cell:
        return port.cell(self.nr, self.nc)

    def port_by_name(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port named {name!r}")

    # -- summary -----------------------------------------------------------------
    @property
    def full_grid_valves(self) -> int:
        """Valve positions a full array of this size would have."""
        return full_grid_valve_count(self.nr, self.nc)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.nr}x{self.nc} cells, {self.valve_count} valves "
            f"({len(self.channels)} channel edges, {len(self.obstacles)} obstacle "
            f"cells), {len(self.sources)} source(s), {len(self.sinks)} sink(s)"
        )

    def __repr__(self):
        return f"FPVA({self.name!r}, {self.nr}x{self.nc}, {self.valve_count} valves)"
