"""Dynamic devices configured on an FPVA (Fig 2 of the paper).

An FPVA executes bioassay operations by *configuring* groups of valves: a
dynamic mixer is a ring of cells whose enclosing valves are closed (forming
a channel wall) while the valves along the ring stay open; a subset of ring
valves act as peristaltic pump valves, actuated in a rotating pattern to
drive circular flow.  Two devices can share chip area as long as they are
not active at the same time (Fig 2(d)).

This module synthesizes such configurations so the examples can demonstrate
the reconfigurability story that motivates FPVA testing, and so device
regions can be checked fault-free with the generated test sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.fpva.array import FPVA, LayoutError
from repro.fpva.components import ValveState
from repro.fpva.geometry import Cell, Edge, edge_between, in_bounds, neighbors4


@dataclass(frozen=True)
class DynamicMixer:
    """A ``height x width`` dynamic mixer with its top-left cell at ``origin``.

    The paper's Fig 2(b)/(c) mixers are 4x2 and 2x4; any ``height, width >= 2``
    is supported.  For 4x2 / 2x4 the ring has exactly eight valves — the
    eight pump valves the paper describes.
    """

    origin: Cell
    height: int
    width: int

    def __post_init__(self):
        if self.height < 2 or self.width < 2:
            raise LayoutError("a dynamic mixer needs at least 2x2 cells")

    # -- geometry -----------------------------------------------------------
    @cached_property
    def cells(self) -> frozenset[Cell]:
        """All cells of the mixer block."""
        r0, c0 = self.origin
        return frozenset(
            Cell(r, c)
            for r in range(r0, r0 + self.height)
            for c in range(c0, c0 + self.width)
        )

    @cached_property
    def ring_cells(self) -> tuple[Cell, ...]:
        """Perimeter cells of the block in clockwise cycle order."""
        r0, c0 = self.origin
        r1, c1 = r0 + self.height - 1, c0 + self.width - 1
        ring: list[Cell] = []
        ring.extend(Cell(r0, c) for c in range(c0, c1 + 1))
        ring.extend(Cell(r, c1) for r in range(r0 + 1, r1 + 1))
        ring.extend(Cell(r1, c) for c in range(c1 - 1, c0 - 1, -1))
        ring.extend(Cell(r, c0) for r in range(r1 - 1, r0, -1))
        return tuple(ring)

    @cached_property
    def ring_valves(self) -> tuple[Edge, ...]:
        """Valves between consecutive ring cells (the circulation channel)."""
        ring = self.ring_cells
        return tuple(
            edge_between(ring[i], ring[(i + 1) % len(ring)])
            for i in range(len(ring))
        )

    @cached_property
    def interior_cells(self) -> frozenset[Cell]:
        return self.cells - set(self.ring_cells)

    def guard_valves(self, fpva: FPVA) -> tuple[Edge, ...]:
        """Valves that must close to enclose the circulating flow.

        These are all flow edges from a ring cell to a cell outside the ring
        (either outside the block or in its interior).
        """
        ring_set = set(self.ring_cells)
        guards: set[Edge] = set()
        for cell in self.ring_cells:
            for nb in neighbors4(cell):
                if nb in ring_set or not fpva.is_cell(nb):
                    continue
                edge = edge_between(cell, nb)
                if edge in fpva._flow_edge_set:
                    guards.add(edge)
        return tuple(sorted(guards))

    @cached_property
    def pump_valves(self) -> tuple[Edge, ...]:
        """The eight pump valves: evenly spaced valves along the ring."""
        ring = self.ring_valves
        if len(ring) <= 8:
            return ring
        step = len(ring) / 8
        picks = sorted({int(i * step) for i in range(8)})
        return tuple(ring[i] for i in picks)

    # -- validation & configuration ----------------------------------------
    def validate(self, fpva: FPVA) -> None:
        """Check the mixer is realizable at its location on ``fpva``."""
        for cell in self.cells:
            if not in_bounds(cell, fpva.nr, fpva.nc):
                raise LayoutError(f"mixer cell {cell} outside the array")
            if cell in fpva.obstacles:
                raise LayoutError(f"mixer overlaps obstacle cell {cell}")
        for valve in self.ring_valves:
            if valve not in fpva._flow_edge_set:
                raise LayoutError(f"mixer ring edge {valve} missing on the array")
        for guard in self.guard_valves(fpva):
            if guard in fpva.channels:
                raise LayoutError(
                    f"mixer wall needs {guard} closed but it is a permanent channel"
                )

    def configuration(self, fpva: FPVA) -> dict[Edge, ValveState]:
        """Valve states realizing the mixer: ring open, walls closed."""
        self.validate(fpva)
        config = {valve: ValveState.OPEN for valve in self.ring_valves}
        for guard in self.guard_valves(fpva):
            config[guard] = ValveState.CLOSED
        return config

    def pump_phases(self, plug_width: int = 2) -> list[dict[Edge, ValveState]]:
        """Peristaltic actuation: a plug of closed pump valves travels the ring.

        Phase ``i`` closes ``plug_width`` consecutive pump valves starting at
        pump valve ``i``; all other pump valves are open.  Applying the
        phases cyclically drives circulation.
        """
        pumps = self.pump_valves
        if plug_width >= len(pumps):
            raise LayoutError("plug width must leave at least one pump valve open")
        phases = []
        for i in range(len(pumps)):
            closed = {pumps[(i + k) % len(pumps)] for k in range(plug_width)}
            phases.append(
                {
                    pump: (ValveState.CLOSED if pump in closed else ValveState.OPEN)
                    for pump in pumps
                }
            )
        return phases

    def overlaps(self, other: "DynamicMixer") -> bool:
        """True if the two mixers share chip area (Fig 2(d))."""
        return bool(self.cells & other.cells)


def transport_route(fpva: FPVA, cells: list[Cell]) -> dict[Edge, ValveState]:
    """Valve states forming a transport channel along ``cells``.

    Opens the valves along the route and closes every other valve incident
    to the route, so fluid cannot escape sideways.
    """
    if len(cells) < 2:
        raise LayoutError("a transport route needs at least two cells")
    route_edges = [edge_between(cells[i], cells[i + 1]) for i in range(len(cells) - 1)]
    config: dict[Edge, ValveState] = {}
    for edge in route_edges:
        if edge not in fpva._flow_edge_set:
            raise LayoutError(f"route edge {edge} missing on the array")
        config[edge] = ValveState.OPEN
    route_edge_set = set(route_edges)
    for cell in cells:
        for edge in fpva.edges_at(cell):
            if edge in route_edge_set:
                continue
            if edge in fpva.channels:
                continue  # cannot close a permanent channel
            config[edge] = ValveState.CLOSED
    return config
