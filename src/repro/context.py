"""ExecutionContext: one compiled-kernel session for every layer.

Before this module existed, each layer that needed simulation built its
own :class:`~repro.sim.pressure.PressureSimulator` — nine independent
call sites across the ``core`` generators alone — so a single
``generate`` invocation compiled the same
:class:`~repro.sim.kernel.ReachabilityKernel` many times over, and every
caller that wanted warm starts or the batched engine re-threaded
``kernel=``, ``cache_dir=`` and backend strings by hand through each
intermediate signature.

An :class:`ExecutionContext` (a.k.a. *session*) owns the tuple

    (array, compiled kernel, artifact store, seed, engine choice)

and hands out the shared per-array machinery derived from it:

* :attr:`kernel` — compiled **exactly once** per context, warm-loaded
  from the :class:`~repro.store.KernelStore` when a cache directory is
  configured (and persisted there after a cold compile);
* :attr:`simulator` / :attr:`tester` — one shared
  :class:`~repro.sim.pressure.PressureSimulator` /
  :class:`~repro.sim.tester.Tester` pair on top of that kernel;
* :meth:`evaluator` — a memoized per-suite
  :class:`~repro.sim.kernel.BatchEvaluator`, so consumers that batch
  over the same vector suite (coverage accounting, double-fault
  hardening, campaign sweeps) share one scenario-dedup pool;
* :meth:`rng` — deterministic per-purpose random streams derived from
  the session seed through the splitmix64 mixer
  (:func:`repro.sim.seeding.mix_seed`).

``engine="kernel"`` (the default) routes everything through the compiled
bitmask kernel; ``engine="object"`` pins the session to the pure-Python
object-graph reference engine — consumers then take their serial
reference paths and :meth:`evaluator` refuses service, which is what the
batched-vs-reference equivalence tests lean on.

Within the kernel engine, ``kernel_backend=`` picks the propagation
*tier* from the :mod:`repro.sim.backends` registry (``tile`` multi-word
elimination tiles by default, ``word`` single-word sweeps, optional
``jit``/``gpu``), falling back through the ``REPRO_KERNEL_BACKEND``
environment variable.  The stored kernel artifact is backend-agnostic;
the session attaches its tier after load, so any tier replays a
persisted kernel bit-identically.

Contexts deliberately stay cheap to create: nothing compiles until the
first consumer asks, so passing ``context=None`` everywhere retains the
old build-privately behaviour (now deduplicated behind one lazy session
instead of per-call-site simulators).
"""

from __future__ import annotations

import os
import random
from typing import TYPE_CHECKING, Any, Sequence

from repro.fpva.array import FPVA
from repro.sim.kernel import BatchEvaluator, ReachabilityKernel
from repro.sim.pressure import PressureSimulator
from repro.sim.seeding import mix_seed
from repro.sim.tester import Tester

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependencies
    from repro.core.vectors import TestVector
    from repro.store import ArtifactStore

ENGINES = ("kernel", "object")


class ExecutionContext:
    """One array's compiled-simulation session, shared across layers.

    Parameters
    ----------
    fpva:
        The array every derived object is bound to.
    engine:
        ``"kernel"`` (compiled bitmask engine, the default) or
        ``"object"`` (the pure-Python object-graph reference).
    store / cache_dir:
        An :class:`~repro.store.ArtifactStore` (or a cache-directory
        path) enabling kernel warm starts and dictionary persistence.
        ``cache_dir`` is the convenience spelling the CLI uses; passing
        both is an error.
    seed:
        Session seed; :meth:`rng` derives independent deterministic
        streams from it per purpose.
    kernel:
        Optional pre-compiled kernel to adopt (it must have been
        compiled for ``fpva``); the context then never compiles.
    kernel_backend:
        Propagation-backend tier for the compiled kernel (``"tile"``,
        ``"word"``, ``"jit"``, ``"gpu"``).  ``None`` defers to the
        ``REPRO_KERNEL_BACKEND`` environment variable, then to the
        registry default; an unavailable tier warns and falls back
        instead of failing.  Ignored by ``engine="object"`` sessions.
    """

    #: Most-recently-used :meth:`evaluator` entries kept per session
    #: (each holds its accumulated scenario-readings pool).
    MAX_CACHED_EVALUATORS = 8

    def __init__(
        self,
        fpva: FPVA,
        *,
        engine: str = "kernel",
        store: "ArtifactStore | str | os.PathLike | None" = None,
        cache_dir: str | os.PathLike | None = None,
        seed: int = 0,
        kernel: ReachabilityKernel | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if store is not None and cache_dir is not None:
            raise ValueError("pass either store= or cache_dir=, not both")
        if kernel is not None and kernel.fpva is not fpva:
            raise ValueError("kernel was compiled for a different array")
        from repro.sim.backends import canonical_name, default_backend
        from repro.store import as_store

        self.fpva = fpva
        self.engine = engine
        #: Whether a backend tier was selected explicitly (arg or env) —
        #: only then is it re-attached to an adopted/loaded kernel.
        self._backend_requested = bool(
            kernel_backend is not None or os.environ.get("REPRO_KERNEL_BACKEND")
        )
        #: The resolved backend-tier name this session attaches to its
        #: kernel (validated eagerly so typos fail at construction).
        self.kernel_backend = (
            canonical_name(kernel_backend) if kernel_backend else default_backend()
        )
        self.seed = seed
        self.store: ArtifactStore | None = as_store(
            store if store is not None else cache_dir
        )
        self._kernel = kernel
        self._backend_attached = False
        #: Cold kernel compiles this context paid (asserted == 1 by test).
        self.kernel_compiles = 0
        #: Kernel warm loads served from :attr:`store`.
        self.kernel_loads = 0
        #: Corrupt stored kernels this context quarantined and rebuilt.
        self.kernel_heals = 0
        #: Dictionary builds by mode (see :meth:`dictionary`): tables
        #: served straight off disk, assembled from a stored ancestor's
        #: rows, and simulated from scratch, respectively.
        self.dictionary_warm_loads = 0
        self.dictionary_delta_builds = 0
        self.dictionary_cold_builds = 0
        self._simulator: PressureSimulator | None = None
        self._tester: Tester | None = None
        self._evaluators: dict[tuple, BatchEvaluator] = {}

    # -- resolution helpers -------------------------------------------------
    @classmethod
    def resolve(
        cls, context: "ExecutionContext | None", fpva: FPVA, **defaults: Any
    ) -> "ExecutionContext":
        """``context`` if given (validated against ``fpva``), else a fresh one.

        The standard constructor-argument pattern: every layer accepts
        ``context=None`` and resolves it through here, so omitting the
        argument keeps the old build-your-own behaviour while passing a
        session shares one kernel across the whole stack.
        """
        if context is None:
            return cls(fpva, **defaults)
        if not isinstance(context, cls):
            raise TypeError(
                f"context must be an ExecutionContext, got {type(context).__name__}"
            )
        if context.fpva is not fpva:
            raise ValueError(
                f"context was created for array {context.fpva.name!r}, "
                f"not {fpva.name!r}"
            )
        return context

    @property
    def batched(self) -> bool:
        """Whether this session runs the compiled batched engine."""
        return self.engine == "kernel"

    # -- the compiled kernel ------------------------------------------------
    @property
    def kernel(self) -> ReachabilityKernel:
        """The compiled kernel — built (or warm-loaded) exactly once.

        With a :attr:`store` configured, a stored artifact is loaded
        verbatim (bit-identical readings, no compile); a cold compile is
        persisted so the *next* session warm-starts.  Stored artifacts
        are backend-agnostic — the session attaches its
        :attr:`kernel_backend` tier after loading, so a kernel persisted
        under one tier replays identically under any other.

        A stored artifact that fails checksum verification is
        quarantined and recompiled from the array — the session
        self-heals instead of crashing (or worse, simulating on corrupt
        arc tables), and :attr:`kernel_heals` counts the event.
        """
        if self._kernel is None:
            from repro.store import ArtifactCorruptionError

            loaded = None
            if self.store is not None:
                try:
                    loaded = self.store.kernels.load(self.fpva)
                except ArtifactCorruptionError as error:
                    self.store.kernels.heal(self.fpva, error)
                    self.kernel_heals += 1
            if loaded is not None:
                self._kernel = loaded
                self.kernel_loads += 1
            else:
                self._kernel = ReachabilityKernel(self.fpva)
                self.kernel_compiles += 1
                if self.store is not None:
                    self.store.kernels.save(self._kernel)
        if not self._backend_attached:
            self._attach_backend(self._kernel)
            self._backend_attached = True
        return self._kernel

    def _attach_backend(self, kernel: ReachabilityKernel) -> None:
        """Bind the session's backend tier to ``kernel``.

        An explicit selection (constructor arg or env var) always wins;
        otherwise a kernel that already carries a backend (e.g. one
        shipped into a campaign worker) keeps it, and a bare kernel gets
        the session default.  Unavailable tiers warn and fall back.
        """
        from repro.sim.backends import create

        if not self._backend_requested and kernel._backend is not None:
            return
        if kernel._backend is not None and kernel._backend.name == self.kernel_backend:
            return
        kernel.set_backend(create(self.kernel_backend, kernel, fallback=True))

    # -- shared derived machinery -------------------------------------------
    @property
    def simulator(self) -> PressureSimulator:
        """The session's one shared simulator (engine per the context)."""
        if self._simulator is None:
            if self.batched:
                self._simulator = PressureSimulator(self.fpva, kernel=self.kernel)
            else:
                self._simulator = PressureSimulator(self.fpva, engine="object")
        return self._simulator

    @property
    def tester(self) -> Tester:
        """The session's one shared tester, on top of :attr:`simulator`."""
        if self._tester is None:
            self._tester = Tester(simulator=self.simulator)
        return self._tester

    def evaluator(self, vectors: Sequence["TestVector"]) -> BatchEvaluator:
        """The shared :class:`BatchEvaluator` for one vector suite.

        Memoized by suite content, so every batched consumer of the same
        suite (coverage, hardening, campaigns) pools its scenario dedup
        table.  Raises :class:`~repro.sim.kernel.SinkCoverageError` when
        the suite cannot be evaluated row-wise, and :class:`RuntimeError`
        on an ``engine="object"`` session — callers fall back to their
        serial reference paths on either.
        """
        if not self.batched:
            raise RuntimeError(
                "batched evaluation is unavailable on an engine='object' session"
            )
        key = tuple(
            (v.name, v.open_valves, tuple(sorted(v.expected.items())))
            for v in vectors
        )
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = self._evaluators[key] = BatchEvaluator(
                self.kernel, vectors
            )
            # Evaluators accumulate their scenario pools; bound the memo
            # so a session that iterates over many distinct suites (e.g.
            # hardening mutating a testset per round) cannot grow without
            # limit.  LRU order: a hit below re-registers the key.
            while len(self._evaluators) > self.MAX_CACHED_EVALUATORS:
                self._evaluators.pop(next(iter(self._evaluators)))
        else:
            self._evaluators[key] = self._evaluators.pop(key)
        return evaluator

    def dictionary(
        self,
        vectors: Sequence["TestVector"],
        *,
        max_cardinality: int = 1,
        universe: Sequence[Any] | None = None,
        include_control_leaks: bool = True,
        base_digest: str | None = None,
        incremental: bool = True,
        chunk_size: int | None = None,
    ) -> Any:
        """A :class:`~repro.sim.diagnosis.FaultDictionary` on this session.

        The session's kernel, store and engine choice are shared; when a
        store is configured the dictionary warm-loads, or — failing that —
        delta-builds from the nearest stored ancestor (same layout and
        universe, suite/cardinality subsumed), simulating only the new
        vectors and fault sets.  ``base_digest`` pins the ancestor;
        ``incremental=False`` forces the pre-lineage cold path.  The
        session counts each outcome in :attr:`dictionary_warm_loads` /
        :attr:`dictionary_delta_builds` / :attr:`dictionary_cold_builds`.
        """
        from repro.sim.diagnosis import DEFAULT_CHUNK_SIZE, FaultDictionary

        dictionary = FaultDictionary(
            self.fpva,
            vectors,
            include_control_leaks=include_control_leaks,
            max_cardinality=max_cardinality,
            universe=universe,
            chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
            context=self,
            base_digest=base_digest,
            incremental=incremental,
        )
        mode = dictionary.build_stats.get("mode")
        if mode == "warm":
            self.dictionary_warm_loads += 1
        elif mode == "delta":
            self.dictionary_delta_builds += 1
        else:
            self.dictionary_cold_builds += 1
        return dictionary

    def shipping_spec(self) -> tuple[str, object, str | None]:
        """What a shard payload headed to worker processes should carry.

        Returns ``(mode, kernel, backend)``: ``("legacy", None, None)``
        for an object-engine session; otherwise the session kernel — as
        the persisted artifact's *path* when a store is configured (the
        sharded pool and the campaign fabric then ship a string instead
        of pickling a kernel per process), or the compiled object itself
        without one — plus the backend-tier name workers re-attach.
        """
        if not self.batched:
            return "legacy", None, None
        # Materialize first: a cold compile persists itself through the
        # session store, so the has() check below only catches a kernel
        # the context adopted pre-compiled (never written anywhere).
        kernel = self.kernel
        if self.store is None:
            return "kernel", kernel, self.kernel_backend
        if not self.store.kernels.has(self.fpva):
            self.store.kernels.save(kernel)
        return (
            "kernel",
            str(self.store.kernels.path_for(self.fpva)),
            self.kernel_backend,
        )

    def rng(self, *stream: int) -> random.Random:
        """A deterministic RNG for one purpose-stream of the session.

        ``stream`` components are mixed into :attr:`seed` through the
        splitmix64 finalizer, so ``rng(1)`` and ``rng(2)`` never collide
        the way naive ``seed + k`` arithmetic does.
        """
        return random.Random(mix_seed(self.seed, *stream) if stream else self.seed)

    def __repr__(self) -> str:
        kernel = "compiled" if self._kernel is not None else "lazy"
        store = repr(str(self.store.root)) if self.store is not None else None
        return (
            f"ExecutionContext({self.fpva.name!r}, engine={self.engine!r}, "
            f"kernel={kernel}, backend={self.kernel_backend!r}, "
            f"store={store}, seed={self.seed})"
        )


#: The ISSUE's "a.k.a. session" spelling.
Session = ExecutionContext
