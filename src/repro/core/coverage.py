"""Coverage accounting: which faults does a vector actually exercise?

Coverage here is *observability-based*, not structural: a valve only counts
as stuck-at-0 covered by a vector if flipping that one valve closed changes
some meter reading, and stuck-at-1 covered if flipping it open does.  This
is exactly the single-fault detection condition, so the ledger cannot
over-report (the Fig 5(a) masking situation — a second source→sink
connection hiding a stuck-at-0 — is caught because the valve is then not a
bridge and flipping it changes nothing).

The checks are implemented with two graph tricks so large arrays stay fast:

* stuck-at-0: closing an open valve only matters if it is a *bridge* of the
  open-edge graph, so bridges are enumerated once per vector (Tarjan) and
  only those few candidates are re-simulated;
* stuck-at-1: opening a closed valve only matters if exactly one of its end
  cells is pressurized — only those candidates are re-simulated.

The candidate re-simulations themselves run **bit-parallel** on a
kernel-engine session: all of a vector's SA0 closures (and SA1 leaks) are
evaluated in one :meth:`~repro.sim.kernel.ReachabilityKernel.batch_readings`
call, 64 scenarios per machine word.  An ``engine="object"`` session keeps
the original one-query-at-a-time object-BFS paths (per-candidate
``meter_readings`` for SA0, the shared dark-region flood for SA1) as the
reference the batched path is property-tested against.

Both observability functions take the same canonical arguments —
``(source, vector, fpva=None)`` where ``source`` is an
:class:`~repro.context.ExecutionContext` or a
:class:`~repro.sim.pressure.PressureSimulator` — with keyword-compatible
shims for the two historical (and mutually inconsistent) positional
orders.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from repro.context import ExecutionContext
from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.fpva.control import iter_ordered_pairs
from repro.fpva.geometry import Cell, Edge
from repro.fpva.graph import cell_graph
from repro.fpva.ports import Port
from repro.sim.pressure import PressureSimulator


def open_edge_graph(fpva: FPVA, vector: TestVector) -> nx.Graph:
    """The physically open connections under a vector (fault-free)."""
    g = nx.Graph()
    g.add_nodes_from(fpva.cells())
    for edge in fpva.flow_edges:
        if edge in fpva.channels or edge in vector.open_valves:
            g.add_edge(edge.a, edge.b, edge=edge)
    for port in fpva.ports:
        g.add_edge(port, fpva.port_cell(port))
    return g


def _resolve_observability_args(
    source, vector, fpva, context, simulator, func_name: str
) -> tuple[PressureSimulator, TestVector, FPVA]:
    """Normalize the canonical and both historical argument orders.

    Canonical: ``func(source, vector, fpva=None)`` with ``source`` an
    :class:`ExecutionContext` or :class:`PressureSimulator`.  Historical:
    ``sa0_observable_valves(simulator, vector, fpva)`` (already canonical)
    and ``sa1_observable_valves(fpva, simulator, vector)`` (array first —
    accepted with a :class:`DeprecationWarning`).  ``context=`` /
    ``simulator=`` keywords always win over positional sources.
    """
    vec = ctx = sim = array = None
    legacy_slot = False
    for slot, value in enumerate((source, vector, fpva)):
        if isinstance(value, TestVector):
            vec = value if vec is None else vec
        elif isinstance(value, ExecutionContext):
            ctx = value if ctx is None else ctx
            legacy_slot = legacy_slot or slot != 0
        elif isinstance(value, PressureSimulator):
            sim = value if sim is None else sim
            legacy_slot = legacy_slot or slot != 0
        elif isinstance(value, FPVA):
            array = value if array is None else array
        elif value is not None:
            raise TypeError(
                f"{func_name}() got an unexpected positional argument "
                f"{value!r} in slot {slot}"
            )
    if legacy_slot:
        warnings.warn(
            f"{func_name}(fpva, simulator, vector) argument order is "
            f"deprecated; call {func_name}(context_or_simulator, vector, "
            f"fpva=None) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    if vec is None:
        raise TypeError(f"{func_name}() requires a TestVector")
    if context is not None:
        ctx = context
    if ctx is not None:
        resolved = ctx.simulator
    elif simulator is not None:
        resolved = simulator
    elif sim is not None:
        resolved = sim
    elif array is not None:
        resolved = ExecutionContext(array).simulator
    else:
        raise TypeError(
            f"{func_name}() requires an ExecutionContext or PressureSimulator"
        )
    return resolved, vec, array or resolved.fpva


def sa0_observable_valves(
    source=None,
    vector: TestVector | None = None,
    fpva: FPVA | None = None,
    *,
    context: ExecutionContext | None = None,
    simulator: PressureSimulator | None = None,
) -> set[Edge]:
    """Open valves whose lone closure changes the vector's meter readings."""
    sim, vector, fpva = _resolve_observability_args(
        source, vector, fpva, context, simulator, "sa0_observable_valves"
    )
    g = open_edge_graph(fpva, vector)
    sources = [p for p in fpva.sources]
    live_nodes: set = set()
    for s in sources:
        live_nodes |= nx.node_connected_component(g, s)

    candidates: set[Edge] = set()
    live_graph = g.subgraph(live_nodes)
    for u, w in nx.bridges(live_graph):
        if isinstance(u, Port) or isinstance(w, Port):
            continue
        edge = Edge(min(u, w), max(u, w))
        if edge in vector.open_valves:
            candidates.add(edge)
    if not candidates:
        return set()

    expected = dict(vector.expected)
    if sim.engine == "kernel":
        # All candidate closures of this vector in one bit-parallel batch.
        kernel = sim.kernel
        cand = sorted(candidates)
        rows = kernel.toggled_readings(
            kernel.valve_mask(vector.open_valves), cand, set_bit=False
        )
        names = kernel.sink_names
        return {
            valve
            for valve, row in zip(cand, rows)
            if {n: bool(b) for n, b in zip(names, row)} != expected
        }

    # engine="object" reference: one query per candidate.
    out: set[Edge] = set()
    for valve in candidates:
        readings = sim.meter_readings(vector.open_valves - {valve})
        if readings != expected:
            out.add(valve)
    return out


def sa1_observable_valves(
    source=None,
    vector: TestVector | None = None,
    fpva: FPVA | None = None,
    *,
    context: ExecutionContext | None = None,
    simulator: PressureSimulator | None = None,
) -> set[Edge]:
    """Closed valves whose lone leak changes the vector's meter readings.

    Opening a valve can only *add* pressure, so a leak is observable exactly
    when it pressurizes a meter that expected no pressure.
    """
    sim, vector, fpva = _resolve_observability_args(
        source, vector, fpva, context, simulator, "sa1_observable_valves"
    )
    dark_sinks = {name for name, hit in vector.expected.items() if not hit}
    if not dark_sinks:
        return set()
    pressurized = sim.pressurized_nodes(vector.open_valves)

    # Candidates: closed valves with exactly one pressurized end — opening
    # anything else changes no reading.
    candidates: list[tuple[Edge, Cell]] = []
    for valve in fpva.valves:
        if valve in vector.open_valves:
            continue
        a_live = valve.a in pressurized
        b_live = valve.b in pressurized
        if a_live == b_live:
            continue
        candidates.append((valve, valve.b if a_live else valve.a))
    if not candidates:
        return set()

    if sim.engine == "kernel":
        # All candidate leaks of this vector in one bit-parallel batch: the
        # leak is observable iff some expected-dark meter lights up.
        kernel = sim.kernel
        rows = kernel.toggled_readings(
            kernel.valve_mask(vector.open_valves),
            [valve for valve, _ in candidates],
            set_bit=True,
        )
        dark_cols = [
            j for j, name in enumerate(kernel.sink_names) if name in dark_sinks
        ]
        return {
            valve
            for (valve, _), row in zip(candidates, rows)
            if any(row[j] for j in dark_cols)
        }

    # engine="object" reference: group dark candidates by their dark-side
    # end cell — all valves leaking into the same dark region share one
    # flood over the open-edge graph.
    g = open_edge_graph(fpva, vector)
    flood_cache: dict[Cell, bool] = {}

    def flood_lights_dark_sink(start: Cell) -> bool:
        if start in flood_cache:
            return flood_cache[start]
        hit = False
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if isinstance(node, Port) and node.name in dark_sinks:
                hit = True
                break
            for nb in g.neighbors(node):
                if nb not in seen:
                    seen.add(nb)
                    queue.append(nb)
        for cell in seen:
            if isinstance(cell, Cell):
                flood_cache[cell] = hit
        flood_cache[start] = hit
        return hit

    return {
        valve for valve, dark_end in candidates if flood_lights_dark_sink(dark_end)
    }


def leak_covered_pairs(
    fpva: FPVA,
    simulator: PressureSimulator,
    vector: TestVector,
    candidate_pairs: Iterable[tuple[Edge, Edge]] | None = None,
    sa0_observable: set[Edge] | None = None,
) -> set[tuple[Edge, Edge]]:
    """Ordered pairs ``(aggressor, victim)`` this vector exercises.

    The vector covers the pair if the aggressor is commanded closed, the
    victim open, and the victim's forced closure (the leak's effect on a
    defective chip) changes a meter reading — i.e. the victim is SA0
    observable.
    """
    pairs = (
        candidate_pairs
        if candidate_pairs is not None
        else iter_ordered_pairs(fpva)
    )
    observable = (
        sa0_observable
        if sa0_observable is not None
        else sa0_observable_valves(simulator, vector, fpva)
    )
    return {
        (aggressor, victim)
        for aggressor, victim in pairs
        if victim in observable and aggressor not in vector.open_valves
    }


def leak_covered_unordered(
    fpva: FPVA,
    simulator: PressureSimulator,
    vector: TestVector,
    candidate_pairs: Iterable[frozenset],
    sa0_observable: set[Edge] | None = None,
) -> set[frozenset]:
    """Unordered leak pairs this vector exercises.

    The Fig 3(d) defect is symmetric (either pressurized line closes both
    valves), so one exercised direction detects the leak: some vector must
    hold one valve of the pair closed while the other is open on a live,
    observed path.
    """
    observable = (
        sa0_observable
        if sa0_observable is not None
        else sa0_observable_valves(simulator, vector, fpva)
    )
    out: set[frozenset] = set()
    for pair in candidate_pairs:
        a, b = tuple(pair)
        if (b in observable and a not in vector.open_valves) or (
            a in observable and b not in vector.open_valves
        ):
            out.add(pair)
    return out


@dataclass
class CoverageReport:
    """Full-suite coverage ledger."""

    sa0_covered: set[Edge] = field(default_factory=set)
    sa1_covered: set[Edge] = field(default_factory=set)
    leak_pairs_covered: set[frozenset] = field(default_factory=set)
    sa0_missing: set[Edge] = field(default_factory=set)
    sa1_missing: set[Edge] = field(default_factory=set)
    leak_pairs_missing: set[frozenset] = field(default_factory=set)

    @property
    def complete_stuck_at(self) -> bool:
        return not self.sa0_missing and not self.sa1_missing

    @property
    def complete(self) -> bool:
        return self.complete_stuck_at and not self.leak_pairs_missing

    def summary(self) -> str:
        return (
            f"SA0 {len(self.sa0_covered)} covered / {len(self.sa0_missing)} missing; "
            f"SA1 {len(self.sa1_covered)} covered / {len(self.sa1_missing)} missing; "
            f"leak pairs {len(self.leak_pairs_covered)} covered / "
            f"{len(self.leak_pairs_missing)} missing"
        )


def measure_coverage(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    include_leak_pairs: bool = True,
    simulator: PressureSimulator | None = None,
    context: ExecutionContext | None = None,
) -> CoverageReport:
    """Observability-based coverage of a suite over the array's fault list."""
    sim = simulator or ExecutionContext.resolve(context, fpva).simulator
    report = CoverageReport()
    all_pairs: set[frozenset] = set()
    if include_leak_pairs:
        from repro.fpva.control import control_adjacent_pairs
        from repro.sim.faults import untestable_leak_pairs

        all_pairs = set(control_adjacent_pairs(fpva)) - set(
            untestable_leak_pairs(fpva)
        )
    for vector in vectors:
        sa0 = sa0_observable_valves(sim, vector, fpva)
        report.sa0_covered |= sa0
        report.sa1_covered |= sa1_observable_valves(sim, vector, fpva)
        if include_leak_pairs:
            remaining = all_pairs - report.leak_pairs_covered
            report.leak_pairs_covered |= leak_covered_unordered(
                fpva, sim, vector, candidate_pairs=remaining, sa0_observable=sa0
            )
    valves = set(fpva.valves)
    report.sa0_missing = valves - report.sa0_covered
    report.sa1_missing = valves - report.sa1_covered
    if include_leak_pairs:
        report.leak_pairs_missing = all_pairs - report.leak_pairs_covered
    return report
