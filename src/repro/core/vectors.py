"""Test vectors and test sets.

A *test vector* (section II, problem formulation) defines the open/closed
state of every valve while test pressure is applied at the source ports and
read at the sink ports.  We store the commanded-open valve set (every valve
not listed is commanded closed — both flow-path and cut-set vectors are
naturally sparse in one direction) together with the fault-free expected
meter readings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.fpva.array import FPVA
from repro.fpva.components import ValveState
from repro.fpva.geometry import Cell, Edge


class VectorKind(enum.Enum):
    """Which family a vector belongs to (Table I columns)."""

    FLOW_PATH = "flow-path"  # detects stuck-at-0 (n_p)
    CUT_SET = "cut-set"  # detects stuck-at-1 (n_c)
    LEAKAGE = "control-leakage"  # detects control-layer leakage (n_l)
    BASELINE = "baseline"  # naive single-valve vectors


@dataclass(frozen=True)
class TestVector:
    """One applied pattern plus its fault-free expected observation.

    ``open_valves`` are commanded open; every other valve of the array is
    commanded closed.  ``expected`` maps sink-port names to the pressure
    reading a defect-free chip produces.  ``provenance`` records the
    structure the vector was derived from (path cells, wall junctions, ...)
    for rendering and debugging.
    """

    __test__ = False  # not a pytest test class despite the name

    name: str
    kind: VectorKind
    open_valves: frozenset[Edge]
    expected: Mapping[str, bool]
    provenance: tuple = ()

    def state_of(self, valve: Edge) -> ValveState:
        """Commanded state of a valve under this vector."""
        return (
            ValveState.OPEN if valve in self.open_valves else ValveState.CLOSED
        )

    def closed_valves(self, fpva: FPVA) -> frozenset[Edge]:
        """All valves commanded closed on ``fpva``."""
        return frozenset(fpva.valves) - self.open_valves

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind.value,
            "open_valves": sorted([list(v.a), list(v.b)] for v in self.open_valves),
            "expected": dict(self.expected),
        }

    def __repr__(self):
        return (
            f"TestVector({self.name!r}, {self.kind.value}, "
            f"{len(self.open_valves)} open)"
        )


@dataclass
class TestSet:
    """The complete generated suite for one array.

    Sections mirror Table I: ``flow_paths`` (n_p), ``cut_sets`` (n_c) and
    ``leakage`` (n_l).
    """

    __test__ = False  # not a pytest test class despite the name

    fpva: FPVA
    flow_paths: list[TestVector] = field(default_factory=list)
    cut_sets: list[TestVector] = field(default_factory=list)
    leakage: list[TestVector] = field(default_factory=list)

    @property
    def np_paths(self) -> int:
        return len(self.flow_paths)

    @property
    def nc_cuts(self) -> int:
        return len(self.cut_sets)

    @property
    def nl_leak(self) -> int:
        return len(self.leakage)

    @property
    def total(self) -> int:
        """Total vector count N = n_p + n_c + n_l."""
        return self.np_paths + self.nc_cuts + self.nl_leak

    def __iter__(self) -> Iterator[TestVector]:
        yield from self.flow_paths
        yield from self.cut_sets
        yield from self.leakage

    def __len__(self) -> int:
        return self.total

    def all_vectors(self) -> list[TestVector]:
        return list(self)

    def summary(self) -> str:
        return (
            f"{self.fpva.name}: N={self.total} "
            f"(n_p={self.np_paths}, n_c={self.nc_cuts}, n_l={self.nl_leak})"
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the suite (for archiving generated vectors)."""
        payload = {
            "array": self.fpva.name,
            "dimensions": [self.fpva.nr, self.fpva.nc],
            "flow_paths": [v.to_dict() for v in self.flow_paths],
            "cut_sets": [v.to_dict() for v in self.cut_sets],
            "leakage": [v.to_dict() for v in self.leakage],
        }
        return json.dumps(payload, indent=indent)


def vector_from_open_set(
    fpva: FPVA,
    name: str,
    kind: VectorKind,
    open_valves: Iterable[Edge],
    expected: Mapping[str, bool],
    provenance: tuple = (),
) -> TestVector:
    """Build a vector, checking every opened edge is a real valve."""
    open_set = frozenset(open_valves)
    bogus = open_set - fpva.valve_set
    if bogus:
        raise ValueError(f"vector {name!r} opens non-valve edges: {sorted(bogus)[:3]}")
    return TestVector(
        name=name,
        kind=kind,
        open_valves=open_set,
        expected=dict(expected),
        provenance=provenance,
    )
