"""Test generation for FPVAs — the paper's primary contribution."""

from repro.core.baseline import BaselineGenerator, BaselineResult
from repro.core.coverage import (
    CoverageReport,
    leak_covered_pairs,
    measure_coverage,
    sa0_observable_valves,
    sa1_observable_valves,
)
from repro.core.cutsets import CutSetGenerator, CutSetResult, Wall, closure_repair
from repro.core.heuristic import GreedyPathGenerator
from repro.core.hierarchy import BlockGrid, HierarchicalPathGenerator, block_graph
from repro.core.leakage import LeakageGenerator, LeakageResult
from repro.core.pathmodel import (
    CoverPath,
    PathCoverError,
    PathCoverILP,
    PathCoverProblem,
    PathCoverSolution,
    edge_key,
    solve_path_cover,
)
from repro.core.paths import FlowPathGenerator, FlowPathResult, build_flow_path_problem
from repro.core.render import coverage_map, render_array, render_paths, render_vector
from repro.core.repair import (
    HardeningReport,
    find_masked_stuck_pairs,
    harden_double_faults,
    synthesize_pair_breaker,
)
from repro.core.routing import (
    RoutingError,
    contracted_cell_graph,
    disjoint_route_through,
    route_valves,
    shortest_route,
)
from repro.core.testgen import (
    GeneratedSuite,
    GenerationReport,
    TestGenerator,
    generate_suite,
)
from repro.core.validate import (
    TwoFaultAudit,
    ValidationReport,
    audit_two_fault_detection,
    validate_suite,
    validate_vector,
)
from repro.core.vectors import TestSet, TestVector, VectorKind, vector_from_open_set

__all__ = [
    "BaselineGenerator",
    "BaselineResult",
    "CoverageReport",
    "leak_covered_pairs",
    "measure_coverage",
    "sa0_observable_valves",
    "sa1_observable_valves",
    "CutSetGenerator",
    "CutSetResult",
    "Wall",
    "closure_repair",
    "GreedyPathGenerator",
    "BlockGrid",
    "HierarchicalPathGenerator",
    "block_graph",
    "LeakageGenerator",
    "LeakageResult",
    "CoverPath",
    "PathCoverError",
    "PathCoverILP",
    "PathCoverProblem",
    "PathCoverSolution",
    "edge_key",
    "solve_path_cover",
    "FlowPathGenerator",
    "FlowPathResult",
    "build_flow_path_problem",
    "coverage_map",
    "render_array",
    "render_paths",
    "render_vector",
    "HardeningReport",
    "find_masked_stuck_pairs",
    "harden_double_faults",
    "synthesize_pair_breaker",
    "RoutingError",
    "contracted_cell_graph",
    "disjoint_route_through",
    "route_valves",
    "shortest_route",
    "GeneratedSuite",
    "GenerationReport",
    "TestGenerator",
    "generate_suite",
    "TwoFaultAudit",
    "ValidationReport",
    "audit_two_fault_detection",
    "validate_suite",
    "validate_vector",
    "TestSet",
    "TestVector",
    "VectorKind",
    "vector_from_open_set",
]
