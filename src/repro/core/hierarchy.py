"""Hierarchical flow-path generation (section III-B-4).

The direct ILP does not scale past ~10x10, so the paper partitions the
array into subblocks (5x5 in all experiments), solves a top-level ILP whose
paths fix the flow *direction* through each subblock, solves per-subblock
ILPs for subpaths consistent with those directions, and stitches subpaths
into chip-level test paths ("a subpath should be included at least once").

This module follows that structure with one engineering refinement: the
per-block subproblems are solved on sliding two-block *corridor windows*
along each top-level route, so a single stitched path may weave across a
block border several times and cover all of the border's valves in one
pass (the behaviour visible in the paper's Fig 8(b)).  Concretely:

1. the top level is the block-adjacency graph; the same path-cover ILP used
   everywhere else generates routes covering every block border;
2. a chip-level path is built by walking a route window by window: each
   window solves a small fixed-usage ILP maximizing newly-covered valves
   from the current entry cell to the border of the next window (or to the
   sink port in the last window), within the window's unused cells;
3. routes are re-walked in passes until every valve is covered
   (observability-checked); a max-flow routed mop-up path handles any
   pathological leftovers, guaranteeing termination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from repro.context import ExecutionContext
from repro.core.coverage import sa0_observable_valves
from repro.core.pathmodel import (
    CoverPath,
    PathCoverILP,
    PathCoverProblem,
    edge_key,
    solve_path_cover,
)
from repro.core.paths import FlowPathResult, channel_region_caps, path_to_vector
from repro.core.routing import RoutingError, disjoint_route_through
from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.fpva.components import EdgeKind
from repro.fpva.geometry import Cell, Edge
from repro.fpva.graph import cell_graph
from repro.fpva.ports import Port
from repro.ilp import SolveOptions

BlockId = tuple[int, int]


@dataclass(frozen=True)
class BlockGrid:
    """Partition of an array into ``subblock x subblock`` cell blocks."""

    fpva: FPVA
    subblock: int = 5

    @property
    def brows(self) -> int:
        return -(-self.fpva.nr // self.subblock)

    @property
    def bcols(self) -> int:
        return -(-self.fpva.nc // self.subblock)

    def block_of(self, cell: Cell) -> BlockId:
        return (
            (cell.r - 1) // self.subblock + 1,
            (cell.c - 1) // self.subblock + 1,
        )

    def cells_of(self, block: BlockId) -> list[Cell]:
        bi, bj = block
        out = []
        for r in range((bi - 1) * self.subblock + 1, min(bi * self.subblock, self.fpva.nr) + 1):
            for c in range((bj - 1) * self.subblock + 1, min(bj * self.subblock, self.fpva.nc) + 1):
                cell = Cell(r, c)
                if self.fpva.is_cell(cell):
                    out.append(cell)
        return out

    def border_valves(self, b1: BlockId, b2: BlockId) -> list[Edge]:
        """Valves crossing between two (adjacent) blocks."""
        out = []
        for valve in self.fpva.valves:
            blocks = {self.block_of(valve.a), self.block_of(valve.b)}
            if blocks == {b1, b2}:
                out.append(valve)
        return out

    def hierarchy_label(self) -> str:
        """Table I's "Top" column, e.g. ``"4x4"`` for 20x20 / 5x5 blocks."""
        return f"{self.brows}x{self.bcols}"


def block_graph(grid: BlockGrid) -> nx.Graph:
    """Top-level graph: blocks as nodes, shared borders as edges."""
    fpva = grid.fpva
    g = nx.Graph()
    borders: dict[frozenset, list[Edge]] = {}
    for edge in fpva.flow_edges:
        ba, bb = grid.block_of(edge.a), grid.block_of(edge.b)
        if ba != bb:
            borders.setdefault(frozenset((ba, bb)), []).append(edge)
        else:
            g.add_node(ba)
    for pair, edges in borders.items():
        b1, b2 = tuple(pair)
        g.add_edge(b1, b2, border=edges)
    for port in fpva.ports:
        block = grid.block_of(fpva.port_cell(port))
        g.add_edge(port, block, border=[])
    return g


@dataclass
class HierarchicalReport:
    """Diagnostics from one hierarchical generation run."""

    routes: list[tuple[Hashable, ...]] = field(default_factory=list)
    passes: int = 0
    window_solves: int = 0
    targeted_walks: int = 0
    mopup_paths: int = 0
    wall_time: float = 0.0


class HierarchicalPathGenerator:
    """Flow-path generation via top-level routes and corridor-window ILPs."""

    def __init__(
        self,
        fpva: FPVA,
        subblock: int = 5,
        solve_options: SolveOptions | None = None,
        window_options: SolveOptions | None = None,
        max_passes: int = 16,
        context: ExecutionContext | None = None,
    ):
        self.fpva = fpva
        self.grid = BlockGrid(fpva, subblock)
        self.solve_options = solve_options or SolveOptions(time_limit=60.0)
        self.window_options = window_options or SolveOptions(time_limit=15.0)
        self.max_passes = max_passes
        self.context = ExecutionContext.resolve(context, fpva)
        self.simulator = self.context.simulator
        self.graph = cell_graph(fpva)
        self.report = HierarchicalReport()

    # -- top level -----------------------------------------------------------
    def top_level_routes(self) -> list[tuple[Hashable, ...]]:
        """Simple port→port routes in the block graph covering every border."""
        g = block_graph(self.grid)
        cover = {
            edge_key(u, v)
            for u, v, data in g.edges(data=True)
            if data["border"]
        }
        problem = PathCoverProblem(
            graph=g,
            terminals_a=list(self.fpva.sources),
            terminals_b=list(self.fpva.sinks),
            cover_edges=cover,
        )
        solution = solve_path_cover(problem, solve_options=self.solve_options)
        routes = [p.nodes for p in solution.paths]
        if not routes:
            # No block borders to cover (e.g. a single-block array): the
            # optimum is zero paths, but walking still needs one route.
            routes = [
                tuple(
                    nx.shortest_path(g, self.fpva.sources[0], self.fpva.sinks[0])
                )
            ]
        return routes

    # -- window subproblem ----------------------------------------------------
    def _window_path(
        self,
        allowed: set,
        entry: Hashable,
        exits: Sequence[Hashable],
        uncovered: set[Edge],
    ) -> list[Hashable] | None:
        """Best simple path entry→exit inside the window, or None.

        Maximizes the number of uncovered valves used; falls back to a plain
        shortest path when the ILP yields nothing within its budget.
        """
        sub = self.graph.subgraph(allowed)
        exits = [e for e in exits if e in sub]
        if entry not in sub or not exits:
            return None
        weights = {}
        closure = set()
        for u, v, data in sub.edges(data=True):
            if data["kind"] is EdgeKind.VALVE and data["edge"] in uncovered:
                weights[edge_key(u, v)] = 1.0
            elif data["kind"] is EdgeKind.CHANNEL:
                closure.add(edge_key(u, v))
        problem = PathCoverProblem(
            graph=sub,
            terminals_a=[entry],
            terminals_b=exits,
            cover_edges=set(),
            closure_edges=closure,
            region_caps=channel_region_caps(self.fpva, sub),
        )
        self.report.window_solves += 1
        if weights:
            ilp = PathCoverILP(
                problem,
                num_paths=1,
                fixed_usage=True,
                objective_weights=weights,
                required_coverage=False,
            )
            solution = ilp.solve(self.window_options)
            if solution is not None and solution.paths:
                return list(solution.paths[0].nodes)
        # Fallback: any connection keeps the walk alive.
        best = None
        for target in exits:
            try:
                nodes = nx.shortest_path(sub, entry, target)
            except nx.NetworkXNoPath:
                continue
            if best is None or len(nodes) < len(best):
                best = nodes
        return best

    # -- route walking ---------------------------------------------------------
    def _walk_route(
        self, route: Sequence[Hashable], uncovered: set[Edge]
    ) -> list[Hashable] | None:
        """One chip-level path along a top-level route."""
        source = route[0]
        sink = route[-1]
        blocks = [n for n in route if not isinstance(n, Port)]
        if not blocks:
            return None

        nodes: list[Hashable] = [source]
        used: set[Hashable] = {source}
        entry: Hashable = source

        for i in range(len(blocks)):
            last_window = i + 2 >= len(blocks)
            window_cells = set(self.grid.cells_of(blocks[i]))
            if i + 1 < len(blocks):
                window_cells |= set(self.grid.cells_of(blocks[i + 1]))
            allowed = (window_cells - used) | {entry}

            if last_window:
                allowed.add(sink)
                exits: list[Hashable] = [sink]
            else:
                # Exit anywhere in block i+1 that can cross into block i+2.
                nxt_border = self.grid.border_valves(blocks[i + 1], blocks[i + 2])
                exits = sorted(
                    {
                        end
                        for valve in nxt_border
                        for end in valve.cells
                        if self.grid.block_of(end) == blocks[i + 1]
                        and end not in used
                    }
                )
            segment = self._window_path(allowed, entry, exits, uncovered)
            if segment is None:
                return None
            nodes.extend(segment[1:])
            used.update(segment)
            # A channel region is one pressure node; once this walk touches
            # it, re-entering from a later window would short the two path
            # segments together (the region caps inside one window cannot
            # see across windows).  Consume the whole region.
            segment_cells = set(segment)
            for region in self.fpva.channel_components:
                if region & segment_cells:
                    used.update(region)
            if last_window:
                return nodes

            # Cross into block i+2, preferring an uncovered border valve.
            exit_cell = segment[-1]
            candidates = []
            for valve in self.grid.border_valves(blocks[i + 1], blocks[i + 2]):
                if exit_cell in valve.cells:
                    landing = valve.other(exit_cell)
                    if landing not in used:
                        candidates.append((valve, landing))
            if not candidates:
                return None
            candidates.sort(key=lambda it: (it[0] not in uncovered, it[0]))
            valve, landing = candidates[0]
            nodes.append(landing)
            used.add(landing)
            entry = landing
        return None

    # -- public API --------------------------------------------------------------
    def generate(self) -> FlowPathResult:
        start = time.perf_counter()
        routes = self.top_level_routes()
        self.report.routes = routes

        uncovered: set[Edge] = set(self.fpva.valves)
        vectors: list[TestVector] = []
        paths: list[CoverPath] = []

        # Walking a route reversed (sink→source) shifts the window phasing
        # and reaches cells the forward walk leaves behind; the resulting
        # vector is identical in kind (paths are undirected).
        walk_list = list(routes) + [tuple(reversed(r)) for r in routes]
        for _ in range(self.max_passes):
            if not uncovered:
                break
            self.report.passes += 1
            progress = False
            for route in walk_list:
                if not uncovered:
                    break
                node_seq = self._walk_route(route, uncovered)
                if node_seq is None:
                    continue
                vector, observable = self._emit(node_seq, len(vectors))
                newly = observable & uncovered
                if not newly:
                    continue
                vectors.append(vector)
                paths.append(_cover_path(node_seq))
                uncovered -= observable
                progress = True
            if not progress:
                break

        # Targeted corridor walks: aim a fresh route at the blocks holding
        # the most uncovered valves and walk them.  This handles blocks the
        # minimal top-level routes graze only briefly.
        max_targeted = 4 * self.grid.brows * self.grid.bcols
        while uncovered and self.report.targeted_walks < max_targeted:
            counts: dict[BlockId, int] = {}
            for valve in uncovered:
                for cell in valve.cells:
                    block = self.grid.block_of(cell)
                    counts[block] = counts.get(block, 0) + 1
            progressed = False
            for target in sorted(counts, key=lambda b: counts[b], reverse=True):
                route = self._route_through_block(target)
                if route is None:
                    continue
                for candidate in (route, tuple(reversed(route))):
                    node_seq = self._walk_route(candidate, uncovered)
                    if node_seq is None:
                        continue
                    vector, observable = self._emit(node_seq, len(vectors))
                    newly = observable & uncovered
                    if not newly:
                        continue
                    vectors.append(vector)
                    paths.append(_cover_path(node_seq))
                    uncovered -= observable
                    self.report.targeted_walks += 1
                    progressed = True
                    break
                if progressed:
                    break
            if not progressed:
                break

        # Mop-up: route a dedicated simple path through each leftover valve.
        for valve in sorted(uncovered.copy()):
            if valve not in uncovered:
                continue
            try:
                node_seq = disjoint_route_through(self.fpva, valve, graph=self.graph)
            except RoutingError:
                continue
            vector, observable = self._emit(node_seq, len(vectors))
            if not observable & uncovered:
                continue
            vectors.append(vector)
            paths.append(_cover_path(node_seq))
            uncovered -= observable
            self.report.mopup_paths += 1

        self.report.wall_time = time.perf_counter() - start
        if uncovered:
            raise RuntimeError(
                f"hierarchical generation left {len(uncovered)} valves "
                f"uncovered on {self.fpva.name}: {sorted(uncovered)[:5]}"
            )
        return FlowPathResult(
            vectors=vectors,
            paths=paths,
            proven_optimal=False,
            wall_time=self.report.wall_time,
        )

    def _route_through_block(self, block: BlockId) -> tuple[Hashable, ...] | None:
        """A simple block-graph route source→``block``→sink (max-flow)."""
        g = block_graph(self.grid)
        if block not in g:
            return None
        src = self.fpva.sources[0]
        snk = self.fpva.sinks[0]
        d = nx.DiGraph()
        for n in g.nodes:
            d.add_edge((n, "in"), (n, "out"), capacity=1)
        for u, v in g.edges:
            d.add_edge((u, "out"), (v, "in"), capacity=1)
            d.add_edge((v, "out"), (u, "in"), capacity=1)
        d.add_edge("S*", (src, "in"), capacity=1)
        d.add_edge("S*", (snk, "in"), capacity=1)
        d.edges[(block, "in"), (block, "out")]["capacity"] = 2
        d.add_edge((block, "out"), "T*", capacity=2)
        flow_value, flow = nx.maximum_flow(d, "S*", "T*")
        if flow_value < 2:
            return None
        legs = []
        for start in (src, snk):
            leg = [start]
            node = start
            for _ in range(g.number_of_nodes() + 1):
                nxt = next(
                    (
                        w
                        for w, amt in flow[(node, "out")].items()
                        if amt >= 1 and w != "T*"
                    ),
                    None,
                )
                if nxt is None:
                    break
                leg.append(nxt[0])
                node = nxt[0]
                if node == block:
                    break
            if leg[-1] != block:
                return None
            legs.append(leg)
        return tuple(legs[0] + list(reversed(legs[1]))[1:])

    def _emit(self, node_seq: list[Hashable], index: int) -> tuple[TestVector, set[Edge]]:
        path = _cover_path(node_seq)
        vector = path_to_vector(self.fpva, path, self.simulator, f"path{index}")
        observable = sa0_observable_valves(self.simulator, vector, self.fpva)
        return vector, observable


def _cover_path(nodes: Sequence[Hashable]) -> CoverPath:
    if len(set(nodes)) != len(nodes):
        raise RuntimeError("stitched path revisits a node — not a simple path")
    edges = tuple(edge_key(u, v) for u, v in zip(nodes, nodes[1:]))
    return CoverPath(nodes=tuple(nodes), edges=edges)
