"""Double-fault hardening: close the mixed-polarity masking gap.

The generated suite detects every single stuck-at fault by construction,
and same-polarity pairs cannot hide from it: meter readings are monotone
in the effective open set, so a second stuck-at-0 only darkens an
already-failing flow-path reading further, and a second stuck-at-1 only
brightens an already-failing cut reading.  The one genuinely adversarial
class is the *mixed* pair — ``SA0(e1)`` masked by ``SA1(e2)``:

* the flow path that would expose ``e1`` goes dark at ``e1``, but the
  permanently open ``e2`` re-routes pressure around the break and the
  expected meter lights anyway;
* the cut vector that would expose ``e2``'s leak needs the leak's route
  to the meter, which the broken ``e1`` severs.

Hypothesis found exactly this on a 5x4 obstacle layout (a stored
counterexample now pinned in ``tests/test_repair.py``).  This module
audits a generated suite for mixed pairs the suite misses and
synthesizes one breaker vector per miss:

* **detour path** — a source→sink flow path through ``e1`` that avoids
  the free cells of ``e2`` entirely, so the forced-open ``e2`` dangles
  into a dead end instead of bypassing the break;
* **leak probe** — failing that, a route through ``e2`` that avoids
  ``e1``, opened everywhere *except* ``e2``: a legal cut-style vector
  (all meters dark when healthy) that lights up through the leaking
  ``e2`` no matter what ``e1`` does.

Every synthesized vector is verified by simulation before it is added.
Adding vectors is monotone — it can only grow the set of detected fault
combinations — so one audit/synthesize round suffices.

The quadratic audit is the hot path, and on a kernel-engine session it
runs **batched**: for an ordered pair ``(SA0(e0), SA1(e1))`` with
``e0 != e1`` the effective open mask of vector ``m`` factorizes as
``(m & ~bit(e0)) | bit(e1)``, so per vector only
``(opens + 1) x (closeds + 1)`` distinct scenarios exist.  They are
registered through the shared :class:`~repro.sim.kernel.BatchEvaluator`
(64 scenarios per machine word, deduplicated across vectors) and the
full pair-by-pair verdict matrix falls out of two fancy-indexing ORs —
no per-pair simulation at all.  An ``engine="object"`` session keeps the
original chip-at-a-time loop as the reference; both orders of audit
produce identical reports and identical synthesized vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.context import ExecutionContext
from repro.core.routing import RoutingError, disjoint_route_through, route_valves
from repro.core.vectors import TestSet, TestVector, VectorKind, vector_from_open_set
from repro.fpva.array import FPVA
from repro.sim.faults import StuckAt0, StuckAt1
from repro.sim.kernel import BatchEvaluator, SinkCoverageError
from repro.sim.pressure import PressureSimulator
from repro.sim.tester import Tester


@dataclass
class HardeningReport:
    """What the double-fault hardening pass found and fixed."""

    pairs_audited: int = 0
    pairs_missed: list[tuple[StuckAt0, StuckAt1]] = field(default_factory=list)
    vectors_added: list[TestVector] = field(default_factory=list)
    pairs_unrepaired: list[tuple[StuckAt0, StuckAt1]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.pairs_unrepaired


def _find_masked_batched(
    fpva: FPVA, evaluator: BatchEvaluator
) -> tuple[int, list[tuple[StuckAt0, StuckAt1]]]:
    """Bit-parallel audit of every ordered mixed pair.

    Registers each vector's ``(cleared-open, set-closed)`` scenario grid
    with the evaluator, flushes once, and ORs per-vector failure grids
    into the full ``valve x valve`` detection matrix by fancy indexing
    (row = which open valve the SA0 clears, ``0`` when it clears nothing;
    column = which closed valve the SA1 sets, ``0`` when it sets
    nothing).  Pair order and verdicts are identical to the serial loop.
    """
    kernel = evaluator.kernel
    valves = list(fpva.valves)
    n = len(valves)
    vidx = {v: i for i, v in enumerate(valves)}
    bit = {v: 1 << kernel.valve_index[v] for v in valves}

    grids: list[tuple[int, list[list[int]], np.ndarray, np.ndarray]] = []
    slot = evaluator.slot
    for mi, vec in enumerate(evaluator.vectors):
        m = evaluator.commanded_masks[mi]
        open_vs = [v for v in valves if v in vec.open_valves]
        closed_vs = [v for v in valves if v not in vec.open_valves]
        r_map = np.zeros(n, dtype=np.intp)
        for k, v in enumerate(open_vs):
            r_map[vidx[v]] = k + 1
        c_map = np.zeros(n, dtype=np.intp)
        for k, v in enumerate(closed_vs):
            c_map[vidx[v]] = k + 1
        grid = []
        for e0 in (None, *open_vs):
            m0 = m if e0 is None else m & ~bit[e0]
            grid.append([slot(m0, 0)] + [slot(m0 | bit[e1], 0) for e1 in closed_vs])
        grids.append((mi, grid, r_map, c_map))
    evaluator.flush()

    detected = np.zeros((n, n), dtype=bool)
    for mi, grid, r_map, c_map in grids:
        fails = evaluator.failed_grid(mi, grid)
        detected |= fails[np.ix_(r_map, c_map)]
    np.fill_diagonal(detected, True)  # e0 == e1 is not an audited pair

    sa0s = [StuckAt0(v) for v in valves]
    sa1s = [StuckAt1(v) for v in valves]
    missed = [
        (sa0s[i0], sa1s[i1]) for i0, i1 in np.argwhere(~detected)
    ]
    return n * (n - 1), missed


def find_masked_stuck_pairs(
    fpva: FPVA,
    vectors,
    tester: Tester | None = None,
    context: ExecutionContext | None = None,
) -> tuple[int, list[tuple[StuckAt0, StuckAt1]]]:
    """All undetected ``(SA0, SA1)`` pairs under ``vectors``.

    Only mixed-polarity pairs are audited — the monotonicity argument in
    the module docstring rules the rest out.  On a kernel-engine session
    (the default) the audit is batched; an ``engine="object"`` context
    (or an object-engine ``tester``) takes the serial reference loop.
    """
    vectors = list(vectors)
    if tester is None:
        context = ExecutionContext.resolve(context, fpva)
        tester = context.tester
    if tester.simulator.engine == "kernel":
        evaluator = None
        try:
            if context is not None:
                evaluator = context.evaluator(vectors)
            else:
                evaluator = BatchEvaluator(tester.simulator.kernel, vectors)
        except SinkCoverageError:
            pass  # partial expectations: fall through to the serial loop
        if evaluator is not None:
            return _find_masked_batched(fpva, evaluator)
    audited = 0
    missed: list[tuple[StuckAt0, StuckAt1]] = []
    for v0 in fpva.valves:
        sa0 = StuckAt0(v0)
        for v1 in fpva.valves:
            if v1 == v0:
                continue
            audited += 1
            pair = (sa0, StuckAt1(v1))
            if not tester.detects(list(pair), vectors):
                missed.append(pair)
    return audited, missed


def synthesize_pair_breaker(
    fpva: FPVA,
    sa0: StuckAt0,
    sa1: StuckAt1,
    simulator: PressureSimulator,
    tester: Tester,
    name: str,
) -> TestVector | None:
    """One vector that a chip carrying exactly ``{sa0, sa1}`` fails."""
    e1, e2 = sa0.valve, sa1.valve

    # Detour path: through e1, never touching e2's free cells, so the
    # stuck-open e2 cannot reconnect the severed route.
    free_cells = set(e2.cells) - set(e1.cells)
    avoid = {
        valve
        for valve in fpva.valves
        if set(valve.cells) & free_cells and valve != e1
    }
    avoid.add(e2)
    try:
        route = disjoint_route_through(fpva, e1, avoid_valves=avoid)
        open_valves = frozenset(route_valves(fpva, route))
        vector = vector_from_open_set(
            fpva,
            name,
            VectorKind.FLOW_PATH,
            open_valves,
            simulator.meter_readings(open_valves),
            provenance=("harden-detour", e1, e2),
        )
        if tester.detects([sa0, sa1], [vector]):
            return vector
    except RoutingError:
        pass

    # Leak probe: a route through e2 that avoids e1, opened except for e2
    # itself.  Healthy chips read dark; the leaking e2 completes the route
    # and e1 is not on it, so the pair cannot mask the light-up.
    try:
        route = disjoint_route_through(fpva, e2, avoid_valves={e1})
        open_valves = frozenset(route_valves(fpva, route)) - {e2}
        vector = vector_from_open_set(
            fpva,
            name,
            VectorKind.CUT_SET,
            open_valves,
            simulator.meter_readings(open_valves),
            provenance=("harden-probe", e1, e2),
        )
        if tester.detects([sa0, sa1], [vector]):
            return vector
    except RoutingError:
        pass
    return None


def harden_double_faults(
    fpva: FPVA,
    testset: TestSet,
    context: ExecutionContext | None = None,
) -> HardeningReport:
    """Audit ``testset`` for masked mixed pairs and append breaker vectors.

    Exhaustive over ordered (SA0, SA1) valve pairs; the audit itself is
    batched through the session's evaluator (see
    :func:`find_masked_stuck_pairs`), so arrays well past the old
    benchmark scale stay practical.
    """
    context = ExecutionContext.resolve(context, fpva)
    tester = context.tester
    simulator = context.simulator
    report = HardeningReport()
    report.pairs_audited, missed = find_masked_stuck_pairs(
        fpva, testset.all_vectors(), tester, context=context
    )
    report.pairs_missed = missed
    for i, (sa0, sa1) in enumerate(missed):
        if tester.detects([sa0, sa1], report.vectors_added):
            continue  # an earlier breaker already covers this pair
        vector = synthesize_pair_breaker(
            fpva, sa0, sa1, simulator, tester, name=f"harden{i}"
        )
        if vector is None:
            report.pairs_unrepaired.append((sa0, sa1))
            continue
        report.vectors_added.append(vector)
        if vector.kind is VectorKind.FLOW_PATH:
            testset.flow_paths.append(vector)
        else:
            testset.cut_sets.append(vector)
    return report
