"""Cut-set test generation (section III-C).

A cut-set is a set of closed valves that completely separates the source
ports from the sink ports; with every other valve open, any pressure at a
meter exposes a stuck-at-1 fault.  Geometrically a cut-set is a *wall*: a
path in the planar dual (junction) graph from one boundary arc to the other
(the arcs come from the Fig 7(d) boundary search, implemented in
:func:`repro.fpva.graph.boundary_arcs`).

Two generation strategies are provided:

* ``"ilp"`` — the paper's approach: the same path-cover ILP as flow paths,
  instantiated on the junction graph, with constraint (9) applied to every
  dual edge so the two-fault masking patterns of Fig 5(c)/(d) cannot occur
  (a wall may never pass two junctions of a valve without closing it).
* ``"sweep"`` — the scalable generator: one straight wall per grid line
  (n_r + n_c − 2 walls on a full array — exactly the paper's Table I n_c
  column), detoured around channels and obstacles by weighted dual-graph
  shortest paths, with per-valve mop-up walls for anything left uncovered.

Every generated wall is verified with the pressure simulator: it must
separate all sources from all sinks, and a valve only counts as covered if
its single leak (opening just that valve) is observable at a meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from repro.context import ExecutionContext
from repro.core.pathmodel import (
    CoverPath,
    PathCoverProblem,
    edge_key,
    solve_path_cover,
)
from repro.core.vectors import TestVector, VectorKind, vector_from_open_set
from repro.fpva.array import FPVA
from repro.fpva.geometry import Edge, Junction
from repro.fpva.graph import boundary_arcs, junction_graph
from repro.ilp import SolveOptions


class CutSetError(RuntimeError):
    """Raised when a separating wall cannot be constructed."""


@dataclass
class Wall:
    """One cut-set: the valves to close and the junctions the wall follows."""

    valves: frozenset[Edge]
    junctions: tuple[Junction, ...] = ()

    def __len__(self):
        return len(self.valves)


@dataclass
class CutSetResult:
    """Generated cut-set vectors plus coverage metadata."""

    vectors: list[TestVector]
    walls: list[Wall]
    covered: set[Edge] = field(default_factory=set)
    uncovered: set[Edge] = field(default_factory=set)

    @property
    def nc_cuts(self) -> int:
        return len(self.vectors)


def closure_repair(fpva: FPVA, wall_junctions: Iterable[Junction]) -> set[Edge]:
    """Apply constraint (9) to a junction set: close every valve whose two
    end junctions both lie on the wall.

    For a wall built as a simple dual path this adds the chord valves that
    would otherwise allow the Fig 5(c)/(d) two-fault masking.
    """
    junction_set = set(wall_junctions)
    forced: set[Edge] = set()
    for valve in fpva.valves:
        u, w = valve.dual()
        if u in junction_set and w in junction_set:
            forced.add(valve)
    return forced


class CutSetGenerator:
    """Generates cut-set vectors for one array."""

    def __init__(
        self,
        fpva: FPVA,
        strategy: str = "auto",
        solve_options: SolveOptions | None = None,
        max_walls: int = 128,
        context: ExecutionContext | None = None,
    ):
        if strategy not in ("auto", "ilp", "sweep"):
            raise ValueError(f"unknown cut-set strategy {strategy!r}")
        self.fpva = fpva
        self.strategy = strategy
        self.solve_options = solve_options or SolveOptions(time_limit=120.0)
        self.max_walls = max_walls
        self.context = ExecutionContext.resolve(context, fpva)
        self.simulator = self.context.simulator
        self.dual = junction_graph(fpva)
        self.arcs = boundary_arcs(fpva)

    # -- verification -------------------------------------------------------
    def wall_separates(self, wall: Wall) -> bool:
        """True if closing exactly the wall valves blocks every meter."""
        open_valves = frozenset(self.fpva.valve_set - wall.valves)
        return self.simulator.sink_separated(open_valves)

    def observable_members(self, wall: Wall) -> set[Edge]:
        """Wall valves whose lone leak re-pressurizes some meter.

        Only these count as stuck-at-1 covered by this wall's vector.  On
        a kernel-engine session every member's leak is evaluated in one
        bit-parallel batch.
        """
        base_open = self.fpva.valve_set - wall.valves
        sim = self.simulator
        if sim.engine == "kernel":
            kernel = sim.kernel
            members = sorted(wall.valves)
            rows = kernel.toggled_readings(
                kernel.valve_mask(base_open), members, set_bit=True
            )
            return {valve for valve, row in zip(members, rows) if row.any()}
        out: set[Edge] = set()
        for valve in wall.valves:
            readings = sim.meter_readings(base_open | {valve})
            if any(readings.values()):
                out.add(valve)
        return out

    def wall_to_vector(self, wall: Wall, name: str) -> TestVector:
        open_valves = frozenset(self.fpva.valve_set - wall.valves)
        expected = self.simulator.meter_readings(open_valves)
        if any(expected.values()):
            raise CutSetError(f"wall {name} does not separate source from sinks")
        return vector_from_open_set(
            self.fpva,
            name,
            VectorKind.CUT_SET,
            open_valves,
            expected,
            provenance=tuple(wall.junctions),
        )

    # -- public API ---------------------------------------------------------
    def generate(self) -> CutSetResult:
        strategy = self.strategy
        if strategy == "auto":
            strategy = "ilp" if self.fpva.nr * self.fpva.nc <= 49 else "sweep"
        walls = self._walls_ilp() if strategy == "ilp" else self._walls_sweep()

        result = CutSetResult(vectors=[], walls=[])
        covered: set[Edge] = set()
        for wall in walls:
            observable = self.observable_members(wall)
            if not observable - covered:
                continue  # nothing new: drop redundant wall
            vector = self.wall_to_vector(wall, f"cut{len(result.vectors)}")
            result.vectors.append(vector)
            result.walls.append(wall)
            covered |= observable
        result.covered = covered
        result.uncovered = set(self.fpva.valves) - covered

        # Mop-up: targeted walls for any valve still uncovered.
        for valve in sorted(result.uncovered):
            wall = self._wall_through(valve)
            if wall is None:
                continue
            observable = self.observable_members(wall)
            if valve not in observable:
                continue
            vector = self.wall_to_vector(wall, f"cut{len(result.vectors)}")
            result.vectors.append(vector)
            result.walls.append(wall)
            covered |= observable
        result.covered = covered
        result.uncovered = set(self.fpva.valves) - covered
        return result

    # -- ILP strategy ---------------------------------------------------------
    def _walls_ilp(self) -> list[Wall]:
        """The paper's adaptation of optimization (7)-(8) to the dual graph."""
        g = self.dual
        cover = {
            edge_key(u, v)
            for u, v, data in g.edges(data=True)
            if data["valve"] is not None
        }
        closure = {edge_key(u, v) for u, v in g.edges}
        terminals_a = [j for j in self.arcs.start_arc if j in g]
        terminals_b = [j for j in self.arcs.end_arc if j in g]
        problem = PathCoverProblem(
            graph=g,
            terminals_a=terminals_a,
            terminals_b=terminals_b,
            cover_edges=cover,
            closure_edges=closure,
        )
        solution = solve_path_cover(
            problem,
            max_paths=self.max_walls,
            solve_options=self.solve_options,
        )
        return [self._wall_from_dual_path(p) for p in solution.paths]

    def _wall_from_dual_path(self, path: CoverPath) -> Wall:
        valves: set[Edge] = set()
        for ekey in path.edges:
            u, v = tuple(ekey)
            valve = self.dual.edges[u, v]["valve"]
            if valve is not None:
                valves.add(valve)
        valves |= closure_repair(self.fpva, path.nodes)
        return Wall(valves=frozenset(valves), junctions=tuple(path.nodes))

    # -- sweep strategy ---------------------------------------------------------
    def _walls_sweep(self) -> list[Wall]:
        """Straight row/column walls, detoured around channels/obstacles."""
        nr, nc = self.fpva.nr, self.fpva.nc
        walls: list[Wall] = []
        for j in range(1, nc):  # vertical walls between columns j and j+1
            wall = self._dual_wall(lane=("col", j))
            if wall is not None:
                walls.append(wall)
        for i in range(1, nr):  # horizontal walls between rows i and i+1
            wall = self._dual_wall(lane=("row", i))
            if wall is not None:
                walls.append(wall)
        return walls

    def _dual_wall(self, lane: tuple[str, int]) -> Wall | None:
        """The lane's wall: a lane-hugging dual path between fixed feet.

        The canonical feet are the two perimeter junctions where the
        straight lane wall meets the boundary.  If the resulting wall does
        not separate (a second meter can sit on the wrong side of a
        straight wall), nearby boundary-arc junctions are tried as
        alternative feet — the wall then bends around the offending port.
        Endpoints must stay *fixed* per attempt: leaving them free lets the
        shortest "wall" degenerate into a two-valve box around a port,
        abandoning the lane entirely.
        """
        nr, nc = self.fpva.nr, self.fpva.nc
        kind, index = lane
        if kind == "col":
            foot_a, foot_b = Junction(0, index), Junction(nr, index)
        else:
            foot_a, foot_b = Junction(index, 0), Junction(index, nc)

        def nearest(arc, foot):
            members = [j for j in arc if j in self.dual]
            members.sort(key=lambda j: abs(j.r - foot.r) + abs(j.c - foot.c))
            return members[:6]

        starts = [foot_a] if foot_a in self.dual else []
        ends = [foot_b] if foot_b in self.dual else []
        starts += [j for j in nearest(self.arcs.start_arc, foot_a) if j not in starts]
        ends += [j for j in nearest(self.arcs.end_arc, foot_b) if j not in ends]

        for start in starts[:4]:
            for end in ends[:4]:
                wall = self._lane_path_wall(start, end, lane)
                if wall is not None:
                    return wall
        return None

    def _lane_path_wall(
        self, start: Junction, end: Junction, lane: tuple[str, int]
    ) -> Wall | None:
        """A separating wall along the cheapest lane-hugging dual path."""
        g = self.dual
        if start not in g or end not in g or start == end:
            return None
        kind, index = lane

        def weight(u: Junction, w: Junction, data: dict) -> float:
            base = 1.0 if data["valve"] is not None else 0.0
            coord = (u.c + w.c) / 2 if kind == "col" else (u.r + w.r) / 2
            return base + 0.5 * abs(coord - index) + 0.001

        try:
            nodes = nx.dijkstra_path(g, start, end, weight=weight)
        except nx.NetworkXNoPath:
            return None
        valves: set[Edge] = set()
        for u, w in zip(nodes, nodes[1:]):
            valve = g.edges[u, w]["valve"]
            if valve is not None:
                valves.add(valve)
        valves |= closure_repair(self.fpva, nodes)
        wall = Wall(valves=frozenset(valves), junctions=tuple(nodes))
        if not self.wall_separates(wall):
            return None
        return wall

    def _wall_through(self, valve: Edge) -> Wall | None:
        """Mop-up: a wall forced through ``valve``, kept minimal around it."""
        u, w = valve.dual()
        start_set = [j for j in self.arcs.start_arc if j in self.dual]
        end_set = [j for j in self.arcs.end_arc if j in self.dual]

        def half(src_set: Sequence[Junction], target: Junction, banned: set):
            """Cheapest dual path from any junction in src_set to target."""
            best = None
            g = self.dual
            h = g.copy()
            h.remove_nodes_from([n for n in banned if n in h and n != target])
            for s in src_set:
                if s not in h:
                    continue
                try:
                    nodes = nx.dijkstra_path(
                        h,
                        s,
                        target,
                        weight=lambda a, b, d: (1.0 if d["valve"] else 0.0) + 0.001,
                    )
                except nx.NetworkXNoPath:
                    continue
                if best is None or len(nodes) < len(best):
                    best = nodes
            return best

        for first, second in ((u, w), (w, u)):
            leg1 = half(start_set, first, banned=set())
            if leg1 is None:
                continue
            leg2 = half(end_set, second, banned=set(leg1) - {second})
            if leg2 is None:
                continue
            nodes = tuple(leg1) + tuple(reversed(leg2))
            valves: set[Edge] = {valve}
            g = self.dual
            for a, b in zip(nodes, nodes[1:]):
                if g.has_edge(a, b):
                    vv = g.edges[a, b]["valve"]
                    if vv is not None:
                        valves.add(vv)
            valves |= closure_repair(self.fpva, nodes)
            wall = Wall(valves=frozenset(valves), junctions=nodes)
            if self.wall_separates(wall) and valve in self.observable_members(wall):
                return wall
        return self._boxed_wall_through(valve)

    def _boxed_wall_through(self, valve: Edge) -> Wall | None:
        """Multi-segment fallback: a short barrier through ``valve`` plus an
        isolation box around every meter the barrier leaves pressurized.

        With several meters, a valve lying between two port gaps (e.g. on
        the boundary row between two sinks) cannot sit on any single
        arc-to-arc wall that also isolates both meters — the cut must be a
        *union* of walls.  This goes beyond the paper's single-path model
        but only engages when that model has no answer.
        """
        g = self.dual
        nr, nc = self.fpva.nr, self.fpva.nc
        boundary = [
            j for j in g.nodes if j.r in (0, nr) or j.c in (0, nc)
        ]
        if not boundary:
            return None
        u, w = valve.dual()

        def side_of(j: Junction) -> str:
            if j.r == 0:
                return "north"
            if j.r == nr:
                return "south"
            if j.c == 0:
                return "west"
            return "east"

        def legs_by_side(src: Junction, banned: set) -> dict[str, list[Junction]]:
            """Cheapest path from ``src`` to each chip side's boundary.

            The legs may not use the target valve's own dual edge: the
            barrier must be leg1 + valve + leg2 with both ends on the
            sealed boundary, so the valve sits on the frontier between the
            pressurized and the dark region.
            """
            if src.r in (0, nr) or src.c in (0, nc):
                return {side_of(src): [src]}
            h = g.copy()
            h.remove_nodes_from([n for n in banned if n != src])
            if h.has_edge(u, w):
                h.remove_edge(u, w)
            lengths, paths = nx.single_source_dijkstra(
                h, src, weight=lambda a, b, d: (1.0 if d["valve"] else 0.0) + 0.001
            )
            best: dict[str, Junction] = {}
            for target in boundary:
                if target not in paths:
                    continue
                side = side_of(target)
                if side not in best or lengths[target] < lengths[best[side]]:
                    best[side] = target
            return {side: paths[j] for side, j in best.items()}

        for leg1 in legs_by_side(u, banned=set()).values():
            for leg2 in legs_by_side(w, banned=set(leg1) - {w}).values():
                wall = self._assemble_boxed_wall(valve, leg1, leg2)
                if wall is not None:
                    return wall
        return None

    def _assemble_boxed_wall(
        self, valve: Edge, leg1: list[Junction], leg2: list[Junction]
    ) -> Wall | None:
        """Barrier = leg1 + valve + leg2; box every meter still lit; verify."""
        g = self.dual
        nodes = tuple(reversed(leg1)) + tuple(leg2)
        valves: set[Edge] = {valve}
        for a, b in zip(nodes, nodes[1:]):
            if g.has_edge(a, b):
                vv = g.edges[a, b]["valve"]
                if vv is not None:
                    valves.add(vv)

        for _ in range(len(self.fpva.sinks)):
            readings = self.simulator.meter_readings(
                frozenset(self.fpva.valve_set - valves)
            )
            lit = [name for name, hit in readings.items() if hit]
            if not lit:
                break
            port = self.fpva.port_by_name(lit[0])
            box = self._port_seal(port)
            if box is None:
                return None
            valves |= box
        valves |= closure_repair(self.fpva, nodes)
        wall = Wall(valves=frozenset(valves), junctions=nodes)
        if not self.wall_separates(wall):
            return None
        if valve not in self.observable_members(wall):
            return None
        return wall

    def _port_seal(self, port) -> set[Edge] | None:
        """The minimal valve box sealing one port: the cheapest dual path
        between the two junctions of the port's boundary gap.

        A gap junction sitting on a chip corner has no dual edges at all;
        the seal then anchors at the next junction along the perimeter
        (walking away from the gap) that does appear in the dual graph.
        """
        from repro.fpva.geometry import perimeter_junction_cycle

        g1, g2 = port.gap(self.fpva.nr, self.fpva.nc)
        g = self.dual

        def slide_to_graph(j: Junction, away_from: Junction) -> Junction | None:
            if j in g:
                return j
            cycle = perimeter_junction_cycle(self.fpva.nr, self.fpva.nc)
            n = len(cycle)
            pos = {jj: i for i, jj in enumerate(cycle)}
            idx, other = pos[j], pos[away_from]
            step = 1 if (idx - other) % n <= n // 2 else -1
            for _ in range(n):
                idx = (idx + step) % n
                if cycle[idx] in g:
                    return cycle[idx]
            return None

        orig_g1, orig_g2 = g1, g2
        g1 = slide_to_graph(orig_g1, away_from=orig_g2)
        g2 = slide_to_graph(orig_g2, away_from=orig_g1)
        if g1 is None or g2 is None or g1 == g2:
            return None
        try:
            nodes = nx.dijkstra_path(
                g, g1, g2, weight=lambda a, b, d: (1.0 if d["valve"] else 0.0) + 0.001
            )
        except nx.NetworkXNoPath:
            return None
        out: set[Edge] = set()
        for a, b in zip(nodes, nodes[1:]):
            vv = g.edges[a, b]["valve"]
            if vv is not None:
                out.add(vv)
        return out
