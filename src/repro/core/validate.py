"""Independent legality checking of generated test vectors.

The generators already verify what they emit; this module re-derives the
guarantees from scratch so tests (and sceptical users) can audit a suite
without trusting generator internals:

* flow-path vectors: the opened valves form one simple source→sink path,
  every opened valve is a bridge of the open-edge graph (no Fig 5(a)
  bypass), and the stored expected readings match a fault-free simulation;
* cut-set vectors: the closed valves separate all sources from all sinks,
  and the expected readings are all-dark;
* suite level: full stuck-at coverage and — the paper's headline guarantee —
  detection of **any** single and double fault combination (exhaustive or
  sampled audit).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from repro.context import ExecutionContext
from repro.core.coverage import (
    measure_coverage,
    open_edge_graph,
    sa0_observable_valves,
)
from repro.core.vectors import TestVector, VectorKind
from repro.fpva.array import FPVA
from repro.fpva.ports import Port
from repro.sim.faults import Fault, fault_universe, faults_compatible
from repro.sim.pressure import PressureSimulator


@dataclass
class ValidationIssue:
    vector: str
    problem: str

    def __repr__(self):
        return f"[{self.vector}] {self.problem}"


@dataclass
class ValidationReport:
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, vector: TestVector, problem: str) -> None:
        self.issues.append(ValidationIssue(vector.name, problem))


def validate_vector(
    fpva: FPVA,
    vector: TestVector,
    simulator: PressureSimulator | None = None,
    report: ValidationReport | None = None,
    context: ExecutionContext | None = None,
) -> ValidationReport:
    """Structural and semantic checks for one vector."""
    sim = simulator or ExecutionContext.resolve(context, fpva).simulator
    rep = report or ValidationReport()

    actual = sim.meter_readings(vector.open_valves)
    if actual != dict(vector.expected):
        rep.add(vector, f"stored expectation {dict(vector.expected)} != simulated {actual}")

    if vector.kind in (VectorKind.FLOW_PATH, VectorKind.LEAKAGE):
        _validate_path_vector(fpva, vector, sim, rep)
    elif vector.kind is VectorKind.CUT_SET:
        _validate_cut_vector(fpva, vector, sim, rep)
    return rep


def _validate_path_vector(
    fpva: FPVA, vector: TestVector, sim: PressureSimulator, rep: ValidationReport
) -> None:
    if not any(vector.expected.values()):
        rep.add(vector, "flow-path vector expects no pressure anywhere")

    # The opened valves (plus channels/ports) must form a simple path in
    # the pressurized region: every pressurized cell has degree <= 2 among
    # opened valves, and opened valves must all be live.
    g = open_edge_graph(fpva, vector)
    live: set = set()
    for s in fpva.sources:
        live |= nx.node_connected_component(g, s)
    for valve in vector.open_valves:
        if valve.a not in live and valve.b not in live:
            rep.add(vector, f"opened valve {valve} is not pressurized (dead branch)")

    degree: dict = {}
    for valve in vector.open_valves:
        for cell in valve.cells:
            degree[cell] = degree.get(cell, 0) + 1
    for cell, deg in degree.items():
        if deg > 2:
            rep.add(vector, f"cell {cell} has {deg} opened valves (branching path)")

    # Fig 5(a): every opened valve must be a bridge, i.e. individually
    # observable.
    unobservable = vector.open_valves - sa0_observable_valves(sim, vector, fpva)
    for valve in sorted(unobservable):
        rep.add(vector, f"opened valve {valve} not SA0-observable (bypass exists)")


def _validate_cut_vector(
    fpva: FPVA, vector: TestVector, sim: PressureSimulator, rep: ValidationReport
) -> None:
    if any(vector.expected.values()):
        rep.add(vector, "cut-set vector expects pressure at a meter")
    readings = sim.meter_readings(vector.open_valves)
    if any(readings.values()):
        rep.add(vector, "closed valves do not separate sources from sinks")


def validate_suite(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    check_pair_coverage: bool = False,
    context: ExecutionContext | None = None,
) -> ValidationReport:
    """Validate every vector and suite-level stuck-at coverage."""
    sim = ExecutionContext.resolve(context, fpva).simulator
    rep = ValidationReport()
    for vector in vectors:
        validate_vector(fpva, vector, sim, rep)
    coverage = measure_coverage(
        fpva, vectors, include_leak_pairs=check_pair_coverage, simulator=sim
    )
    placeholder = TestVector("suite", VectorKind.FLOW_PATH, frozenset(), {})
    for valve in sorted(coverage.sa0_missing):
        rep.add(placeholder, f"stuck-at-0 at {valve} never observed")
    for valve in sorted(coverage.sa1_missing):
        rep.add(placeholder, f"stuck-at-1 at {valve} never observed")
    if check_pair_coverage:
        for pair in sorted(coverage.leak_pairs_missing):
            rep.add(placeholder, f"control-leak pair {pair} never exercised")
    return rep


@dataclass
class TwoFaultAudit:
    """Result of the double-fault detection audit."""

    singles_checked: int = 0
    singles_missed: list[tuple[Fault, ...]] = field(default_factory=list)
    pairs_checked: int = 0
    pairs_missed: list[tuple[Fault, ...]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.singles_missed and not self.pairs_missed


def audit_two_fault_detection(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    include_control_leaks: bool = False,
    max_pairs: int | None = 20_000,
    seed: int = 0,
    context: ExecutionContext | None = None,
) -> TwoFaultAudit:
    """Check the paper's guarantee: any one or two faults are detected.

    Exhaustive over single faults; over fault pairs it is exhaustive when
    their count is below ``max_pairs`` and uniformly sampled otherwise.
    """
    tester = ExecutionContext.resolve(context, fpva).tester
    universe = fault_universe(fpva, include_control_leaks=include_control_leaks)
    audit = TwoFaultAudit()

    for fault in universe:
        audit.singles_checked += 1
        if not tester.detects([fault], vectors):
            audit.singles_missed.append((fault,))

    pairs = [
        pair
        for pair in itertools.combinations(universe, 2)
        if faults_compatible(pair)
    ]
    if max_pairs is not None and len(pairs) > max_pairs:
        rng = random.Random(seed)
        pairs = rng.sample(pairs, max_pairs)
    for pair in pairs:
        audit.pairs_checked += 1
        if not tester.detects(list(pair), vectors):
            audit.pairs_missed.append(pair)
    return audit
