"""Top-level test generation facade.

:class:`TestGenerator` produces the complete suite of one array — flow
paths, cut-sets and control-leakage vectors — and reports the Table I
columns (n_p, t_p, n_c, t_c, n_l, t_l, N, T).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.context import ExecutionContext
from repro.core.cutsets import CutSetGenerator
from repro.core.heuristic import GreedyPathGenerator
from repro.core.hierarchy import BlockGrid, HierarchicalPathGenerator
from repro.core.leakage import LeakageGenerator
from repro.core.paths import FlowPathGenerator
from repro.core.repair import HardeningReport, harden_double_faults
from repro.core.vectors import TestSet
from repro.fpva.array import FPVA
from repro.ilp import SolveOptions

PATH_STRATEGIES = ("auto", "direct", "hierarchical", "greedy")
CUT_STRATEGIES = ("auto", "ilp", "sweep")

#: Largest cell count for which the direct whole-array ILP is attempted in
#: "auto" mode (the paper's direct model also stops being practical here).
DIRECT_ILP_CELL_LIMIT = 100


@dataclass
class GenerationReport:
    """Timings and counts in Table I's layout."""

    array: str = ""
    nv: int = 0
    hierarchy: str = ""
    np_paths: int = 0
    tp_seconds: float = 0.0
    nc_cuts: int = 0
    tc_seconds: float = 0.0
    nl_leak: int = 0
    tl_seconds: float = 0.0
    #: Populated when double-fault hardening ran (see core/repair.py).
    hardening: HardeningReport | None = None

    @property
    def total_vectors(self) -> int:
        return self.np_paths + self.nc_cuts + self.nl_leak

    @property
    def total_seconds(self) -> float:
        return self.tp_seconds + self.tc_seconds + self.tl_seconds

    def row(self) -> str:
        return (
            f"{self.array:>10}  nv={self.nv:5d}  {self.hierarchy:>5}  "
            f"np={self.np_paths:3d} ({self.tp_seconds:6.1f}s)  "
            f"nc={self.nc_cuts:3d} ({self.tc_seconds:6.1f}s)  "
            f"nl={self.nl_leak:3d} ({self.tl_seconds:6.1f}s)  "
            f"N={self.total_vectors:3d}  T={self.total_seconds:.1f}s"
        )


@dataclass
class GeneratedSuite:
    """A complete suite plus its generation report."""

    testset: TestSet
    report: GenerationReport


class TestGenerator:
    """Generates the full FPVA test suite."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        fpva: FPVA,
        path_strategy: str = "auto",
        cut_strategy: str = "auto",
        subblock: int = 5,
        solve_options: SolveOptions | None = None,
        include_leakage: bool = True,
        leakage_standalone: bool = True,
        harden_double_faults: bool = False,
        context: ExecutionContext | None = None,
    ):
        if path_strategy not in PATH_STRATEGIES:
            raise ValueError(f"path_strategy must be one of {PATH_STRATEGIES}")
        if cut_strategy not in CUT_STRATEGIES:
            raise ValueError(f"cut_strategy must be one of {CUT_STRATEGIES}")
        self.fpva = fpva
        self.path_strategy = path_strategy
        self.cut_strategy = cut_strategy
        self.subblock = subblock
        self.solve_options = solve_options
        self.include_leakage = include_leakage
        self.leakage_standalone = leakage_standalone
        self.harden_double_faults = harden_double_faults
        #: One session shared by every sub-generator (and the hardening
        #: pass), so the whole generate() run compiles at most one kernel
        #: and pools its batch-evaluation scenario tables.
        self.context = ExecutionContext.resolve(context, fpva)

    def _resolve_path_strategy(self) -> str:
        if self.path_strategy != "auto":
            return self.path_strategy
        cells = self.fpva.nr * self.fpva.nc
        return "direct" if cells <= DIRECT_ILP_CELL_LIMIT else "hierarchical"

    def generate(self) -> GeneratedSuite:
        report = GenerationReport(
            array=f"{self.fpva.nr}x{self.fpva.nc}",
            nv=self.fpva.valve_count,
            hierarchy=BlockGrid(self.fpva, self.subblock).hierarchy_label(),
        )
        testset = TestSet(fpva=self.fpva)

        # Flow paths (n_p / t_p).
        strategy = self._resolve_path_strategy()
        t0 = time.perf_counter()
        if strategy == "direct":
            paths = FlowPathGenerator(
                self.fpva, solve_options=self.solve_options, context=self.context
            ).generate()
            report.hierarchy = "1x1"
        elif strategy == "hierarchical":
            paths = HierarchicalPathGenerator(
                self.fpva,
                subblock=self.subblock,
                solve_options=self.solve_options,
                context=self.context,
            ).generate()
        else:
            paths = GreedyPathGenerator(self.fpva, context=self.context).generate()
        report.tp_seconds = time.perf_counter() - t0
        testset.flow_paths = paths.vectors
        report.np_paths = len(paths.vectors)

        # Cut-sets (n_c / t_c).
        t0 = time.perf_counter()
        cuts = CutSetGenerator(
            self.fpva,
            strategy=self.cut_strategy,
            solve_options=self.solve_options,
            context=self.context,
        ).generate()
        report.tc_seconds = time.perf_counter() - t0
        testset.cut_sets = cuts.vectors
        report.nc_cuts = len(cuts.vectors)

        # Control-layer leakage (n_l / t_l).
        if self.include_leakage:
            t0 = time.perf_counter()
            leaks = LeakageGenerator(self.fpva, context=self.context).generate(
                template_vectors=testset.flow_paths,
                standalone=self.leakage_standalone,
            )
            report.tl_seconds = time.perf_counter() - t0
            testset.leakage = leaks.vectors
            report.nl_leak = len(leaks.vectors)

        # Optional mixed-pair hardening (quadratic audit — opt-in).
        if self.harden_double_faults:
            report.hardening = harden_double_faults(
                self.fpva, testset, context=self.context
            )
            report.np_paths = len(testset.flow_paths)
            report.nc_cuts = len(testset.cut_sets)

        return GeneratedSuite(testset=testset, report=report)


def generate_suite(fpva: FPVA, **kwargs) -> TestSet:
    """One-call convenience: the full suite with default settings."""
    return TestGenerator(fpva, **kwargs).generate().testset
