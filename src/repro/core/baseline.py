"""The paper's baseline: one valve exercised per vector.

Section IV compares against "a simple baseline method where only one valve
is switched open or closed each time for fault test.  The total number of
test vectors in this case would be two times the number of valves" — a
squared-complexity scheme relative to the proposed O(sqrt(n_v)) suite.

Per valve we emit:

* an **open-test** vector: a dedicated simple path routed through the valve
  (detects its stuck-at-0);
* a **closed-test** vector: a dedicated wall through the valve with every
  other valve open (detects its stuck-at-1).

This makes the baseline a *valid* test suite (every fault detectable), so
benchmark comparisons are apples-to-apples on fault coverage while showing
the 2·n_v vs ≈2·sqrt(n_v) vector-count gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.context import ExecutionContext
from repro.core.cutsets import CutSetGenerator
from repro.core.pathmodel import CoverPath, edge_key
from repro.core.paths import path_to_vector
from repro.core.routing import RoutingError, disjoint_route_through
from repro.core.vectors import TestVector, VectorKind
from repro.fpva.array import FPVA
from repro.fpva.geometry import Edge


@dataclass
class BaselineResult:
    """The naive per-valve suite."""

    vectors: list[TestVector]
    skipped: list[Edge] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.vectors)


class BaselineGenerator:
    """Generates the naive 2-vectors-per-valve suite."""

    def __init__(self, fpva: FPVA, context: ExecutionContext | None = None):
        self.fpva = fpva
        self.context = ExecutionContext.resolve(context, fpva)
        self.simulator = self.context.simulator
        self._cuts = CutSetGenerator(fpva, strategy="sweep", context=self.context)

    def open_test(self, valve: Edge, name: str) -> TestVector | None:
        """A path vector dedicated to ``valve``'s stuck-at-0 fault."""
        try:
            route = disjoint_route_through(self.fpva, valve)
        except RoutingError:
            return None
        nodes = tuple(route)
        path = CoverPath(
            nodes=nodes,
            edges=tuple(edge_key(u, v) for u, v in zip(nodes, nodes[1:])),
        )
        return path_to_vector(
            self.fpva, path, self.simulator, name, kind=VectorKind.BASELINE
        )

    def closed_test(self, valve: Edge, name: str) -> TestVector | None:
        """A wall vector dedicated to ``valve``'s stuck-at-1 fault."""
        wall = self._cuts._wall_through(valve)
        if wall is None:
            return None
        open_valves = frozenset(self.fpva.valve_set - wall.valves)
        expected = self.simulator.meter_readings(open_valves)
        if any(expected.values()):
            return None
        return TestVector(
            name=name,
            kind=VectorKind.BASELINE,
            open_valves=open_valves,
            expected=expected,
            provenance=tuple(wall.junctions),
        )

    def generate(self) -> BaselineResult:
        """The full 2·n_v suite."""
        vectors: list[TestVector] = []
        skipped: list[Edge] = []
        for i, valve in enumerate(self.fpva.valves):
            open_vec = self.open_test(valve, f"bl-open{i}")
            closed_vec = self.closed_test(valve, f"bl-closed{i}")
            if open_vec is None or closed_vec is None:
                skipped.append(valve)
                continue
            vectors.append(open_vec)
            vectors.append(closed_vec)
        return BaselineResult(vectors=vectors, skipped=skipped)

    def vector_count(self) -> int:
        """The baseline's vector count without generating (2·n_v)."""
        return 2 * self.fpva.valve_count
