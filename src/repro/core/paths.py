"""Flow-path test generation (section III-B, direct ILP mode).

Builds the path-cover ILP on the cell graph: paths run from a source port
to a sink port, every valve must be covered, and always-open channel edges
carry the closure constraint so a path can never acquire a channel shortcut
(which would mask a stuck-at-0 fault exactly like the second path in
Fig 5(a)).

The resulting vectors open the valves of one path each and expect pressure
at that path's sink.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.context import ExecutionContext
from repro.core.pathmodel import (
    CoverPath,
    PathCoverProblem,
    PathCoverSolution,
    edge_key,
    solve_path_cover,
)
from repro.core.vectors import TestVector, VectorKind, vector_from_open_set
from repro.fpva.array import FPVA
from repro.fpva.components import EdgeKind
from repro.fpva.geometry import Edge
from repro.fpva.graph import cell_graph
from repro.fpva.ports import Port
from repro.ilp import SolveOptions
from repro.sim.pressure import PressureSimulator


def channel_region_caps(
    fpva: FPVA, graph: nx.Graph
) -> list[tuple[frozenset, int]]:
    """Crossing caps for the always-open channel regions within ``graph``.

    Each channel component is one pressure node; a flow path may cross its
    boundary at most twice (see :class:`PathCoverProblem.region_caps`).
    The boundary of a region is every non-channel graph edge with exactly
    one endpoint inside it (port openings included).
    """
    caps = []
    for component in fpva.channel_components:
        members = {c for c in component if c in graph}
        if not members:
            continue
        boundary = set()
        for cell in members:
            for nb in graph.neighbors(cell):
                if nb in members:
                    continue
                boundary.add(edge_key(cell, nb))
        if boundary:
            caps.append((frozenset(boundary), 2))
    return caps


def build_flow_path_problem(fpva: FPVA, graph: nx.Graph | None = None) -> PathCoverProblem:
    """The paper's flow-path instance on the cell graph."""
    g = graph if graph is not None else cell_graph(fpva)
    cover = {
        edge_key(u, v)
        for u, v, data in g.edges(data=True)
        if data["kind"] is EdgeKind.VALVE
    }
    closure = {
        edge_key(u, v)
        for u, v, data in g.edges(data=True)
        if data["kind"] is EdgeKind.CHANNEL
    }
    return PathCoverProblem(
        graph=g,
        terminals_a=list(fpva.sources),
        terminals_b=list(fpva.sinks),
        cover_edges=cover,
        closure_edges=closure,
        region_caps=channel_region_caps(fpva, g),
    )


def cover_path_valves(fpva: FPVA, path: CoverPath) -> list[Edge]:
    """Valves along an extracted path (port hops and channels excluded)."""
    valves = []
    for ekey in path.edges:
        u, v = tuple(ekey)
        if isinstance(u, Port) or isinstance(v, Port):
            continue
        edge = Edge(min(u, v), max(u, v))
        if edge in fpva.valve_set:
            valves.append(edge)
    return valves


def path_to_vector(
    fpva: FPVA,
    path: CoverPath,
    simulator: PressureSimulator,
    name: str,
    kind: VectorKind = VectorKind.FLOW_PATH,
) -> TestVector:
    """Turn a path into a test vector with fault-free expected readings."""
    open_valves = frozenset(cover_path_valves(fpva, path))
    expected = simulator.meter_readings(open_valves)
    if not any(expected.values()):
        raise RuntimeError(
            f"path {name} does not pressurize any sink — not a valid flow path"
        )
    return vector_from_open_set(
        fpva,
        name,
        kind,
        open_valves,
        expected,
        provenance=tuple(path.nodes),
    )


@dataclass
class FlowPathResult:
    """Generated flow-path vectors plus generation metadata."""

    vectors: list[TestVector]
    paths: list[CoverPath]
    proven_optimal: bool
    wall_time: float

    @property
    def np_paths(self) -> int:
        return len(self.vectors)


class FlowPathGenerator:
    """Direct (non-hierarchical) ILP flow-path generation.

    Suitable for arrays up to roughly 10x10 cells; larger arrays should use
    :class:`repro.core.hierarchy.HierarchicalPathGenerator` (the paper's
    section III-B-4), which this class also serves as the per-block engine
    for.
    """

    def __init__(
        self,
        fpva: FPVA,
        solve_options: SolveOptions | None = None,
        max_paths: int = 64,
        context: ExecutionContext | None = None,
    ):
        self.fpva = fpva
        self.solve_options = solve_options or SolveOptions(time_limit=120.0)
        self.max_paths = max_paths
        self.context = ExecutionContext.resolve(context, fpva)
        self.simulator = self.context.simulator

    def generate(self, start_paths: int | None = None) -> FlowPathResult:
        problem = build_flow_path_problem(self.fpva)
        solution = solve_path_cover(
            problem,
            start_paths=start_paths,
            max_paths=self.max_paths,
            solve_options=self.solve_options,
        )
        vectors = [
            path_to_vector(self.fpva, path, self.simulator, f"path{i}")
            for i, path in enumerate(solution.paths)
        ]
        return FlowPathResult(
            vectors=vectors,
            paths=solution.paths,
            proven_optimal=solution.proven_optimal,
            wall_time=solution.wall_time,
        )
