"""The path-cover ILP at the heart of the paper (section III-B).

The paper builds flow paths with an ILP whose constraints are:

* (1) incidence — a path entering a cell uses exactly two of the valves
  around it: ``sum(v around cell) == 2 * c[cell]``;
* (2) coverage — every valve lies on at least one path;
* (3) big-M coupling — pressure flow only crosses used valves;
* (4) flow conservation — every on-path cell absorbs one unit of pressure
  flow, which excludes disjoint loops (Fig 6(c)/(d));
* (6) path-usage indicators, minimized by objective (7);
* (9) closure — if both end junctions of a valve are on a cut-set wall, the
  valve itself must be in the wall (excludes the two-fault masking patterns
  of Fig 5(c)/(d)).  The same constraint form also keeps flow paths away
  from always-open channel shortcuts.

Cut-set generation "is a complementary problem … solved by adapting the
optimization problem (7)–(8)" (section III-C): the identical model runs on
the planar dual (junction) graph.  This module therefore implements the ILP
*generically* over any undirected graph with two terminal node sets; the
flow-path and cut-set generators instantiate it on the cell graph and the
junction graph respectively.

Implementation notes
--------------------
* Terminal attachment uses two virtual super-nodes TA/TB joined to every
  terminal by a virtual edge; a used path has exactly one TA edge and one
  TB edge, so the degree-2 incidence constraint stays uniform at real nodes.
* The paper declares the flow variables ``f`` integer; the loop-exclusion
  argument (summing constraint (4) around a disjoint loop) only needs flow
  conservation, not integrality, so we relax ``f`` to continuous — same
  feasible v/c sets, smaller MILP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Collection, Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.ilp import Model, SolveOptions, SolveStatus, solve
from repro.ilp.model import LinExpr, Var

Node = Hashable
EdgeKey = frozenset  # frozenset({u, v}) — canonical undirected edge key

_TA = ("__terminal__", "A")
_TB = ("__terminal__", "B")


def edge_key(u: Node, v: Node) -> EdgeKey:
    return frozenset((u, v))


class PathCoverError(RuntimeError):
    """Raised when no feasible path cover can be found."""


@dataclass
class PathCoverProblem:
    """A path-cover instance over an undirected graph.

    ``terminals_a`` / ``terminals_b`` — nodes where every path must start /
    end (exactly one of each per path).

    ``cover_edges`` — edge keys that must be covered by at least one path.

    ``closure_edges`` — edge keys subject to the paper's constraint (9): if
    a path visits both endpoints, it must also use the edge.

    ``region_caps`` — pairs ``(boundary_edge_keys, cap)``: each path may use
    at most ``cap`` edges of the given boundary set.  Used to model
    always-open channel regions, which act as a single pressure node: a path
    may cross a region's boundary at most twice (one entry, one exit),
    otherwise the region shorts distant path segments together and masks
    stuck-at-0 faults between them (a multi-edge generalization of the
    Fig 5(a) problem that constraint (9) alone cannot express).
    """

    graph: nx.Graph
    terminals_a: Sequence[Node]
    terminals_b: Sequence[Node]
    cover_edges: Collection[EdgeKey]
    closure_edges: Collection[EdgeKey] = field(default_factory=frozenset)
    region_caps: Sequence[tuple[frozenset, int]] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.terminals_a or not self.terminals_b:
            raise ValueError("both terminal sets must be non-empty")
        for t in list(self.terminals_a) + list(self.terminals_b):
            if t not in self.graph:
                raise ValueError(f"terminal {t!r} not in graph")
        known = {edge_key(u, v) for u, v in self.graph.edges}
        missing = set(self.cover_edges) - known
        if missing:
            raise ValueError(f"cover edges not in graph: {list(missing)[:3]}")

    @property
    def max_path_edges(self) -> int:
        """Upper bound on real edges per simple path (visits each node once)."""
        return self.graph.number_of_nodes() + 1

    def coverage_lower_bound(self) -> int:
        """A trivial lower bound on the number of paths needed."""
        if not self.cover_edges:
            return 1
        return max(1, math.ceil(len(self.cover_edges) / self.max_path_edges))


@dataclass
class CoverPath:
    """One extracted path: ordered nodes and the real edges used."""

    nodes: tuple[Node, ...]
    edges: tuple[EdgeKey, ...]

    @property
    def start(self) -> Node:
        return self.nodes[0]

    @property
    def end(self) -> Node:
        return self.nodes[-1]

    def __len__(self):
        return len(self.edges)


class PathCoverILP:
    """Builds and solves the ILP for a fixed number of candidate paths."""

    def __init__(
        self,
        problem: PathCoverProblem,
        num_paths: int,
        fixed_usage: bool = False,
        objective_weights: Mapping[EdgeKey, float] | None = None,
        required_edges_first_path: Iterable[EdgeKey] = (),
        forbidden_edges: Iterable[EdgeKey] = (),
        required_coverage: bool = True,
    ):
        """``fixed_usage`` forces every candidate path to be used (p_m = 1)
        and, combined with ``objective_weights``, switches the objective from
        "minimize used paths" (7) to "maximize covered weight" — the mode the
        hierarchical per-block subproblems use.

        ``required_coverage=False`` drops constraint (2) (used with weighted
        objectives, where coverage is encouraged rather than demanded).
        """
        self.problem = problem
        self.num_paths = num_paths
        self.fixed_usage = fixed_usage
        self.objective_weights = dict(objective_weights or {})
        self.required_first = set(required_edges_first_path)
        self.forbidden = set(forbidden_edges)
        self.required_coverage = required_coverage
        self._build()

    def _build(self) -> None:
        prob = self.problem
        g = prob.graph
        self.nodes: list[Node] = list(g.nodes)
        real_edges: list[EdgeKey] = [edge_key(u, v) for u, v in g.edges]
        self.real_edges = real_edges

        # Virtual terminal edges (deduplicated if terminal sets repeat nodes).
        self.ta_edges: list[EdgeKey] = [
            frozenset((_TA, t)) for t in dict.fromkeys(prob.terminals_a)
        ]
        self.tb_edges: list[EdgeKey] = [
            frozenset((_TB, t)) for t in dict.fromkeys(prob.terminals_b)
        ]
        all_edges = real_edges + self.ta_edges + self.tb_edges

        # Incidence: node -> edge keys touching it (virtual edges included).
        incident: dict[Node, list[EdgeKey]] = {n: [] for n in self.nodes}
        for e in real_edges:
            for n in e:
                incident[n].append(e)
        for e in self.ta_edges + self.tb_edges:
            for n in e:
                if n in incident:
                    incident[n].append(e)

        m = Model(f"path-cover-{self.num_paths}")
        big_m = len(self.nodes) + 2  # max pressure-flow volume

        self.var_c: list[dict[Node, Var]] = []
        self.var_v: list[dict[EdgeKey, Var]] = []
        self.var_p: list[Var] = []

        for k in range(self.num_paths):
            c_k = {n: m.binary_var(f"c{k}_{i}") for i, n in enumerate(self.nodes)}
            v_k = {e: m.binary_var(f"v{k}_{i}") for i, e in enumerate(all_edges)}
            f_k = {
                e: m.continuous_var(f"f{k}_{i}", lb=-big_m, ub=big_m)
                for i, e in enumerate(all_edges)
            }
            if self.fixed_usage:
                p_k = m.add_var(f"p{k}", lb=1.0, ub=1.0, vtype="binary")
            else:
                p_k = m.binary_var(f"p{k}")
            self.var_c.append(c_k)
            self.var_v.append(v_k)
            self.var_p.append(p_k)

            # (1) incidence: two used edges around every on-path node.
            for n in self.nodes:
                m.add_constraint(
                    Model.total(v_k[e] for e in incident[n]) == 2 * c_k[n]
                )

            # terminal attachment: one TA edge and one TB edge per used path.
            m.add_constraint(Model.total(v_k[e] for e in self.ta_edges) == p_k)
            m.add_constraint(Model.total(v_k[e] for e in self.tb_edges) == p_k)

            # (3) big-M flow/valve coupling.
            for e in all_edges:
                m.add_constraint(f_k[e] <= big_m * v_k[e])
                m.add_constraint(f_k[e] >= -big_m * v_k[e])

            # (4) conservation: every on-path node absorbs one unit.
            # Fixed orientation per edge: flow is positive toward the node
            # listed first in the iteration order below.
            orient: dict[EdgeKey, Node] = {}
            for e in all_edges:
                ends = sorted(e, key=lambda n: self._node_order(n))
                orient[e] = ends[0]  # positive flow enters ends[0]
            for n in self.nodes:
                net = LinExpr()
                for e in incident[n]:
                    sign = 1.0 if orient[e] == n else -1.0
                    net.add_term(f_k[e], sign)
                m.add_constraint(net == c_k[n].to_expr())

            # (9) closure: visiting both endpoints forces the edge.
            for e in prob.closure_edges:
                u, w = tuple(e)
                m.add_constraint(c_k[u] + c_k[w] - 1 <= v_k[e])

            # Channel-region crossing caps (one entry + one exit at most).
            for boundary, cap in prob.region_caps:
                members = [v_k[e] for e in boundary if e in v_k]
                if len(members) > cap:
                    m.add_constraint(Model.total(members) <= cap)

            # Forbidden edges.
            for e in self.forbidden:
                if e in v_k:
                    m.add_constraint(v_k[e] <= 0)

        # (2) coverage across paths.
        if self.required_coverage:
            for e in prob.cover_edges:
                m.add_constraint(
                    Model.total(self.var_v[k][e] for k in range(self.num_paths))
                    >= 1
                )

        # Required edges on the first path (targeted generation).
        for e in self.required_first:
            m.add_constraint(self.var_v[0][e] >= 1)

        # Symmetry breaking: used paths come first.
        for k in range(self.num_paths - 1):
            m.add_constraint(self.var_p[k] >= self.var_p[k + 1])

        # Objective (7): minimize used paths; or maximize covered weight.
        if self.objective_weights:
            gain = LinExpr()
            for k in range(self.num_paths):
                for e, w in self.objective_weights.items():
                    if e in self.var_v[k]:
                        gain.add_term(self.var_v[k][e], w)
            m.maximize(gain)
        else:
            m.minimize(Model.total(self.var_p))

        self.model = m

    _ORDER_CACHE: dict = {}

    def _node_order(self, n: Node) -> int:
        """A stable arbitrary total order over nodes (ids assigned on sight)."""
        if not hasattr(self, "_order"):
            self._order = {node: i for i, node in enumerate(self.nodes)}
            self._order[_TA] = -2
            self._order[_TB] = -1
        return self._order[n]

    def solve(self, options: SolveOptions | None = None) -> "PathCoverSolution | None":
        """Solve; returns None if infeasible (or unproven within limits)."""
        sol = solve(self.model, options)
        if not sol.has_solution:
            if sol.status is SolveStatus.INFEASIBLE:
                return None
            if sol.status is SolveStatus.TIME_LIMIT:
                return None
            raise PathCoverError(f"solver failed: {sol.status} {sol.message}")
        paths = []
        for k in range(self.num_paths):
            if sol.value(self.var_p[k]) < 0.5:
                continue
            paths.append(self._extract_path(sol, k))
        return PathCoverSolution(
            paths=paths,
            objective=sol.objective,
            proven_optimal=sol.is_optimal,
            wall_time=sol.wall_time,
        )

    def _extract_path(self, sol, k: int) -> CoverPath:
        """Turn the v-variable assignment of path k into an ordered walk."""
        used_real = [e for e in self.real_edges if sol.value(self.var_v[k][e]) > 0.5]
        start = next(
            t
            for e in self.ta_edges
            if sol.value(self.var_v[k][e]) > 0.5
            for t in e
            if t != _TA
        )
        end = next(
            t
            for e in self.tb_edges
            if sol.value(self.var_v[k][e]) > 0.5
            for t in e
            if t != _TB
        )
        adjacency: dict[Node, list[Node]] = {}
        for e in used_real:
            u, w = tuple(e)
            adjacency.setdefault(u, []).append(w)
            adjacency.setdefault(w, []).append(u)

        nodes = [start]
        edges: list[EdgeKey] = []
        prev: Node | None = None
        cur = start
        for _ in range(len(used_real)):
            nxts = [n for n in adjacency.get(cur, []) if n != prev]
            if not nxts:
                break
            nxt = nxts[0]
            edges.append(edge_key(cur, nxt))
            nodes.append(nxt)
            prev, cur = cur, nxt
        if cur != end or len(edges) != len(used_real):
            raise PathCoverError(
                f"path {k} extraction failed: walked {len(edges)} of "
                f"{len(used_real)} edges, ended at {cur!r} (expected {end!r})"
            )
        return CoverPath(nodes=tuple(nodes), edges=tuple(edges))


@dataclass
class PathCoverSolution:
    """Paths extracted from one ILP solve."""

    paths: list[CoverPath]
    objective: float | None
    proven_optimal: bool
    wall_time: float

    def covered(self) -> set[EdgeKey]:
        out: set[EdgeKey] = set()
        for p in self.paths:
            out.update(p.edges)
        return out


def solve_path_cover(
    problem: PathCoverProblem,
    start_paths: int | None = None,
    max_paths: int = 64,
    solve_options: SolveOptions | None = None,
) -> PathCoverSolution:
    """The incremental outer loop of section III-B-3.

    Try ``n_p = start, start+1, ...`` until the coverage ILP becomes feasible
    (the paper: "if this happens, we increase n_p and solve the optimization
    problem again").
    """
    start = start_paths or problem.coverage_lower_bound()
    for num_paths in range(start, max_paths + 1):
        ilp = PathCoverILP(problem, num_paths)
        solution = ilp.solve(solve_options)
        if solution is not None:
            return solution
    raise PathCoverError(
        f"no feasible cover with up to {max_paths} paths "
        f"({len(problem.cover_edges)} edges to cover)"
    )
