"""Control-layer leakage test generation (Table I's n_l column).

The leaking-control-channel defect (Fig 3(d)) couples two neighbouring
valves: pressurizing either control line closes both.  To expose the leak
between valves ``a`` and ``b``, some vector must command one of them closed
while the other is open on a live, observed flow path — on a defective chip
the leak closes the live valve too and the meter goes dark.  The defect is
symmetric, so one exercised direction per unordered pair suffices.

The paper generates these vectors "by adapting the valve coverage problem"
(section III); consistently, this generator produces a self-contained set
of flow-path-shaped vectors such that every *testable* control-adjacent
pair is exercised:

1. reuse the flow-path vectors as candidate templates and greedily pick
   those covering the most remaining pairs (a path vector tests each
   on-path valve against all of its closed neighbours at once);
2. mop up with greedy pair-gain walks — fresh simple paths routed through
   the highest concentration of still-uncovered victims (this handles the
   "turning pairs" where the two valves always travel together on the
   template paths);
3. route a dedicated path per pair for the last stragglers.

Structurally untestable pairs (two valves forming the only openings of a
shared dead-end cell — see
:func:`repro.sim.faults.untestable_leak_pairs`) are excluded up front and
reported.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.context import ExecutionContext
from repro.core.coverage import leak_covered_unordered, sa0_observable_valves
from repro.core.pathmodel import CoverPath, edge_key
from repro.core.paths import path_to_vector
from repro.core.routing import RoutingError, disjoint_route_through
from repro.core.vectors import TestVector, VectorKind
from repro.fpva.array import FPVA
from repro.fpva.control import control_adjacent_pairs
from repro.fpva.geometry import Edge
from repro.sim.faults import untestable_leak_pairs


@dataclass
class LeakageResult:
    """Generated control-leakage vectors plus pair-coverage metadata."""

    vectors: list[TestVector]
    pairs_total: int = 0
    pairs_covered: int = 0
    untestable_pairs: list[frozenset] = field(default_factory=list)

    @property
    def nl_leak(self) -> int:
        return len(self.vectors)


class LeakageGenerator:
    """Builds the control-leakage section of a test suite."""

    def __init__(
        self,
        fpva: FPVA,
        seed: int = 11,
        context: ExecutionContext | None = None,
    ):
        self.fpva = fpva
        self.seed = seed
        self.context = ExecutionContext.resolve(context, fpva)
        self.simulator = self.context.simulator

    def generate(
        self,
        template_vectors: Sequence[TestVector] = (),
        standalone: bool = True,
    ) -> LeakageResult:
        """Generate leakage vectors.

        ``template_vectors`` are existing flow-path vectors used as
        candidates.  With ``standalone=True`` (the Table I accounting) the
        chosen templates are re-emitted as LEAKAGE vectors, so the section
        alone covers all pairs; with ``standalone=False`` only the extra
        vectors beyond the templates are returned (the templates are
        assumed to stay in the suite).
        """
        structurally_untestable = set(untestable_leak_pairs(self.fpva))
        remaining: set[frozenset] = (
            set(control_adjacent_pairs(self.fpva)) - structurally_untestable
        )
        total = len(remaining)
        vectors: list[TestVector] = []

        # Greedy set cover over the template vectors.
        scored: list[tuple[TestVector, set]] = []
        for vec in template_vectors:
            covered = leak_covered_unordered(
                self.fpva, self.simulator, vec, candidate_pairs=remaining
            )
            if covered:
                scored.append((vec, covered))
        while remaining and scored:
            scored.sort(key=lambda item: len(item[1] & remaining), reverse=True)
            vec, covered = scored[0]
            gain = covered & remaining
            if not gain:
                break
            remaining -= gain
            scored.pop(0)
            if standalone:
                vectors.append(self._as_leak_vector(vec, len(vectors)))

        # Greedy pair-gain walks for the leftovers.
        from repro.core.heuristic import GreedyPathGenerator

        walker = GreedyPathGenerator(self.fpva, seed=self.seed, context=self.context)
        stall = 0
        while remaining and stall < 8:
            victim_count: Counter = Counter()
            for pair in remaining:
                for valve in pair:
                    victim_count[valve] += 1
            node_seq = walker.walk_once(
                lambda e: float(victim_count.get(e, 0))
            )
            if node_seq is None:
                stall += 1
                continue
            vec = self._path_vector(node_seq, len(vectors))
            covered = leak_covered_unordered(
                self.fpva, self.simulator, vec, candidate_pairs=remaining
            )
            if not covered:
                stall += 1
                continue
            stall = 0
            vectors.append(vec)
            remaining -= covered

        # Dedicated routes for the last stragglers.
        untestable: list[frozenset] = sorted(
            structurally_untestable, key=sorted
        )
        for pair in sorted(remaining.copy(), key=sorted):
            if pair not in remaining:
                continue
            a, b = sorted(pair)
            vec = self._targeted_vector(a, b, len(vectors)) or self._targeted_vector(
                b, a, len(vectors)
            )
            if vec is None:
                untestable.append(pair)
                remaining.discard(pair)
                continue
            covered = leak_covered_unordered(
                self.fpva, self.simulator, vec, candidate_pairs=remaining
            )
            vectors.append(vec)
            remaining -= covered

        return LeakageResult(
            vectors=vectors,
            pairs_total=total,
            pairs_covered=total - sum(1 for p in untestable if p not in structurally_untestable),
            untestable_pairs=untestable,
        )

    def _as_leak_vector(self, vector: TestVector, index: int) -> TestVector:
        return TestVector(
            name=f"leak{index}",
            kind=VectorKind.LEAKAGE,
            open_valves=vector.open_valves,
            expected=dict(vector.expected),
            provenance=vector.provenance,
        )

    def _path_vector(self, node_seq, index: int) -> TestVector:
        nodes = tuple(node_seq)
        path = CoverPath(
            nodes=nodes,
            edges=tuple(edge_key(u, v) for u, v in zip(nodes, nodes[1:])),
        )
        return path_to_vector(
            self.fpva, path, self.simulator, f"leak{index}", kind=VectorKind.LEAKAGE
        )

    def _targeted_vector(
        self, aggressor: Edge, victim: Edge, index: int
    ) -> TestVector | None:
        """A path vector through the victim with the aggressor off-path."""
        try:
            route = disjoint_route_through(
                self.fpva, victim, avoid_valves=[aggressor]
            )
        except RoutingError:
            return None
        vector = self._path_vector(route, index)
        # The victim must actually be observable on this path.
        if victim not in sa0_observable_valves(self.simulator, vector, self.fpva):
            return None
        return vector
