"""ASCII rendering of arrays, flow paths and cut-set walls.

Regenerates the visual content of the paper's Fig 8 and Fig 9: the array
grid with obstacles (##), channels (= / ‖) and the valves opened by each
path.  Cells are drawn on a doubled lattice so the edges between them can
carry path/wall marks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.fpva.geometry import Cell, Edge, Orientation
from repro.fpva.ports import Port


def render_array(
    fpva: FPVA,
    open_valves: Iterable[Edge] = (),
    wall_valves: Iterable[Edge] = (),
) -> str:
    """Draw the array; mark opened valves (- / |) and wall valves (x).

    Legend: ``o`` cell, ``##`` obstacle, ``=``/``"`` channel (horizontal /
    vertical), ``-``/``|`` opened valve, ``x`` closed wall valve, ``.``
    untouched valve position, ``S``/``M`` source / meter port.
    """
    open_set = set(open_valves)
    wall_set = set(wall_valves)
    height = 2 * fpva.nr + 1
    width = 2 * fpva.nc + 1
    canvas = [[" "] * width for _ in range(height)]

    def put(y: int, x: int, ch: str) -> None:
        canvas[y][x] = ch

    for r in range(1, fpva.nr + 1):
        for c in range(1, fpva.nc + 1):
            cell = Cell(r, c)
            y, x = 2 * r - 1, 2 * c - 1
            put(y, x, "#" if cell in fpva.obstacles else "o")

    for edge in fpva.flow_edges:
        (r1, c1), (r2, c2) = edge.a, edge.b
        y = (2 * r1 - 1 + 2 * r2 - 1) // 2
        x = (2 * c1 - 1 + 2 * c2 - 1) // 2
        if edge in fpva.channels:
            ch = "=" if edge.orientation is Orientation.HORIZONTAL else '"'
        elif edge in wall_set:
            ch = "x"
        elif edge in open_set:
            ch = "-" if edge.orientation is Orientation.HORIZONTAL else "|"
        else:
            ch = "."
        put(y, x, ch)

    for port in fpva.ports:
        cell = fpva.port_cell(port)
        y, x = 2 * cell.r - 1, 2 * cell.c - 1
        dy, dx = {
            "north": (-1, 0),
            "south": (1, 0),
            "west": (0, -1),
            "east": (0, 1),
        }[port.side.value]
        put(y + dy, x + dx, "S" if port.is_source else "M")

    return "\n".join("".join(row).rstrip() for row in canvas)


def render_vector(fpva: FPVA, vector: TestVector) -> str:
    """Render one vector: paths show opened valves, cuts show the wall."""
    from repro.core.vectors import VectorKind

    if vector.kind is VectorKind.CUT_SET:
        wall = fpva.valve_set - vector.open_valves
        return render_array(fpva, wall_valves=wall)
    return render_array(fpva, open_valves=vector.open_valves)


def render_paths(fpva: FPVA, vectors: Sequence[TestVector]) -> str:
    """All paths, one panel per vector (the Fig 8 / Fig 9 style output)."""
    panels = []
    for vector in vectors:
        panels.append(f"--- {vector.name} ({len(vector.open_valves)} valves) ---")
        panels.append(render_vector(fpva, vector))
    return "\n".join(panels)


def coverage_map(fpva: FPVA, vectors: Sequence[TestVector]) -> str:
    """Overlay of how many vectors open each valve (0-9, then '+')."""
    counts: dict[Edge, int] = {v: 0 for v in fpva.valves}
    for vector in vectors:
        for valve in vector.open_valves:
            counts[valve] += 1
    height = 2 * fpva.nr + 1
    width = 2 * fpva.nc + 1
    canvas = [[" "] * width for _ in range(height)]
    for r in range(1, fpva.nr + 1):
        for c in range(1, fpva.nc + 1):
            canvas[2 * r - 1][2 * c - 1] = (
                "#" if Cell(r, c) in fpva.obstacles else "o"
            )
    for edge, n in counts.items():
        (r1, c1), (r2, c2) = edge.a, edge.b
        y = (2 * r1 - 1 + 2 * r2 - 1) // 2
        x = (2 * c1 - 1 + 2 * c2 - 1) // 2
        canvas[y][x] = str(n) if n < 10 else "+"
    return "\n".join("".join(row).rstrip() for row in canvas)
