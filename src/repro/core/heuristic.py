"""Greedy serpentine path-cover heuristic (no ILP).

Used as an ablation point against the ILP generators and as a scalable
fallback: walk simple paths from a source to a sink, always preferring
moves over still-uncovered valves, with a reachability filter that only
allows moves after which the sink is still reachable through unvisited
cells (so every walk is guaranteed to terminate at the sink).

On regular arrays the first two walks come out as the row-wise and
column-wise serpentines — the same two-path structure the paper's direct
ILP finds in Fig 8(a) — but the heuristic offers no optimality or
two-fault-masking guarantees, which is exactly the gap the ILP closes.
"""

from __future__ import annotations

import random
from typing import Hashable

import networkx as nx

from repro.context import ExecutionContext
from repro.core.coverage import sa0_observable_valves
from repro.core.pathmodel import CoverPath, edge_key
from repro.core.paths import FlowPathResult, path_to_vector
from repro.core.routing import RoutingError, disjoint_route_through
from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.fpva.components import EdgeKind
from repro.fpva.geometry import Edge
from repro.fpva.graph import cell_graph
from repro.fpva.ports import Port


class GreedyPathGenerator:
    """Greedy coverage walks until every valve is (observably) covered."""

    def __init__(
        self,
        fpva: FPVA,
        seed: int = 0,
        max_walks: int = 512,
        context: ExecutionContext | None = None,
    ):
        self.fpva = fpva
        self.rng = random.Random(seed)
        self.max_walks = max_walks
        self.graph = cell_graph(fpva)
        self.context = ExecutionContext.resolve(context, fpva)
        self.simulator = self.context.simulator

    # -- one walk ------------------------------------------------------------
    def walk_once(self, gain_of) -> list[Hashable] | None:
        """One greedy simple walk source→sink maximizing ``gain_of(edge)``.

        ``gain_of`` maps a valve :class:`Edge` to a non-negative score; the
        walk locally prefers the highest-scoring next step among moves that
        keep the sink reachable through unvisited cells.
        """
        g = self.graph
        source = self.rng.choice(list(self.fpva.sources))
        sink = self.rng.choice(list(self.fpva.sinks))
        region_of: dict[Hashable, int] = {}
        for i, component in enumerate(self.fpva.channel_components):
            for cell in component:
                region_of[cell] = i
        visited: set[Hashable] = {source}
        consumed: set[Hashable] = set()  # cells of channel regions we left
        walk: list[Hashable] = [source]
        current: Hashable = source

        def sink_reachable_from(node: Hashable, extra_visited: set) -> bool:
            """BFS through unvisited nodes only."""
            if node == sink:
                return True
            seen = {node}
            stack = [node]
            while stack:
                cur = stack.pop()
                for nb in g.neighbors(cur):
                    if nb in seen or nb in visited or nb in consumed or nb in extra_visited:
                        continue
                    if nb == sink:
                        return True
                    seen.add(nb)
                    stack.append(nb)
            return False

        for _ in range(g.number_of_nodes()):
            if current == sink:
                return walk
            candidates = []
            for nb in g.neighbors(current):
                if nb in visited or nb in consumed:
                    continue
                if not sink_reachable_from(nb, {current}):
                    continue
                data = g.edges[current, nb]
                gain = (
                    gain_of(data["edge"])
                    if data["kind"] is EdgeKind.VALVE
                    else 0
                )
                candidates.append((gain, self.rng.random(), nb))
            if not candidates:
                return None
            candidates.sort(reverse=True)
            nxt = candidates[0][2]
            # Leaving a channel region consumes it: the region is one
            # pressure node, so re-entering later would short the walk's
            # two segments together and mask stuck-at-0 faults in between.
            cur_region = region_of.get(current)
            if cur_region is not None and region_of.get(nxt) != cur_region:
                consumed.update(
                    self.fpva.channel_components[cur_region] - visited
                )
            current = nxt
            visited.add(current)
            walk.append(current)
        return None

    # -- public API ------------------------------------------------------------
    def generate(self) -> FlowPathResult:
        uncovered: set[Edge] = set(self.fpva.valves)
        vectors: list[TestVector] = []
        paths: list[CoverPath] = []
        stall = 0
        while uncovered and len(vectors) < self.max_walks:
            node_seq = self.walk_once(lambda e: 1.0 if e in uncovered else 0.0)
            if node_seq is None:
                stall += 1
                if stall > 20:
                    break
                continue
            path = CoverPath(
                nodes=tuple(node_seq),
                edges=tuple(
                    edge_key(u, v) for u, v in zip(node_seq, node_seq[1:])
                ),
            )
            vector = path_to_vector(
                self.fpva, path, self.simulator, f"path{len(vectors)}"
            )
            observable = sa0_observable_valves(self.simulator, vector, self.fpva)
            if not observable & uncovered:
                stall += 1
                if stall > 20:
                    break
                continue
            stall = 0
            vectors.append(vector)
            paths.append(path)
            uncovered -= observable

        # Mop-up through any leftovers (pathological geometries only).
        for valve in sorted(uncovered.copy()):
            if valve not in uncovered:
                continue
            try:
                node_seq = disjoint_route_through(self.fpva, valve)
            except RoutingError:
                continue
            path = CoverPath(
                nodes=tuple(node_seq),
                edges=tuple(
                    edge_key(u, v) for u, v in zip(node_seq, node_seq[1:])
                ),
            )
            vector = path_to_vector(
                self.fpva, path, self.simulator, f"path{len(vectors)}"
            )
            observable = sa0_observable_valves(self.simulator, vector, self.fpva)
            if not observable & uncovered:
                continue
            vectors.append(vector)
            paths.append(path)
            uncovered -= observable

        if uncovered:
            raise RuntimeError(
                f"greedy generation left {len(uncovered)} valves uncovered"
            )
        return FlowPathResult(
            vectors=vectors, paths=paths, proven_optimal=False, wall_time=0.0
        )
