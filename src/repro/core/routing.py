"""Graph-search routing utilities shared by several generators.

These are not part of the paper's ILP formulation; they provide the
constructive fallbacks and baselines around it:

* :func:`disjoint_route_through` — a simple source→sink path forced through
  one given valve (used by the naive per-valve baseline, by targeted
  control-leakage vectors, and as mop-up in hierarchical generation);
* :func:`contracted_cell_graph` — the cell graph with always-open channel
  regions contracted to single pressure nodes, so graph-theoretic simple
  paths are also *physically* simple (a region can never short two distant
  path segments together);
* :func:`route_valves` / :func:`shortest_route` — small conversions.

Node-disjointness is computed by max-flow on a node-split digraph, so the
returned route is always a simple path (the paper's no-branch/no-loop
requirement for flow paths).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.fpva.array import FPVA
from repro.fpva.geometry import Cell, Edge
from repro.fpva.graph import cell_graph
from repro.fpva.ports import Port


class RoutingError(RuntimeError):
    """No route satisfying the requested constraints exists."""


RegionNode = tuple  # ("region", i)


def contracted_cell_graph(
    fpva: FPVA, avoid_valves: Iterable[Edge] = ()
) -> nx.Graph:
    """The cell graph with each always-open channel region contracted.

    Nodes are cells, ports and ``("region", i)`` super-nodes.  Each edge
    carries ``members``: the original ``(endpoint_u_side, endpoint_v_side)``
    pairs it stands for (several valves may join the same node pair after
    contraction).  The graph also carries ``regions`` (super-node → member
    cells) and ``node_map`` (cell → representative node) in ``g.graph``.
    """
    node_map: dict = {}
    region_cells: dict[RegionNode, frozenset[Cell]] = {}
    for i, component in enumerate(fpva.channel_components):
        rep: RegionNode = ("region", i)
        region_cells[rep] = component
        for cell in component:
            node_map[cell] = rep

    avoid = set(avoid_valves)
    g = nx.Graph()
    for cell in fpva.cells():
        g.add_node(node_map.get(cell, cell))
    for edge in fpva.flow_edges:
        if edge in fpva.channels or edge in avoid:
            continue
        u = node_map.get(edge.a, edge.a)
        v = node_map.get(edge.b, edge.b)
        if u == v:
            continue  # shorted valve (rejected by FPVA validation anyway)
        if g.has_edge(u, v):
            g.edges[u, v]["members"].append((edge.a, edge.b))
        else:
            g.add_edge(u, v, members=[(edge.a, edge.b)])
    for port in fpva.ports:
        cell = fpva.port_cell(port)
        u = node_map.get(cell, cell)
        g.add_node(port)
        g.add_edge(port, u, members=[(port, cell)])
    g.graph["regions"] = region_cells
    g.graph["node_map"] = node_map
    return g


def _channel_walk(fpva: FPVA, members: frozenset[Cell], enter: Cell, leave: Cell) -> list[Cell]:
    """Cells from ``enter`` to ``leave`` inside one channel region."""
    if enter == leave:
        return [enter]
    adj: dict[Cell, list[Cell]] = {}
    for edge in fpva.channels:
        if edge.a in members and edge.b in members:
            adj.setdefault(edge.a, []).append(edge.b)
            adj.setdefault(edge.b, []).append(edge.a)
    prev: dict[Cell, Cell | None] = {enter: None}
    queue = deque([enter])
    while queue:
        cur = queue.popleft()
        if cur == leave:
            break
        for nb in adj.get(cur, ()):
            if nb not in prev:
                prev[nb] = cur
                queue.append(nb)
    if leave not in prev:
        raise RoutingError("channel region is not internally connected")
    seq = [leave]
    while prev[seq[-1]] is not None:
        seq.append(prev[seq[-1]])  # type: ignore[arg-type]
    return list(reversed(seq))


def expand_contracted_route(
    fpva: FPVA,
    g: nx.Graph,
    route: Sequence[Hashable],
    pinned: dict[frozenset, tuple] | None = None,
) -> list[Hashable]:
    """Turn a route over contracted nodes into a concrete cell sequence.

    ``pinned`` maps a contracted node pair (frozenset) to the concrete
    original pair that must realize that hop (used to force the required
    valve).  Region super-nodes are expanded to channel walks between the
    arrival and departure cells.
    """
    pinned = pinned or {}
    regions: dict = g.graph["regions"]

    def side_cell(contracted: Hashable, original_pair: tuple, toward: Hashable):
        """Pick the element of ``original_pair`` that lies in ``toward``."""
        for item in original_pair:
            if item == toward:
                return item
            members = regions.get(toward)
            if members is not None and item in members:
                return item
        raise RoutingError("hop endpoints do not match contracted nodes")

    # For each hop, the concrete (depart_cell, arrive_cell) pair.
    hops: list[tuple] = []
    for u, v in zip(route, route[1:]):
        pair = pinned.get(frozenset((u, v)))
        if pair is None:
            pair = tuple(g.edges[u, v]["members"][0])
        hops.append((side_cell(u, pair, u), side_cell(v, pair, v)))

    out: list[Hashable] = []
    for i, node in enumerate(route):
        arrive = hops[i - 1][1] if i > 0 else None
        depart = hops[i][0] if i < len(hops) else None
        if node in regions:
            walk = _channel_walk(
                fpva, regions[node], arrive if arrive is not None else depart,
                depart if depart is not None else arrive,
            )
            if out and out[-1] == walk[0]:
                out.extend(walk[1:])
            else:
                out.extend(walk)
        else:
            concrete = arrive if arrive is not None else depart
            if not out or out[-1] != concrete:
                out.append(concrete)
    return out


def _split_digraph(g: nx.Graph) -> nx.DiGraph:
    """Node-split transformation: vertex capacities 1 for disjointness."""
    d = nx.DiGraph()
    for n in g.nodes:
        d.add_edge((n, "in"), (n, "out"), capacity=1)
    for u, v in g.edges:
        d.add_edge((u, "out"), (v, "in"), capacity=1)
        d.add_edge((v, "out"), (u, "in"), capacity=1)
    return d


def disjoint_route_through(
    fpva: FPVA,
    valve: Edge,
    avoid_valves: Iterable[Edge] = (),
    graph: nx.Graph | None = None,
) -> list[Hashable]:
    """A simple path source-port → sink-port using ``valve``.

    Returns the node sequence ``[source_port, cells..., sink_port]`` whose
    consecutive pairs include ``valve``'s cell pair.  Valves listed in
    ``avoid_valves`` are excluded from the route.  Channel regions are
    contracted during the search, so the result is physically simple.
    Raises :class:`RoutingError` when impossible.

    The unused ``graph`` parameter is accepted for API compatibility with
    callers that precompute the plain cell graph.
    """
    avoid = set(avoid_valves)
    if valve in avoid:
        raise RoutingError(f"valve {valve} is both required and avoided")
    g = contracted_cell_graph(fpva, avoid_valves=avoid)
    node_map: dict = g.graph["node_map"]
    ma = node_map.get(valve.a, valve.a)
    mb = node_map.get(valve.b, valve.b)
    if ma == mb:
        raise RoutingError(f"valve {valve} is shorted by a channel region")

    d = _split_digraph(g)
    # Two node-disjoint legs: one from a source port and one from a sink
    # port, each landing on one end of the required valve.  The capacity-1
    # hubs force exactly one leg per port kind.
    d.add_edge("S*", "SRC*", capacity=1)
    d.add_edge("S*", "SNK*", capacity=1)
    for port in fpva.ports:
        hub = "SRC*" if port.is_source else "SNK*"
        d.add_edge(hub, (port, "in"), capacity=1)
    d.add_edge((ma, "out"), "T*", capacity=1)
    d.add_edge((mb, "out"), "T*", capacity=1)
    # The legs must not cross the required valve's own contracted edge.
    if d.has_edge((ma, "out"), (mb, "in")):
        d.remove_edge((ma, "out"), (mb, "in"))
        d.remove_edge((mb, "out"), (ma, "in"))

    flow_value, flow = nx.maximum_flow(d, "S*", "T*")
    if flow_value < 2:
        raise RoutingError(f"no simple port-to-port route through {valve}")

    legs = []
    for hub in ("SRC*", "SNK*"):
        first_hop = next((w for w, amt in flow[hub].items() if amt >= 1), None)
        if first_hop is None:
            continue
        leg = [first_hop[0]]
        node = first_hop
        for _ in range(g.number_of_nodes() + 1):
            node_out = (node[0], "out")
            nxt = next(
                (w for w, amt in flow[node_out].items() if amt >= 1), None
            )
            if nxt is None or nxt == "T*":
                break
            leg.append(nxt[0])
            node = nxt
        else:
            raise RoutingError(f"cyclic flow decomposition for {valve}")
        legs.append(leg)
    if len(legs) != 2:
        raise RoutingError(f"flow decomposition failed for {valve}")

    # Orient: the leg ending at ma comes first, the other is reversed.
    leg_a = next((l for l in legs if l[-1] == ma), None)
    leg_b = next((l for l in legs if l[-1] == mb), None)
    if leg_a is None or leg_b is None:
        raise RoutingError(f"flow legs do not end at {valve} endpoints")
    contracted_route = leg_a + list(reversed(leg_b))
    if isinstance(contracted_route[0], Port) and contracted_route[0].is_sink:
        contracted_route.reverse()
    if not (isinstance(contracted_route[0], Port) and contracted_route[0].is_source):
        raise RoutingError(f"route through {valve} does not start at a source")
    if not (isinstance(contracted_route[-1], Port) and contracted_route[-1].is_sink):
        raise RoutingError(f"route through {valve} does not end at a sink")

    pinned = {frozenset((ma, mb)): (valve.a, valve.b)}
    return expand_contracted_route(fpva, g, contracted_route, pinned)


def route_valves(fpva: FPVA, route: Sequence[Hashable]) -> list[Edge]:
    """The valves along a node route (ports and channel edges skipped)."""
    valves = []
    for u, v in zip(route, route[1:]):
        if isinstance(u, Port) or isinstance(v, Port):
            continue
        edge = Edge(min(u, v), max(u, v))
        if edge in fpva.valve_set:
            valves.append(edge)
    return valves


def shortest_route(fpva: FPVA, graph: nx.Graph | None = None) -> list[Hashable]:
    """Shortest source→sink route (used for sanity checks and examples)."""
    g = graph if graph is not None else cell_graph(fpva)
    best: list | None = None
    for s in fpva.sources:
        lengths, paths = nx.single_source_dijkstra(g, s)
        for t in fpva.sinks:
            if t in paths and (best is None or len(paths[t]) < len(best)):
                best = paths[t]
    if best is None:
        raise RoutingError("no source→sink route exists")
    return best
