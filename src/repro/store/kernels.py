"""On-disk persistence for compiled reachability kernels.

One ``.npz`` per array, content-addressed by :func:`kernel_digest`, holding
the destination-sorted CSR arc table (:meth:`ReachabilityKernel.to_arrays`).
Loading installs the arrays verbatim — no graph walk, no sort — so a warm
kernel is bit-identical to a cold compile, and the sharded campaign runner
can ship a *path* to worker processes instead of a pickled kernel per
shard payload.

Artifacts are **backend-agnostic**: only the arc table is persisted,
never a propagation backend or its compiled schedule, so one stored
kernel loads into any :mod:`repro.sim.backends` tier (word, tile, jit,
gpu) and replays bit-identical readings — sessions attach their tier
after load.

Writes are atomic (temp file + ``os.replace``) so a crashed build never
leaves a half-written artifact addressable.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.fpva.array import FPVA
from repro.sim.kernel import ReachabilityKernel
from repro.store.digest import STORE_FORMAT_VERSION, kernel_digest


class KernelStore:
    """Content-addressed ``.npz`` store of compiled kernel arc tables."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path_for(self, fpva: FPVA) -> Path:
        return self.root / f"{kernel_digest(fpva)}.npz"

    def has(self, fpva: FPVA) -> bool:
        return self.path_for(fpva).exists()

    def save(self, kernel: ReachabilityKernel) -> Path:
        """Persist a compiled kernel; returns the artifact path."""
        path = self.path_for(kernel.fpva)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        arrays = kernel.to_arrays()
        arrays["version"] = np.array([STORE_FORMAT_VERSION], dtype=np.int64)
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path cleanup
                tmp.unlink()
        return path

    @staticmethod
    def load_file(fpva: FPVA, path: str | os.PathLike) -> ReachabilityKernel:
        """Rebuild a kernel for ``fpva`` from a stored arc table."""
        with np.load(path) as data:
            if int(data["version"][0]) != STORE_FORMAT_VERSION:
                raise ValueError(
                    f"kernel artifact {path} has an unsupported format version"
                )
            arrays = {k: data[k] for k in ("arc_src", "arc_dst", "arc_valve", "arc_edge")}
        return ReachabilityKernel.from_arrays(fpva, arrays)

    def load(self, fpva: FPVA) -> ReachabilityKernel | None:
        """The stored kernel for ``fpva``, or ``None`` on a cache miss."""
        path = self.path_for(fpva)
        if not path.exists():
            return None
        return self.load_file(fpva, path)

    def get_or_compile(self, fpva: FPVA) -> ReachabilityKernel:
        """Warm-load the kernel, compiling and persisting on first use."""
        kernel = self.load(fpva)
        if kernel is None:
            kernel = ReachabilityKernel(fpva)
            self.save(kernel)
        return kernel
