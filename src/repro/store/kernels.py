"""On-disk persistence for compiled reachability kernels.

One ``.npz`` per array, content-addressed by :func:`kernel_digest`, holding
the destination-sorted CSR arc table (:meth:`ReachabilityKernel.to_arrays`).
Loading installs the arrays verbatim — no graph walk, no sort — so a warm
kernel is bit-identical to a cold compile, and the sharded campaign runner
can ship a *path* to worker processes instead of a pickled kernel per
shard payload.

Artifacts are **backend-agnostic**: only the arc table is persisted,
never a propagation backend or its compiled schedule, so one stored
kernel loads into any :mod:`repro.sim.backends` tier (word, tile, jit,
gpu) and replays bit-identical readings — sessions attach their tier
after load.

Writes are atomic (temp file + ``os.replace``) and durable (payloads and
the directory entry are fsynced before the rename), so neither a crash
nor a power loss leaves a half-written artifact addressable.  Each
``.npz`` publishes alongside a ``<digest>.meta.json`` sidecar recording
its BLAKE2b content checksum; loads verify the bytes they are about to
parse and raise :exc:`~repro.store.integrity.ArtifactCorruptionError` on
a mismatch — callers convert that into quarantine-and-recompile
(:meth:`KernelStore.get_or_compile` does it for them).  Artifacts
published before checksums existed load unverified, exactly as before.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.fpva.array import FPVA
from repro.sim.kernel import ReachabilityKernel
from repro.store.digest import STORE_FORMAT_VERSION, kernel_digest
from repro.store.integrity import (
    ArtifactCorruptionError,
    data_checksum,
    fsync_dir,
    load_json,
    quarantine,
    verify_file,
)


def _meta_path(path: Path) -> Path:
    """The checksum sidecar for one kernel ``.npz`` artifact."""
    return path.with_name(f"{path.stem}.meta.json")


class KernelStore:
    """Content-addressed ``.npz`` store of compiled kernel arc tables."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, fpva: FPVA) -> Path:
        return self.root / f"{kernel_digest(fpva)}.npz"

    def has(self, fpva: FPVA) -> bool:
        return self.path_for(fpva).exists()

    def save(self, kernel: ReachabilityKernel) -> Path:
        """Persist a compiled kernel; returns the artifact path."""
        path = self.path_for(kernel.fpva)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        arrays = kernel.to_arrays()
        arrays["version"] = np.array([STORE_FORMAT_VERSION], dtype=np.int64)
        meta_tmp = path.with_name(f".{path.stem}.meta.tmp-{os.getpid()}")
        try:
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            payload = buffer.getvalue()
            with open(tmp, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            meta = {
                "version": STORE_FORMAT_VERSION,
                "digest": kernel_digest(kernel.fpva),
                "checksum": data_checksum(payload),
            }
            with open(meta_tmp, "w") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            # Sidecar first: a crash between the renames leaves checksum
            # metadata without a payload, which has() treats as absent.
            os.replace(meta_tmp, _meta_path(path))
            os.replace(tmp, path)
            fsync_dir(self.root)
        finally:
            for leftover in (tmp, meta_tmp):
                if leftover.exists():  # pragma: no cover - crash-path cleanup
                    leftover.unlink()
        return path

    @staticmethod
    def load_file(fpva: FPVA, path: str | os.PathLike) -> ReachabilityKernel:
        """Rebuild a kernel for ``fpva`` from a stored arc table.

        Verifies the artifact's BLAKE2b checksum (when its sidecar
        exists) against exactly the bytes parsed; raises
        :exc:`ArtifactCorruptionError` on mismatch or an unparseable
        payload instead of crashing inside :mod:`numpy`.
        """
        path = Path(path)
        expected = None
        meta_path = _meta_path(path)
        if meta_path.exists():
            meta = load_json(meta_path)
            expected = meta.get("checksum")
        payload = verify_file(path, expected)
        try:
            with np.load(io.BytesIO(payload)) as data:
                if int(data["version"][0]) != STORE_FORMAT_VERSION:
                    raise ValueError(
                        f"kernel artifact {path} has an unsupported format version"
                    )
                arrays = {
                    k: data[k]
                    for k in ("arc_src", "arc_dst", "arc_valve", "arc_edge")
                }
        except (zipfile.BadZipFile, KeyError, OSError) as exc:
            raise ArtifactCorruptionError(path, f"unparseable payload: {exc}")
        return ReachabilityKernel.from_arrays(fpva, arrays)

    def load(self, fpva: FPVA) -> ReachabilityKernel | None:
        """The stored kernel for ``fpva``, or ``None`` on a cache miss.

        Raises :exc:`ArtifactCorruptionError` when the artifact exists
        but fails verification — callers quarantine and recompile (see
        :meth:`get_or_compile` / :meth:`heal`).
        """
        path = self.path_for(fpva)
        if not path.exists():
            return None
        return self.load_file(fpva, path)

    def heal(self, fpva: FPVA, error: ArtifactCorruptionError) -> Path | None:
        """Quarantine one corrupt kernel artifact (payload + sidecar)."""
        path = self.path_for(fpva)
        pen = quarantine(self.root, path, error.reason)
        meta_path = _meta_path(path)
        if meta_path.exists():
            quarantine(self.root, meta_path, error.reason)
        return pen

    def get_or_compile(self, fpva: FPVA) -> ReachabilityKernel:
        """Warm-load the kernel, compiling and persisting on first use.

        A corrupt stored artifact is quarantined and recompiled from the
        array — self-healing, never served.
        """
        try:
            kernel = self.load(fpva)
        except ArtifactCorruptionError as error:
            self.heal(fpva, error)
            kernel = None
        if kernel is None:
            kernel = ReachabilityKernel(fpva)
            self.save(kernel)
        return kernel
