"""Persistent compiled-artifact store: warm starts for heavy workloads.

Every layer above the simulator compiles something expensive and
deterministic — the reachability kernel's arc table, the fault
dictionary's syndrome table — and before this subsystem existed each
invocation rebuilt them from scratch, which capped dictionary-backed
diagnosis at 8x8.  The store persists those artifacts on disk,
content-addressed by a stable digest of what they were compiled from
(:mod:`repro.store.digest`), so repeated traffic pays the build once:

* :class:`KernelStore` — one ``.npz`` of flat CSR arrays per array
  structure (:mod:`repro.store.kernels`);
* :class:`DictionaryStore` — chunked syndrome tables that a streaming
  :class:`~repro.sim.diagnosis.FaultDictionary` build appends to in
  bounded memory (:mod:`repro.store.dictionaries`);
* :class:`ArtifactStore` — the facade bundling both under one cache
  directory (the CLI's ``--cache-dir``).

Cache invalidation is purely by content addressing: any change to the
layout, vector suite, fault universe or cardinality produces a new digest
and therefore a cold build; stale entries are never reinterpreted.

Integrity (:mod:`repro.store.integrity`): every published artifact
records a BLAKE2b checksum of its payload bytes; loads verify lazily and
a mismatch raises :class:`ArtifactCorruptionError`, which callers convert
into quarantine-and-rebuild — the corrupt evidence moves to a
``quarantine/`` directory beside the store and the artifact is re-derived
from source (kernels recompile, dictionary chunks re-simulate, campaign
shards re-enter their journal as pending).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.store.dictionaries import DictionaryStore, DictionaryWriter
from repro.store.digest import (
    STORE_FORMAT_VERSION,
    dictionary_digest,
    digest_int,
    fault_key,
    kernel_digest,
    layout_digest,
    layout_key,
    suite_digests,
    universe_digest,
    vector_key,
)
from repro.store.integrity import (
    ArtifactCorruptionError,
    data_checksum,
    file_checksum,
    quarantine,
    quarantined_artifacts,
    verify_file,
)
from repro.store.kernels import KernelStore
from repro.store.lineage import (
    DeltaPlan,
    DictionaryInfo,
    GcPlan,
    plan_gc,
    resolve_ancestor,
)


class ArtifactStore:
    """One cache directory holding every artifact family."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.kernels = KernelStore(self.root / "kernels")
        self.dictionaries = DictionaryStore(self.root / "dictionaries")

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"


def as_store(store: "ArtifactStore | str | os.PathLike | None") -> ArtifactStore | None:
    """Coerce ``None`` / path-like / :class:`ArtifactStore` to a store."""
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


__all__ = [
    "ArtifactCorruptionError",
    "ArtifactStore",
    "DeltaPlan",
    "DictionaryInfo",
    "DictionaryStore",
    "DictionaryWriter",
    "GcPlan",
    "KernelStore",
    "STORE_FORMAT_VERSION",
    "as_store",
    "data_checksum",
    "dictionary_digest",
    "digest_int",
    "fault_key",
    "file_checksum",
    "kernel_digest",
    "layout_digest",
    "layout_key",
    "plan_gc",
    "quarantine",
    "quarantined_artifacts",
    "resolve_ancestor",
    "suite_digests",
    "universe_digest",
    "vector_key",
]
