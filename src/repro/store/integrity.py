"""Artifact integrity: checksums, durable publishes, and quarantine.

Every store in this package publishes atomically (temp + ``os.replace``)
so a *crash* never leaves a half-written artifact addressable.  That
protocol says nothing about what happens **after** publish: a bit flip
on disk, a torn ``meta.json`` from a power loss, or an operator ``dd``
accident would previously either crash a warm load or — far worse —
silently poison a merged campaign result we promise is bit-identical.

This module is the shared discipline the stores now follow:

* **Checksums.**  Every published payload records a BLAKE2b content
  checksum in its completeness marker (:func:`file_checksum` /
  :func:`data_checksum`).  Loads verify lazily — at read time, on
  exactly the bytes about to be parsed — and a mismatch raises the
  typed :exc:`ArtifactCorruptionError` instead of whatever exception
  the corrupted parser would have thrown.

* **Durability.**  :func:`fsync_file` / :func:`fsync_dir` flush a
  payload (and its directory entry) to stable storage *before* the
  atomic rename, so a power loss cannot leave a published-but-empty
  artifact behind the completeness marker.

* **Quarantine.**  :func:`quarantine` moves a corrupt artifact into a
  ``quarantine/`` sibling directory (never deletes — the evidence is
  for the operator) and drops a ``<name>.reason.json`` diagnostic next
  to it.  After the move the artifact is simply *absent* from the
  store, so the ordinary cold-build path regenerates it: kernels
  recompile, dictionary chunks re-simulate, shards re-enter their
  journal as pending.  Corruption therefore heals through the same
  code paths a cache miss takes.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

#: Filename of the per-artifact diagnostic record written on quarantine.
REASON_SUFFIX = ".reason.json"

#: Hex-digest size used for artifact content checksums (BLAKE2b).
CHECKSUM_DIGEST_SIZE = 16

_CHUNK = 1 << 20


class ArtifactCorruptionError(RuntimeError):
    """A stored artifact failed integrity verification.

    Carries enough context for the caller to quarantine and rebuild:
    the artifact ``path`` that failed and a human-readable ``reason``.
    Callers are expected to convert this into quarantine-and-rebuild,
    never to merge or serve the corrupt payload.
    """

    def __init__(self, path: str | os.PathLike, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"corrupt artifact {self.path}: {reason}")


def data_checksum(payload: bytes) -> str:
    """BLAKE2b hex checksum of an in-memory payload."""
    return hashlib.blake2b(
        payload, digest_size=CHECKSUM_DIGEST_SIZE
    ).hexdigest()


def file_checksum(path: str | os.PathLike) -> str:
    """Streaming BLAKE2b hex checksum of a file's bytes."""
    digest = hashlib.blake2b(digest_size=CHECKSUM_DIGEST_SIZE)
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_CHUNK)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


#: Per-process memo of payloads that already verified clean: path ->
#: (expected checksum, size, mtime_ns, inode) captured from the very file
#: descriptor the clean bytes were read through.  Published artifacts are
#: immutable (atomic replace swaps the whole inode), so a later read of
#: the same path whose fstat signature still matches is the same bytes —
#: warm-session consumers that touch one chunk many times pay BLAKE2b
#: once, not per load.  Verification stays lazy and a *changed* file
#: (heal, republish, corruption injected via a fresh write) changes its
#: signature and re-verifies; the one hole — an in-place bit flip that
#: leaves size+mtime+inode intact within a single process's lifetime —
#: is caught by the next process, exactly the window the pre-cache code
#: had between its own read and parse.
# repro: ignore[R7] -- deliberate per-process cache of verified payload digests, keyed by path + fstat identity; bounded FIFO, never shared across processes
_VERIFIED: dict[str, tuple[str, int, int, int]] = {}

#: FIFO bound on the verified-payload memo (a 20x20 card-2 dictionary is
#: a few hundred chunks; 4096 entries covers many warm sessions).
_VERIFIED_LIMIT = 4096


def _reset_verified_cache() -> None:
    """Drop the per-process verified-payload memo (test hook)."""
    _VERIFIED.clear()


def verify_file(path: str | os.PathLike, expected: str | None) -> bytes:
    """Read ``path`` fully, verifying its checksum on the way.

    Returns the verified bytes (so callers parse exactly what was
    hashed — no read-verify-reread race).  ``expected=None`` marks a
    legacy artifact published before checksums existed: it loads
    unverified, exactly as it always did.  Repeat reads of a payload this
    process already verified skip the hash when the file's fstat
    signature is unchanged (see ``_VERIFIED``); a mismatch always raises
    and never caches.
    """
    try:
        with open(path, "rb") as fh:
            stat = os.fstat(fh.fileno())
            payload = fh.read()
    except FileNotFoundError:
        raise ArtifactCorruptionError(path, "payload file is missing") from None
    if expected is None:
        return payload
    key = str(path)
    signature = (expected, stat.st_size, stat.st_mtime_ns, stat.st_ino)
    if _VERIFIED.get(key) == signature and len(payload) == stat.st_size:
        return payload
    actual = data_checksum(payload)
    if actual != expected:
        raise ArtifactCorruptionError(
            path, f"checksum mismatch (expected {expected}, got {actual})"
        )
    while len(_VERIFIED) >= _VERIFIED_LIMIT:
        _VERIFIED.pop(next(iter(_VERIFIED)))
    _VERIFIED[key] = signature
    return payload


def fsync_file(path: str | os.PathLike) -> None:
    """Flush one file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | os.PathLike) -> None:
    """Flush a directory entry (new/renamed children) to stable storage.

    Best-effort on filesystems that refuse ``fsync`` on directories —
    the atomic-rename protocol is still crash-safe there, just not
    power-loss-proof.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def fsync_tree(directory: str | os.PathLike) -> None:
    """Flush every file in ``directory`` (then the directory itself)."""
    directory = Path(directory)
    for child in sorted(directory.iterdir()):
        if child.is_file():
            fsync_file(child)
    fsync_dir(directory)


def load_json(path: str | os.PathLike) -> dict:
    """Parse a completeness marker, typing torn/absent files as corruption.

    A ``meta.json`` that exists but does not parse is exactly the torn
    write this layer exists to catch — surfacing it as
    :exc:`ArtifactCorruptionError` lets every caller share one
    quarantine-and-rebuild path instead of special-casing
    ``JSONDecodeError``.
    """
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise ArtifactCorruptionError(path, f"unreadable metadata: {exc}")


def quarantine(
    root: str | os.PathLike, artifact: str | os.PathLike, reason: str
) -> Path | None:
    """Move a corrupt artifact (file or directory) into ``root/quarantine``.

    Returns the quarantined path, or ``None`` when the artifact vanished
    meanwhile (a concurrent healer won — their quarantine carries the
    evidence).  Repeated quarantines of the same name get ``-1``, ``-2``
    … suffixes, so evidence from independent corruption events never
    overwrites.  A ``<name>.reason.json`` diagnostic records why, when,
    and by whom.
    """
    artifact = Path(artifact)
    pen = Path(root) / "quarantine"
    pen.mkdir(parents=True, exist_ok=True)
    target = pen / artifact.name
    bump = 0
    while target.exists():
        bump += 1
        target = pen / f"{artifact.name}-{bump}"
    try:
        os.replace(artifact, target)
    except FileNotFoundError:
        return None
    except OSError:
        # Cross-device or directory-over-directory edge: fall back to a
        # copy-then-remove move (still never deletes without preserving).
        shutil.move(str(artifact), str(target))
    record = {
        "artifact": artifact.name,
        "quarantined_from": str(artifact.parent),
        "reason": reason,
        "pid": os.getpid(),
        "quarantined_at": time.time(),
    }
    with open(f"{target}{REASON_SUFFIX}", "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
    return target


def quarantined_artifacts(root: str | os.PathLike) -> list[dict]:
    """The diagnostic records under ``root/quarantine`` (operator view)."""
    pen = Path(root) / "quarantine"
    if not pen.is_dir():
        return []
    records = []
    for reason_file in sorted(pen.glob(f"*{REASON_SUFFIX}")):
        try:
            with open(reason_file) as fh:
                records.append(json.load(fh))
        except (json.JSONDecodeError, OSError):  # pragma: no cover
            records.append({"artifact": reason_file.name, "reason": "unreadable"})
    return records
