"""Dictionary lineage: ancestor resolution and superseded-artifact GC.

Every dictionary artifact published since this module exists records a
``lineage`` block in its completeness marker::

    "lineage": {
        "layout":   "<digest of the array structure>",
        "universe": "<digest of the ordered fault universe>",
        "suite":    ["<per-vector content digest>", ...],   # suite order
        "parent":   null | "<digest of the ancestor artifact>",
        "delta":    null | {"new_vectors": [...], "from_cardinality": N}
    }

Because syndromes are per-vector readings, the stored table for suite
``S`` contains, verbatim, every ``S``-column of any superset suite over
the same (layout, ordered universe) — and a cardinality-``c`` table is an
exact prefix of the cardinality-``c+1`` enumeration.  Ancestor resolution
(:func:`resolve_ancestor`) exploits both: given a target key it scans the
store's catalog for compatible artifacts (same layout + universe digest,
vector-digest set ⊆ target's, cardinality ≤ target's) and picks the one
that avoids the most work, so
:class:`~repro.sim.diagnosis.FaultDictionary` can build the new artifact
from the ancestor's rows plus only the genuinely new columns/fault sets.

Incremental builds publish **complete, self-contained** artifacts under
the target digest — never load-time delta chains — so warm loads, heal
paths and bit-identity stay exactly as they were; the parent pointer is
provenance, not a read dependency.  That is also what gives garbage
collection its meaning: an artifact that is the recorded parent of
another stored artifact is strictly superseded (its child carries a
superset of its information and serves every future delta at least as
well), so :func:`plan_gc` lists exactly those, keeping every lineage tip
and anything it cannot reason about (pre-lineage artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.store.dictionaries import DictionaryStore


@dataclass(frozen=True)
class DictionaryInfo:
    """One stored dictionary artifact's identity, as cataloged from disk."""

    digest: str
    cardinality: int
    fault_sets: int
    universe_size: int
    layout: str
    universe: str
    #: Per-vector content digests, in the artifact's suite order.
    suite: tuple[str, ...]
    #: Digest of the ancestor artifact this one was delta-built from.
    parent: str | None
    bytes_on_disk: int = 0


def dictionary_info(
    digest: str, meta: Mapping[str, object], bytes_on_disk: int = 0
) -> DictionaryInfo | None:
    """Decode one ``meta.json`` into a :class:`DictionaryInfo`.

    Returns ``None`` for artifacts published before lineage existed (or
    with mangled lineage blocks) — they stay loadable by digest exactly
    as before, they just never participate in reuse or GC.
    """
    lineage = meta.get("lineage")
    if not isinstance(lineage, dict):
        return None
    try:
        parent = lineage.get("parent")
        return DictionaryInfo(
            digest=digest,
            cardinality=int(meta["cardinality"]),  # type: ignore[call-overload]
            fault_sets=int(meta.get("fault_sets", 0)),  # type: ignore[call-overload]
            universe_size=int(meta["universe_size"]),  # type: ignore[call-overload]
            layout=str(lineage["layout"]),
            universe=str(lineage["universe"]),
            suite=tuple(str(s) for s in lineage["suite"]),
            parent=str(parent) if parent is not None else None,
            bytes_on_disk=bytes_on_disk,
        )
    except (KeyError, TypeError, ValueError):
        return None


@dataclass(frozen=True)
class DeltaPlan:
    """How to assemble a target dictionary from a stored ancestor."""

    ancestor: DictionaryInfo
    #: Target-suite positions of the vectors the ancestor lacks — the only
    #: columns an incremental build simulates.
    new_positions: tuple[int, ...]


def resolve_ancestor(
    store: "DictionaryStore",
    layout: str,
    universe: str,
    universe_size: int,
    suite: Sequence[str],
    cardinality: int,
    base_digest: str | None = None,
) -> DeltaPlan | None:
    """The most-reusable stored ancestor for a target dictionary key.

    A candidate must share the layout and the *ordered* universe (rows
    are universe indices), carry only vectors the target also carries
    (digest-set inclusion — order free, since an incremental build
    re-sorts syndrome entries into target suite order), and not exceed
    the target cardinality (lower cardinalities are exact enumeration
    prefixes).  Among candidates the highest cardinality wins (promotion
    work dominates), then the widest suite (fewest new columns), then the
    largest row count, with the digest as the deterministic tie-break.

    ``base_digest`` pins resolution to one specific artifact — it is
    still validated against every compatibility rule, and ``None`` comes
    back when it fails any (the caller cold-builds rather than guessing).

    Suites with duplicate vector digests resolve to ``None``: carried
    syndrome entries are re-positioned by vector identity, which a
    duplicated vector makes ambiguous.
    """
    target_suite = list(suite)
    target_set = set(target_suite)
    if len(target_set) != len(target_suite):
        return None
    best: tuple[tuple[int, int, int, str], DictionaryInfo] | None = None
    for info in store.catalog():
        if base_digest is not None and info.digest != base_digest:
            continue
        if info.layout != layout or info.universe != universe:
            continue
        if info.universe_size != universe_size:
            continue
        if info.cardinality > cardinality:
            continue
        candidate_set = set(info.suite)
        if len(candidate_set) != len(info.suite):
            continue
        if not candidate_set <= target_set:
            continue
        if candidate_set == target_set and info.cardinality == cardinality:
            # The target artifact itself (possible when the caller raced a
            # concurrent publisher) — a warm load serves it, not a delta.
            continue
        rank = (info.cardinality, len(info.suite), info.fault_sets, info.digest)
        if best is None or rank > best[0]:
            best = (rank, info)
    if best is None:
        return None
    ancestor = best[1]
    ancestor_set = set(ancestor.suite)
    new_positions = tuple(
        i for i, d in enumerate(target_suite) if d not in ancestor_set
    )
    return DeltaPlan(ancestor=ancestor, new_positions=new_positions)


@dataclass(frozen=True)
class GcPlan:
    """What :meth:`DictionaryStore.gc` would (or did) act on."""

    #: Artifacts that are the recorded parent of another stored artifact.
    superseded: tuple[DictionaryInfo, ...]
    #: Lineage tips and roots nothing descends from — always kept.
    kept: tuple[DictionaryInfo, ...]
    #: ``parent digest -> digests of its stored children``.
    children: Mapping[str, tuple[str, ...]]

    @property
    def reclaimable_bytes(self) -> int:
        return sum(info.bytes_on_disk for info in self.superseded)


def plan_gc(store: "DictionaryStore") -> GcPlan:
    """Partition the store's cataloged dictionaries into superseded/kept.

    Direct-parent marking is transitively sufficient: every artifact in a
    chain except the tip is *somebody's* parent, so whole chains collapse
    to their tips without walking them.  Artifacts without lineage
    metadata never appear in the catalog and are therefore never touched.
    """
    infos = store.catalog()
    children: dict[str, list[str]] = {}
    for info in infos:
        if info.parent is not None:
            children.setdefault(info.parent, []).append(info.digest)
    superseded = tuple(i for i in infos if i.digest in children)
    kept = tuple(i for i in infos if i.digest not in children)
    return GcPlan(
        superseded=superseded,
        kept=kept,
        children={p: tuple(sorted(c)) for p, c in children.items()},
    )
