"""Chunked on-disk persistence for fault-dictionary syndrome tables.

A dictionary artifact is a content-addressed directory::

    <root>/<digest>/
        chunk-00000.npz   # sets: (N, cardinality) int32 universe indices
        chunk-00001.npz   #       (-1 padded); syndromes: (N,) int32 ids
        ...
        syndromes.json    # interned syndrome table, in first-seen order
        meta.json         # counts + format version; written LAST

Fault sets are stored as indices into the build's ordered fault universe
(the digest covers the universe, so indices are unambiguous), and each
detected set carries the id of its syndrome — full syndromes are stored
once, not per fault set, which keeps 10x10-and-up double-fault tables to
a few int32s per entry.  The syndrome table itself is interned the same
way: vector names once in a header, each failing vector's meter readout
as a bitmask over the (sorted) sink names, so a syndrome serializes as
``[[vector_id, readout_mask], ...]`` — warm loads spend their time
parsing integers, not re-reading thousands of repeated port-name strings.

The writer appends chunks as a **streaming** build produces them, so the
producer never holds more than one chunk of encoded rows; ``meta.json``
doubles as the completeness marker (it is written last, inside a temp
directory that is atomically renamed into place), so a crashed build
leaves nothing addressable.  Every payload file is fsynced before the
publish rename (power loss cannot leave an empty chunk behind the
marker), and ``meta.json`` records a BLAKE2b checksum per file —
:meth:`DictionaryStore.load` verifies each file's bytes before parsing
them and raises :exc:`~repro.store.integrity.ArtifactCorruptionError`
on a mismatch, which callers convert into quarantine-and-rebuild
(:class:`~repro.sim.diagnosis.FaultDictionary` re-simulates the table).
"""

from __future__ import annotations

import io
import json
import os
import shutil
import zipfile
from collections import defaultdict
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.store.digest import STORE_FORMAT_VERSION
from repro.store.integrity import (
    ArtifactCorruptionError,
    data_checksum,
    fsync_dir,
    load_json,
    quarantine,
    verify_file,
)
from repro.store.lineage import DictionaryInfo, GcPlan, dictionary_info, plan_gc

#: Encoded rows buffered before a chunk file is flushed to disk.
CHUNK_ROWS = 16384


def encode_syndromes(syndromes: Iterable) -> dict:
    """Syndrome tuples → the interned JSON payload (see module docstring)."""
    vector_ids: dict[str, int] = {}
    sinks: tuple[str, ...] | None = None
    encoded = []
    for syndrome in syndromes:
        entries = []
        for name, items in syndrome:
            vi = vector_ids.setdefault(name, len(vector_ids))
            names = tuple(sink for sink, _ in items)
            if sinks is None:
                sinks = names
            elif names != sinks:
                raise ValueError(
                    f"inconsistent sink signature in syndromes: "
                    f"{names} vs {sinks}"
                )
            mask = 0
            for j, (_, val) in enumerate(items):
                if val:
                    mask |= 1 << j
            entries.append([vi, mask])
        encoded.append(entries)
    return {
        "vectors": list(vector_ids),
        "sinks": list(sinks or ()),
        "syndromes": encoded,
    }


def decode_syndromes(payload: dict) -> list[tuple]:
    """Inverse of :func:`encode_syndromes` — bit-identical tuples back.

    Repeated ``(vector, readout)`` pairs and readout item tuples are
    interned while decoding, so cost scales with *distinct* failures, not
    with table size.
    """
    vectors = payload["vectors"]
    sinks = payload["sinks"]
    items_cache: dict[int, tuple] = {}
    pair_cache: dict[tuple[int, int], tuple] = {}
    syndromes = []
    for entries in payload["syndromes"]:
        decoded = []
        for vi, mask in entries:
            key = (vi, mask)
            pair = pair_cache.get(key)
            if pair is None:
                items = items_cache.get(mask)
                if items is None:
                    items = items_cache[mask] = tuple(
                        (sink, bool((mask >> j) & 1))
                        for j, sink in enumerate(sinks)
                    )
                pair = pair_cache[key] = (vectors[vi], items)
            decoded.append(pair)
        syndromes.append(tuple(decoded))
    return syndromes


class DictionaryWriter:
    """Streaming appender for one dictionary artifact.

    Builds into ``<digest>.tmp-<pid>`` and renames to ``<digest>`` on
    :meth:`commit`; :meth:`abort` (idempotent, safe after commit) discards
    the temp directory, so ``try/finally: writer.abort()`` around a build
    yields all-or-nothing persistence.
    """

    def __init__(self, directory: Path, cardinality: int, meta: dict) -> None:
        self._final = directory
        self._tmp = directory.with_name(
            f"{directory.name}.tmp-{os.getpid()}"
        )
        if self._tmp.exists():
            shutil.rmtree(self._tmp)
        self._tmp.mkdir(parents=True)
        self._cardinality = cardinality
        self._meta = dict(meta)
        self._syndrome_ids: dict = {}
        self._rows: list[tuple[int, ...]] = []
        self._row_syndromes: list[int] = []
        self._checksums: dict[str, str] = {}
        self._chunks = 0
        self._total = 0
        self._committed = False

    def annotate(self, **fields: Any) -> None:
        """Merge extra metadata fields before :meth:`commit`.

        Incremental builds use this to record their lineage (parent
        digest + the delta that produced the artifact) once the delta's
        actual shape — reused rows, simulated columns — is known.
        """
        if self._committed:
            raise RuntimeError("cannot annotate a committed artifact")
        self._meta.update(fields)

    def _write_payload(self, name: str, payload: bytes) -> None:
        """Write one artifact file durably, recording its checksum."""
        path = self._tmp / name
        with open(path, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        self._checksums[name] = data_checksum(payload)

    def add(self, indices: Sequence[int], syndrome: Any) -> None:
        """Record one detected fault set (universe indices) + its syndrome."""
        ids = self._syndrome_ids
        sid = ids.get(syndrome)
        if sid is None:
            sid = ids[syndrome] = len(ids)
        pad = self._cardinality - len(indices)
        self._rows.append(tuple(indices) + (-1,) * pad)
        self._row_syndromes.append(sid)
        if len(self._rows) >= CHUNK_ROWS:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._rows:
            return
        buffer = io.BytesIO()
        np.savez(
            buffer,
            sets=np.array(self._rows, dtype=np.int32),
            syndromes=np.array(self._row_syndromes, dtype=np.int32),
        )
        self._write_payload(f"chunk-{self._chunks:05d}.npz", buffer.getvalue())
        self._total += len(self._rows)
        self._rows = []
        self._row_syndromes = []
        self._chunks += 1

    def commit(self) -> Path:
        """Flush, write the syndrome table and metadata, publish atomically.

        Every payload is fsynced (file, then the temp directory, then the
        store root after the rename) so the completeness marker can never
        outlive a power loss that its payloads didn't.
        """
        self._flush_chunk()
        # Insertion order == id order, so the dict iterates id-sorted.
        self._write_payload(
            "syndromes.json",
            json.dumps(
                encode_syndromes(self._syndrome_ids), separators=(",", ":")
            ).encode(),
        )
        meta = {
            **self._meta,
            "version": STORE_FORMAT_VERSION,
            "cardinality": self._cardinality,
            "chunks": self._chunks,
            "fault_sets": self._total,
            "distinct_syndromes": len(self._syndrome_ids),
            "checksums": dict(sorted(self._checksums.items())),
        }
        with open(self._tmp / "meta.json", "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        fsync_dir(self._tmp)
        try:
            os.replace(self._tmp, self._final)
        except OSError:
            # A concurrent build won the publish race (the rename target
            # exists and is non-empty); its artifact is identical by
            # content addressing, so keep it and discard ours.
            if not (self._final / "meta.json").exists():
                raise
            shutil.rmtree(self._tmp)
        fsync_dir(self._final.parent)
        self._committed = True
        return self._final

    def abort(self) -> None:
        """Discard the temp directory (no-op after a successful commit)."""
        if not self._committed and self._tmp.exists():
            shutil.rmtree(self._tmp)


class DictionaryStore:
    """Content-addressed store of chunked syndrome tables."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / digest

    def has(self, digest: str) -> bool:
        """Only *complete* artifacts count (``meta.json`` is written last)."""
        return (self.path_for(digest) / "meta.json").exists()

    def meta(self, digest: str) -> dict:
        """The completeness marker — a torn file types as corruption."""
        return load_json(self.path_for(digest) / "meta.json")

    def heal(self, digest: str, error: ArtifactCorruptionError) -> Path | None:
        """Quarantine one corrupt dictionary artifact directory.

        After the move :meth:`has` is false again, so the ordinary cold
        build re-simulates the table — chunks heal by rebuilding.
        """
        return quarantine(self.root, self.path_for(digest), error.reason)

    def writer(
        self, digest: str, cardinality: int, meta: dict | None = None
    ) -> DictionaryWriter:
        self.root.mkdir(parents=True, exist_ok=True)
        return DictionaryWriter(
            self.path_for(digest), cardinality, meta or {}
        )

    def load(self, digest: str, universe: Sequence) -> dict:
        """Materialize the syndrome table against the build's universe.

        Iterates chunks in append order, so syndromes first-seen order and
        per-syndrome candidate order — and therefore every downstream
        ``DiagnosisReport`` — are bit-identical to the cold build's.
        """
        directory = self.path_for(digest)
        meta = self.meta(digest)
        if meta["version"] != STORE_FORMAT_VERSION:
            raise ValueError(
                f"dictionary artifact {directory} has an unsupported version"
            )
        if meta["universe_size"] != len(universe):
            raise ValueError(
                f"dictionary artifact {directory} was built against a "
                f"{meta['universe_size']}-fault universe, got {len(universe)}"
            )
        # Checksums recorded at publish; absent on pre-integrity artifacts,
        # which load unverified exactly as they always did.
        checksums = meta.get("checksums") or {}
        try:
            syndromes = decode_syndromes(
                json.loads(
                    verify_file(
                        directory / "syndromes.json",
                        checksums.get("syndromes.json"),
                    )
                )
            )
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError) as exc:
            raise ArtifactCorruptionError(
                directory / "syndromes.json", f"unparseable payload: {exc}"
            )
        # Table keys are created in syndrome-id (= first-seen) order, and
        # each row appends through a pre-resolved bucket reference — the
        # nested syndrome tuples are hashed once per *syndrome*, never per
        # fault set, which is what keeps warm loads 20x+ under cold builds.
        table: dict = defaultdict(list)
        buckets = [table[syndrome] for syndrome in syndromes]
        faults = list(universe)
        for chunk in range(meta["chunks"]):
            name = f"chunk-{chunk:05d}.npz"
            payload = verify_file(directory / name, checksums.get(name))
            try:
                with np.load(io.BytesIO(payload)) as data:
                    rows = data["sets"].tolist()
                    sids = data["syndromes"].tolist()
            except (zipfile.BadZipFile, KeyError, OSError) as exc:
                raise ArtifactCorruptionError(
                    directory / name, f"unparseable payload: {exc}"
                )
            if meta["cardinality"] == 1:
                for row, sid in zip(rows, sids):
                    buckets[sid].append((faults[row[0]],))
            elif meta["cardinality"] == 2:
                for (i, j), sid in zip(rows, sids):
                    buckets[sid].append(
                        (faults[i], faults[j]) if j >= 0 else (faults[i],)
                    )
            else:
                # Arbitrary cardinality: strip the -1 padding (trailing by
                # construction, but filtering is order-preserving either way).
                for row, sid in zip(rows, sids):
                    buckets[sid].append(
                        tuple(faults[i] for i in row if i >= 0)
                    )
        return table

    # -- lineage-aware access ---------------------------------------------
    def load_syndromes(self, digest: str) -> list[tuple]:
        """Just the interned syndrome table of one artifact, verified.

        The incremental build reads an *ancestor's* syndromes (to remap
        their entries into the target suite's positions) without
        materializing its full table.
        """
        directory = self.path_for(digest)
        checksums = self.meta(digest).get("checksums") or {}
        try:
            return decode_syndromes(
                json.loads(
                    verify_file(
                        directory / "syndromes.json",
                        checksums.get("syndromes.json"),
                    )
                )
            )
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError) as exc:
            raise ArtifactCorruptionError(
                directory / "syndromes.json", f"unparseable payload: {exc}"
            )

    def iter_rows(self, digest: str) -> Iterator[tuple[tuple[int, ...], int]]:
        """Stream ``(universe-index tuple, syndrome id)`` rows in append order.

        Padding (-1) is stripped, so rows compare directly against the
        canonical fault-set enumeration — the merge-walk the incremental
        build runs against the ancestor artifact.  Verification is lazy
        per chunk; corruption surfaces as :exc:`ArtifactCorruptionError`
        mid-iteration and the caller heals + falls back to a cold build.
        """
        directory = self.path_for(digest)
        meta = self.meta(digest)
        checksums = meta.get("checksums") or {}
        for chunk in range(meta["chunks"]):
            name = f"chunk-{chunk:05d}.npz"
            payload = verify_file(directory / name, checksums.get(name))
            try:
                with np.load(io.BytesIO(payload)) as data:
                    rows = data["sets"].tolist()
                    sids = data["syndromes"].tolist()
            except (zipfile.BadZipFile, KeyError, OSError) as exc:
                raise ArtifactCorruptionError(
                    directory / name, f"unparseable payload: {exc}"
                )
            for row, sid in zip(rows, sids):
                end = len(row)
                while end and row[end - 1] < 0:
                    end -= 1
                yield tuple(row[:end]), sid

    def catalog(self) -> list[DictionaryInfo]:
        """Every complete, lineage-bearing artifact in the store.

        Scan-based (the ``meta.json`` completeness markers *are* the
        index — there is no separate catalog file to corrupt or race).
        Unreadable or pre-lineage metadata skips the entry rather than
        failing the scan: reuse and GC simply do not see it.
        """
        if not self.root.is_dir():
            return []
        infos = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir() or entry.name == "quarantine":
                continue
            if ".tmp-" in entry.name:
                continue
            try:
                meta = load_json(entry / "meta.json")
            except (FileNotFoundError, ArtifactCorruptionError):
                continue
            size = sum(
                f.stat().st_size for f in entry.iterdir() if f.is_file()
            )
            info = dictionary_info(entry.name, meta, bytes_on_disk=size)
            if info is not None:
                infos.append(info)
        return infos

    def gc(
        self, apply: bool = False, quarantine_evidence: bool = False
    ) -> dict:
        """List (and optionally remove) superseded ancestor dictionaries.

        An artifact is superseded when it is the recorded lineage parent
        of another *stored* artifact: the child is complete and carries a
        superset of its information, so nothing — warm loads included —
        is lost by dropping the parent (only a ``base_digest`` pinned to
        it would fall back to a cold build).  Lineage tips and artifacts
        without lineage metadata are never touched.

        ``apply=False`` (the default) is a dry run.  With ``apply=True``
        superseded artifacts are deleted — unless ``quarantine_evidence``
        moves them into the store's ``quarantine/`` directory instead
        (the never-delete-evidence option, same protocol corruption
        uses), where loads no longer address them but the operator keeps
        the bytes.
        """
        plan: GcPlan = plan_gc(self)
        removed: list[str] = []
        for info in plan.superseded:
            if not apply:
                continue
            path = self.path_for(info.digest)
            if not (path / "meta.json").exists():
                continue  # a concurrent gc (or heal) got here first
            if quarantine_evidence:
                reason = "superseded by lineage descendants: " + ", ".join(
                    plan.children.get(info.digest, ())
                )
                if quarantine(self.root, path, reason) is not None:
                    removed.append(info.digest)
            else:
                shutil.rmtree(path)
                removed.append(info.digest)
        if removed:
            fsync_dir(self.root)
        action = "dry-run"
        if apply:
            action = "quarantined" if quarantine_evidence else "removed"
        return {
            "action": action,
            "superseded": [
                {
                    "digest": i.digest,
                    "cardinality": i.cardinality,
                    "fault_sets": i.fault_sets,
                    "vectors": len(i.suite),
                    "bytes": i.bytes_on_disk,
                    "superseded_by": list(plan.children.get(i.digest, ())),
                }
                for i in plan.superseded
            ],
            "kept": [i.digest for i in plan.kept],
            "reclaimable_bytes": plan.reclaimable_bytes,
            "removed": removed,
        }
