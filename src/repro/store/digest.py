"""Stable content digests for compiled artifacts.

Cached artifacts are keyed by what they were compiled *from*, never by
where or when: a kernel by the array's structure, a dictionary by the
(array, vector suite, fault universe, cardinality) quadruple — the
scenario is captured through the ordered universe it induces.  Two
processes that describe the same workload therefore address the same
cache entry, and any change to layout, suite, universe contents/order or
cardinality changes the digest, which is the entire invalidation story:
stale entries are never overwritten, they are simply never addressed
again.

Encodings are canonical nested tuples of primitives serialized as compact
JSON and hashed with BLAKE2b.  The array's *display name* is deliberately
excluded from the layout key (two identically-shaped arrays with
different labels share artifacts); port names are included because meter
readings — and therefore syndromes — are keyed by them.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.fpva.geometry import Edge
from repro.sim.faults import (
    ChannelBlocked,
    ControlLeak,
    Fault,
    IntermittentStuckAt,
    StuckAt0,
    StuckAt1,
)

#: Bump when any persisted format or canonical encoding changes shape;
#: old cache entries then stop being addressed (never reinterpreted).
STORE_FORMAT_VERSION = 1


def _edge_key(edge: Edge) -> tuple[int, int, int, int]:
    return (edge.a.r, edge.a.c, edge.b.r, edge.b.c)


def layout_key(fpva: FPVA) -> tuple:
    """Canonical structural identity of an array (name excluded)."""
    return (
        fpva.nr,
        fpva.nc,
        tuple(sorted((c.r, c.c) for c in fpva.obstacles)),
        tuple(sorted(_edge_key(e) for e in fpva.channels)),
        tuple(
            (p.kind.value, p.side.value, p.index, p.name) for p in fpva.ports
        ),
    )


def vector_key(vector: TestVector) -> tuple:
    """Canonical identity of one test vector (provenance excluded)."""
    return (
        vector.name,
        vector.kind.value,
        tuple(sorted(_edge_key(e) for e in vector.open_valves)),
        tuple(sorted((name, bool(v)) for name, v in vector.expected.items())),
    )


def fault_key(fault: Fault) -> tuple:
    """Canonical identity of one fault hypothesis."""
    if isinstance(fault, StuckAt0):
        return ("sa0", _edge_key(fault.valve))
    if isinstance(fault, StuckAt1):
        return ("sa1", _edge_key(fault.valve))
    if isinstance(fault, ControlLeak):
        return ("leak", _edge_key(fault.a), _edge_key(fault.b))
    if isinstance(fault, IntermittentStuckAt):
        return (
            "flaky",
            _edge_key(fault.valve),
            bool(fault.stuck_open),
            float(fault.rate),
            int(fault.salt),
        )
    if isinstance(fault, ChannelBlocked):
        return ("blocked", _edge_key(fault.edge))
    raise TypeError(f"unknown fault kind {fault!r}")


def digest_of(*parts: Any) -> str:
    """BLAKE2b hex digest of canonically JSON-serialized parts."""
    payload = json.dumps(parts, separators=(",", ":"), sort_keys=True)
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def digest_int(digest: str, bits: int = 64) -> int:
    """The leading ``bits`` of a hex content digest as an integer.

    Content digests double as deterministic per-artifact entropy: the
    fabric's retry backoff derives its jitter from the shard digest, so
    two workers retrying the same shard de-synchronize identically on
    every host with no RNG state to persist.
    """
    return int(digest[: bits // 4], 16)


def kernel_digest(fpva: FPVA) -> str:
    """Cache key of a compiled :class:`ReachabilityKernel`."""
    return digest_of("kernel", STORE_FORMAT_VERSION, layout_key(fpva))


def scenario_key(scenario: Any, include_control_leaks: bool = True) -> tuple:
    """Canonical identity of a campaign's fault workload.

    ``None`` is the paper's default stuck-at space, whose universe is a
    function of ``include_control_leaks`` alone.  Registered scenarios are
    frozen dataclasses, so ``repr`` canonically captures their parameters
    (a custom scenario must likewise keep its ``repr`` a pure function of
    its sampling behaviour to address shards correctly).
    """
    if scenario is None:
        return ("default", bool(include_control_leaks))
    return ("scenario", scenario.name, repr(scenario))


def campaign_key(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    scenario: Any,
    include_control_leaks: bool,
    seed: int,
    shard_trials: int,
    keep_undetected: int,
) -> tuple:
    """The shared identity prefix of a campaign's shard space.

    Deliberately excludes the fault-count list and the total trial count:
    a shard is addressed by what it *simulates*, so a single-``k``
    campaign and a sweep containing that ``k`` hit the same shard
    artifacts, and extending ``trials`` reuses every full shard already
    published.
    """
    return (
        STORE_FORMAT_VERSION,
        layout_key(fpva),
        tuple(vector_key(v) for v in vectors),
        scenario_key(scenario, include_control_leaks),
        int(seed),
        int(shard_trials),
        int(keep_undetected),
    )


def campaign_digest(key: tuple, fault_counts: Sequence[int], trials: int) -> str:
    """Manifest identity of one concrete campaign/sweep invocation."""
    return digest_of(
        "campaign", key, tuple(int(k) for k in fault_counts), int(trials)
    )


def shard_digest(key: tuple, num_faults: int, shard: int, trials: int) -> str:
    """Content address of one ``(campaign key, k, shard)`` work unit.

    ``trials`` is the shard's own size (the tail shard of an uneven split
    is a different artifact from a full one).
    """
    return digest_of("shard", key, int(num_faults), int(shard), int(trials))


def layout_digest(fpva: FPVA) -> str:
    """Structural identity of one array as a standalone digest.

    Recorded in dictionary lineage metadata so ancestor resolution can
    compare layouts across stored artifacts without re-deriving (or even
    having) the arrays they were built from.
    """
    return digest_of("layout", STORE_FORMAT_VERSION, layout_key(fpva))


def universe_digest(universe: Iterable[Fault]) -> str:
    """Identity of one *ordered* fault universe as a standalone digest.

    Order-sensitive for the same reason :func:`dictionary_digest` is:
    stored fault sets are universe indices, so two artifacts are
    row-compatible only when their universes match element for element.
    """
    return digest_of(
        "universe", STORE_FORMAT_VERSION, [fault_key(f) for f in universe]
    )


def suite_digests(vectors: Sequence[TestVector]) -> list[str]:
    """Per-vector content digests, in suite order.

    The unit of dictionary reuse: a stored artifact whose vector-digest
    *set* is a subset of a new suite's already holds every one of that
    suite's columns for those vectors (syndromes are per-vector readings),
    whatever order either suite lists them in.
    """
    return [
        digest_of("vector", STORE_FORMAT_VERSION, vector_key(v))
        for v in vectors
    ]


def dictionary_digest(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    universe: Iterable[Fault],
    max_cardinality: int,
) -> str:
    """Cache key of a :class:`FaultDictionary` syndrome table.

    The universe is hashed *in order* because stored fault sets are
    encoded as universe indices — a reordered universe is a different
    artifact even when its contents coincide.
    """
    return digest_of(
        "dictionary",
        STORE_FORMAT_VERSION,
        layout_key(fpva),
        [vector_key(v) for v in vectors],
        [fault_key(f) for f in universe],
        int(max_cardinality),
    )
