"""repro — reproduction of "Testing Microfluidic Fully Programmable Valve
Arrays (FPVAs)" (Liu, Li, Bhattacharya, Chakrabarty, Ho, Schlichtmann;
DATE 2017).

The package is organized in four layers:

* :mod:`repro.ilp`  — MILP modeling language + exact solver backends;
* :mod:`repro.fpva` — the chip model (lattice, arrays, layouts, devices);
* :mod:`repro.sim`  — pressure simulation, fault injection, diagnosis;
* :mod:`repro.core` — the paper's test generation (flow paths, cut-sets,
  control-leakage, hierarchy, baseline, validation, rendering);
* :mod:`repro.store` — content-addressed on-disk persistence of compiled
  artifacts (kernels, fault dictionaries) for warm starts.

Quickstart::

    from repro import table1_layout, TestGenerator, Tester, ChipUnderTest
    from repro.sim import StuckAt0

    fpva = table1_layout(5)
    suite = TestGenerator(fpva).generate().testset
    tester = Tester(fpva)
    chip = ChipUnderTest(fpva, [StuckAt0(fpva.valves[7])])
    assert tester.run(chip, suite.all_vectors()).fault_detected
"""

# repro.core first: its modules pull in repro.context themselves, and the
# import chain must enter the cycle through the package that re-exports
# submodules lazily importable mid-initialization (context ← sim ← core).
from repro.core import (
    BaselineGenerator,
    CutSetGenerator,
    FlowPathGenerator,
    GreedyPathGenerator,
    HierarchicalPathGenerator,
    LeakageGenerator,
    TestGenerator,
    TestSet,
    TestVector,
    VectorKind,
    audit_two_fault_detection,
    generate_suite,
    measure_coverage,
    render_array,
    render_paths,
    validate_suite,
)
from repro.context import ExecutionContext, Session
from repro.fpva import (
    FPVA,
    Cell,
    DynamicMixer,
    Edge,
    FPVABuilder,
    Side,
    ValveState,
    edge_between,
    fig8_layout,
    fig9_layout,
    full_layout,
    table1_layout,
)
from repro.sim import (
    ChipUnderTest,
    ControlLeak,
    FaultDictionary,
    PressureSimulator,
    StuckAt0,
    StuckAt1,
    Tester,
    fault_universe,
    run_campaign,
    run_sweep,
)
from repro.store import ArtifactStore

__version__ = "1.0.0"

__all__ = [
    "ExecutionContext",
    "Session",
    "BaselineGenerator",
    "CutSetGenerator",
    "FlowPathGenerator",
    "GreedyPathGenerator",
    "HierarchicalPathGenerator",
    "LeakageGenerator",
    "TestGenerator",
    "TestSet",
    "TestVector",
    "VectorKind",
    "audit_two_fault_detection",
    "generate_suite",
    "measure_coverage",
    "render_array",
    "render_paths",
    "validate_suite",
    "FPVA",
    "Cell",
    "DynamicMixer",
    "Edge",
    "FPVABuilder",
    "Side",
    "ValveState",
    "edge_between",
    "fig8_layout",
    "fig9_layout",
    "full_layout",
    "table1_layout",
    "ChipUnderTest",
    "ControlLeak",
    "FaultDictionary",
    "PressureSimulator",
    "StuckAt0",
    "StuckAt1",
    "Tester",
    "fault_universe",
    "run_campaign",
    "run_sweep",
    "ArtifactStore",
    "__version__",
]
