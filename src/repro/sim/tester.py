"""Vector application and fault detection.

The tester applies a suite of vectors to a (possibly faulty) chip, compares
the meter readings against the fault-free expectations stored in each
vector, and reports the *syndrome* — which vectors failed and what the
meters actually showed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import Fault
from repro.sim.pressure import PressureSimulator


@dataclass(frozen=True)
class VectorOutcome:
    """Result of applying one vector to one chip."""

    vector: TestVector
    observed: dict[str, bool]

    @property
    def expected(self) -> dict[str, bool]:
        return dict(self.vector.expected)

    @property
    def passed(self) -> bool:
        return self.observed == self.vector.expected


@dataclass
class TestRunResult:
    """Outcome of a full suite application."""

    __test__ = False  # not a pytest test class despite the name

    outcomes: list[VectorOutcome] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def failing(self) -> list[VectorOutcome]:
        return [o for o in self.outcomes if not o.passed]

    @property
    def fault_detected(self) -> bool:
        return bool(self.failing)

    def syndrome(self) -> tuple[tuple[str, tuple[tuple[str, bool], ...]], ...]:
        """A hashable per-failing-vector signature, for diagnosis lookup."""
        return tuple(
            (o.vector.name, tuple(sorted(o.observed.items())))
            for o in self.failing
        )


class Tester:
    """Applies vectors to chips under test."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        fpva: FPVA | None = None,
        kernel=None,
        engine: str = "kernel",
        *,
        simulator: PressureSimulator | None = None,
    ):
        if simulator is not None:
            # Shared-session construction (ExecutionContext.tester): adopt
            # the session's simulator instead of building a private one.
            if fpva is not None and simulator.fpva is not fpva:
                raise ValueError("simulator was built for a different array")
            self.fpva = simulator.fpva
            self.simulator = simulator
            return
        if fpva is None:
            raise TypeError("Tester requires an array (or a simulator=)")
        self.fpva = fpva
        self.simulator = PressureSimulator(fpva, kernel=kernel, engine=engine)

    def expected_readings(self, open_valves: Iterable) -> dict[str, bool]:
        """Fault-free meter readings for a commanded open set."""
        return self.simulator.meter_readings(frozenset(open_valves))

    def apply(self, chip: ChipUnderTest, vector: TestVector) -> VectorOutcome:
        """Apply one vector and read the meters."""
        effective, blocked = chip.effective_state(vector)
        observed = self.simulator.meter_readings(effective, blocked=blocked)
        return VectorOutcome(vector=vector, observed=observed)

    def run(
        self,
        chip: ChipUnderTest,
        vectors: Sequence[TestVector],
        stop_at_first_fail: bool = False,
    ) -> TestRunResult:
        """Apply a suite; optionally stop at the first failing vector."""
        result = TestRunResult()
        for vector in vectors:
            outcome = self.apply(chip, vector)
            result.outcomes.append(outcome)
            if stop_at_first_fail and not outcome.passed:
                result.stopped_early = True
                break
        return result

    def detects(self, faults: Sequence[Fault], vectors: Sequence[TestVector]) -> bool:
        """True if the suite flags a chip carrying exactly these faults."""
        chip = ChipUnderTest(self.fpva, faults)
        return self.run(chip, vectors, stop_at_first_fail=True).fault_detected
