"""Pressure propagation simulator.

The paper's test observation model is binary: air pressure applied at the
source ports either reaches a pressure meter or it does not, depending on
which valves are open.  That is graph reachability on the cell graph.

Single queries are answered by the compiled
:class:`~repro.sim.kernel.ReachabilityKernel` (flat integer arrays, int
bitmask tests — no per-arc ``Edge`` hashing, no per-call dict rebuilds);
batch consumers grab :attr:`PressureSimulator.kernel` directly and
evaluate 64 scenarios per machine word.  The original object-graph BFS is
retained verbatim as the ``*_legacy`` methods: it is the pure-Python
reference the kernel is differentially tested and benchmarked against.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.fpva.array import FPVA
from repro.fpva.geometry import Cell, Edge
from repro.sim.kernel import ReachabilityKernel


def _as_open_set(open_valves: Iterable[Edge]):
    """Coerce a commanded-open iterable to a set exactly once (shared by
    every legacy query path)."""
    if isinstance(open_valves, (set, frozenset)):
        return open_valves
    return set(open_valves)


class PressureSimulator:
    """Reachability-based pressure simulation for one array.

    The simulator is immutable and reusable: build once per array, call
    :meth:`meter_readings` per vector application.  A pre-compiled kernel
    may be supplied (campaign workers ship one per pool instead of
    re-deriving the graph per shard).
    """

    def __init__(
        self,
        fpva: FPVA,
        kernel: ReachabilityKernel | None = None,
        engine: str = "kernel",
    ):
        self.fpva = fpva
        if kernel is not None and kernel.fpva is not fpva:
            raise ValueError("kernel was compiled for a different array")
        self._legacy_built = False
        #: Which engine public queries dispatch to ("kernel" or "object");
        #: batched consumers (coverage, hardening) branch on this.
        self.engine = engine
        if engine == "kernel":
            self.kernel = (
                kernel if kernel is not None else ReachabilityKernel(fpva)
            )
        elif engine == "object":
            # Pure-Python reference engine: public queries dispatch to the
            # retained object-graph BFS (bound per instance — no per-call
            # branching), and no kernel is compiled.
            self.kernel = kernel
            self.meter_readings = self.meter_readings_legacy
            self.pressurized_nodes = self.pressurized_nodes_legacy
            self._build_legacy()
        else:
            raise ValueError(f"unknown simulator engine {engine!r}")

    # -- kernel-backed queries ---------------------------------------------
    def meter_readings(
        self,
        open_valves: Iterable[Edge],
        blocked: frozenset[Edge] = frozenset(),
    ) -> dict[str, bool]:
        """Pressure reading at every sink port, keyed by port name."""
        kernel = self.kernel
        return kernel.readings(
            kernel.valve_mask(open_valves),
            kernel.edge_mask(blocked) if blocked else 0,
        )

    def pressurized_nodes(
        self,
        open_valves: Iterable[Edge],
        blocked: frozenset[Edge] = frozenset(),
    ) -> set:
        """All cell/port nodes reached by source pressure.

        ``blocked`` removes flow edges outright — a physically obstructed
        connection conducts no pressure regardless of valve state (the
        :class:`~repro.sim.faults.ChannelBlocked` scenario fault).
        """
        kernel = self.kernel
        seen = kernel.reach(
            kernel.valve_mask(open_valves),
            kernel.edge_mask(blocked) if blocked else 0,
        )
        nodes = kernel.nodes
        return {nodes[i] for i, hit in enumerate(seen) if hit}

    def cells_pressurized(self, open_valves: Iterable[Edge]) -> set[Cell]:
        """Only the pressurized fluid cells (ports filtered out)."""
        return {
            node
            for node in self.pressurized_nodes(open_valves)
            if isinstance(node, Cell)
        }

    def sink_separated(self, open_valves: Iterable[Edge]) -> bool:
        """True if no sink sees pressure (the cut-set expectation)."""
        return not any(self.meter_readings(open_valves).values())

    # -- retained pure-Python reference ------------------------------------
    def _build_legacy(self) -> None:
        """Build the original object-graph adjacency, on first legacy use.

        Per-query constants that the original implementation rebuilt on
        every call (the sink-index dict and the readings template) are
        hoisted here.
        """
        if self._legacy_built:
            return
        fpva = self.fpva
        nodes: list = list(fpva.cells()) + list(fpva.ports)
        self._index: dict = {node: i for i, node in enumerate(nodes)}
        self._nodes = nodes

        # adjacency[i] = list of (neighbour index, valve Edge or None, link);
        # valve None marks an always-open connection (channel or port
        # opening); link is the underlying flow Edge (None for port
        # openings) so physically blocked edges can be excluded.
        self._adjacency: list[list[tuple[int, Edge | None, Edge | None]]] = [
            [] for _ in nodes
        ]
        for edge in fpva.flow_edges:
            u, w = self._index[edge.a], self._index[edge.b]
            valve = edge if edge in fpva.valve_set else None
            self._adjacency[u].append((w, valve, edge))
            self._adjacency[w].append((u, valve, edge))
        for port in fpva.ports:
            p = self._index[port]
            c = self._index[fpva.port_cell(port)]
            self._adjacency[p].append((c, None, None))
            self._adjacency[c].append((p, None, None))

        self._source_idx = [self._index[p] for p in fpva.sources]
        self._sinks = [(p.name, self._index[p]) for p in fpva.sinks]
        self._sink_idx = {idx: name for name, idx in self._sinks}
        self._sink_names = [name for name, _ in self._sinks]
        self._legacy_built = True

    def pressurized_nodes_legacy(
        self,
        open_valves: Iterable[Edge],
        blocked: frozenset[Edge] = frozenset(),
    ) -> set:
        """Original object-graph BFS (differential reference for the kernel)."""
        self._build_legacy()
        open_set = _as_open_set(open_valves)
        seen = [False] * len(self._nodes)
        queue = deque()
        for s in self._source_idx:
            seen[s] = True
            queue.append(s)
        while queue:
            u = queue.popleft()
            for w, valve, link in self._adjacency[u]:
                if seen[w]:
                    continue
                if valve is not None and valve not in open_set:
                    continue
                if blocked and link is not None and link in blocked:
                    continue
                seen[w] = True
                queue.append(w)
        return {self._nodes[i] for i, hit in enumerate(seen) if hit}

    def meter_readings_legacy(
        self,
        open_valves: Iterable[Edge],
        blocked: frozenset[Edge] = frozenset(),
    ) -> dict[str, bool]:
        """Original object-graph readings (differential reference)."""
        self._build_legacy()
        open_set = _as_open_set(open_valves)
        sink_idx = self._sink_idx
        n_sinks = len(sink_idx)
        readings: dict[str, bool] = dict.fromkeys(self._sink_names, False)

        seen = [False] * len(self._nodes)
        queue = deque()
        for s in self._source_idx:
            seen[s] = True
            queue.append(s)
        found = 0
        while queue and found < n_sinks:
            u = queue.popleft()
            for w, valve, link in self._adjacency[u]:
                if seen[w]:
                    continue
                if valve is not None and valve not in open_set:
                    continue
                if blocked and link is not None and link in blocked:
                    continue
                seen[w] = True
                if w in sink_idx:
                    readings[sink_idx[w]] = True
                    found += 1
                queue.append(w)
        return readings
