"""Pressure propagation simulator.

The paper's test observation model is binary: air pressure applied at the
source ports either reaches a pressure meter or it does not, depending on
which valves are open.  That is graph reachability on the cell graph, which
this module implements with integer-indexed adjacency lists so fault
campaigns (thousands of vector applications) stay fast.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from repro.fpva.array import FPVA
from repro.fpva.geometry import Cell, Edge
from repro.fpva.ports import Port


class PressureSimulator:
    """Reachability-based pressure simulation for one array.

    The simulator is immutable and reusable: build once per array, call
    :meth:`meter_readings` per vector application.
    """

    def __init__(self, fpva: FPVA):
        self.fpva = fpva
        nodes: list = list(fpva.cells()) + list(fpva.ports)
        self._index: dict = {node: i for i, node in enumerate(nodes)}
        self._nodes = nodes

        # adjacency[i] = list of (neighbour index, valve Edge or None, link);
        # valve None marks an always-open connection (channel or port
        # opening); link is the underlying flow Edge (None for port
        # openings) so physically blocked edges can be excluded.
        self._adjacency: list[list[tuple[int, Edge | None, Edge | None]]] = [
            [] for _ in nodes
        ]
        for edge in fpva.flow_edges:
            u, w = self._index[edge.a], self._index[edge.b]
            valve = edge if edge in fpva.valve_set else None
            self._adjacency[u].append((w, valve, edge))
            self._adjacency[w].append((u, valve, edge))
        for port in fpva.ports:
            p = self._index[port]
            c = self._index[fpva.port_cell(port)]
            self._adjacency[p].append((c, None, None))
            self._adjacency[c].append((p, None, None))

        self._source_idx = [self._index[p] for p in fpva.sources]
        self._sinks = [(p.name, self._index[p]) for p in fpva.sinks]

    def pressurized_nodes(
        self,
        open_valves: Iterable[Edge],
        blocked: frozenset[Edge] = frozenset(),
    ) -> set:
        """All cell/port nodes reached by source pressure.

        ``blocked`` removes flow edges outright — a physically obstructed
        connection conducts no pressure regardless of valve state (the
        :class:`~repro.sim.faults.ChannelBlocked` scenario fault).
        """
        open_set = (
            open_valves if isinstance(open_valves, (set, frozenset)) else set(open_valves)
        )
        seen = [False] * len(self._nodes)
        queue = deque()
        for s in self._source_idx:
            seen[s] = True
            queue.append(s)
        while queue:
            u = queue.popleft()
            for w, valve, link in self._adjacency[u]:
                if seen[w]:
                    continue
                if valve is not None and valve not in open_set:
                    continue
                if blocked and link is not None and link in blocked:
                    continue
                seen[w] = True
                queue.append(w)
        return {self._nodes[i] for i, hit in enumerate(seen) if hit}

    def meter_readings(
        self,
        open_valves: Iterable[Edge],
        blocked: frozenset[Edge] = frozenset(),
    ) -> dict[str, bool]:
        """Pressure reading at every sink port, keyed by port name."""
        open_set = (
            open_valves if isinstance(open_valves, (set, frozenset)) else set(open_valves)
        )
        n_sinks = len(self._sinks)
        sink_idx = {idx: name for name, idx in self._sinks}
        readings: dict[str, bool] = {name: False for name, _ in self._sinks}

        seen = [False] * len(self._nodes)
        queue = deque()
        for s in self._source_idx:
            seen[s] = True
            queue.append(s)
        found = 0
        while queue and found < n_sinks:
            u = queue.popleft()
            for w, valve, link in self._adjacency[u]:
                if seen[w]:
                    continue
                if valve is not None and valve not in open_set:
                    continue
                if blocked and link is not None and link in blocked:
                    continue
                seen[w] = True
                if w in sink_idx:
                    readings[sink_idx[w]] = True
                    found += 1
                queue.append(w)
        return readings

    def cells_pressurized(self, open_valves: Iterable[Edge]) -> set[Cell]:
        """Only the pressurized fluid cells (ports filtered out)."""
        return {
            node
            for node in self.pressurized_nodes(open_valves)
            if isinstance(node, Cell)
        }

    def sink_separated(self, open_valves: Iterable[Edge]) -> bool:
        """True if no sink sees pressure (the cut-set expectation)."""
        return not any(self.meter_readings(open_valves).values())
