"""Compiled bitmask reachability kernel: batched pressure simulation.

The observation model is binary reachability on the valve-array graph, and
every downstream consumer — fault-dictionary construction, campaign sweeps,
adaptive scheduling — issues thousands-to-millions of repeated reachability
queries.  The object-graph BFS in :mod:`repro.sim.pressure` hashes
:class:`~repro.fpva.geometry.Edge` tuples on every arc of every query; this
module compiles an :class:`~repro.fpva.array.FPVA` **once** into flat
integer arrays and answers reachability for *batches* of scenarios.

Representation
==============

* Nodes (cells + ports) are numbered once; arcs are stored twice (both
  directions) in a CSR-style layout sorted by *destination* node, so one
  ``np.bitwise_or.reduceat`` aggregates every incoming frontier per node.
* A *scenario* is one effective valve state: an ``open`` bitmask over the
  array's valves plus a ``blocked`` bitmask over its flow edges (debris).
  Masks are arbitrary-precision Python ints for single queries and packed
  ``numpy`` ``uint64`` words for batches — bit ``s`` of word ``w`` belongs
  to scenario ``64*w + s``, i.e. **64 scenarios propagate per word** per
  sweep.
* Propagation is level-synchronous bit-parallel BFS: ``reach[node]`` holds
  one bit per scenario; each sweep ORs ``reach[src] & arc_open`` into every
  destination until a fixpoint (at most graph-diameter iterations).

Single queries take the scalar path (:meth:`ReachabilityKernel.readings`),
a plain BFS over the compiled arrays with int-mask bit tests — no ``Edge``
hashing, no per-call dict rebuilds, and no per-call buffer allocation (the
visited map is a hoisted scratch buffer reset in O(visited)).
:class:`CompiledFaultSet` replays
:meth:`repro.sim.chip.ChipUnderTest.effective_state` at the mask level, and
:class:`BatchEvaluator` memoizes distinct ``(open, blocked)`` scenarios so
equivalent fault sets are simulated exactly once.

*How* packed words propagate is delegated to a pluggable
:mod:`~repro.sim.backends` tier (:meth:`ReachabilityKernel.set_backend`):
the default ``tile`` backend runs diameter-free elimination-scheduled
passes, ``word`` retains the level-synchronous reduceat sweep below as
the baseline, and optional ``jit``/``gpu`` tiers compile the scalar and
batched paths respectively.  Every backend shares this module's compiled
CSR arrays and is pinned bit-identical to the object-graph reference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.fpva.array import FPVA
from repro.fpva.geometry import Edge
from repro.sim.faults import (
    ChannelBlocked,
    ControlLeak,
    Fault,
    IntermittentStuckAt,
    StuckAt0,
    StuckAt1,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.core.vectors import TestVector

_FULL_WORD = ~np.uint64(0)
_WORD_SHIFTS = np.arange(64, dtype=np.uint64)


class SinkCoverageError(ValueError):
    """A vector's expected readings do not cover exactly the array's sinks.

    Raised by :class:`BatchEvaluator` at construction: row-wise verdict
    comparison needs every vector to predict every meter.  Callers that can
    fall back to the one-chip-at-a-time engine catch *this* exception —
    never bare ``ValueError``, which would also swallow real defects such
    as faults on non-existent valves.
    """


def _pack_words(bools: np.ndarray) -> np.ndarray:
    """Pack a ``(B, K)`` bool matrix into ``(K, W)`` uint64 scenario words.

    Bit ``s`` of word ``w`` in row ``k`` is scenario ``64*w + s``'s value of
    column ``k``.  Implemented as one ``np.packbits`` over the transposed
    matrix viewed as little-endian uint64 — ~3.5x the shift-and-reduce
    formulation it replaced, and packing is on every batch's critical
    path (pinned by the pack/unpack round-trip property test).
    """
    b, k = bools.shape
    words = (b + 63) // 64
    packed = np.packbits(np.ascontiguousarray(bools.T), axis=1, bitorder="little")
    out = np.zeros((k, words * 8), dtype=np.uint8)
    out[:, : packed.shape[1]] = packed
    return out.reshape(k, words, 8).view(np.uint64).reshape(k, words)


def _unpack_words(words: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`_pack_words`: ``(K, W)`` words → ``(batch, K)`` bools."""
    k = words.shape[0]
    bits = (words[:, :, None] >> _WORD_SHIFTS[None, None, :]) & np.uint64(1)
    return bits.reshape(k, -1)[:, :batch].T.astype(bool)


class ReachabilityKernel:
    """One array, compiled to flat arrays, answering batched reachability.

    The kernel is immutable, reusable and picklable (plain arrays and maps),
    so campaign runners can compile once and ship it to worker processes
    instead of re-deriving object-graph simulators per shard.
    """

    def __init__(self, fpva: FPVA):
        index = self._init_topology(fpva)

        # Every arc twice (undirected graph): (src, dst, valve id, edge id);
        # valve -1 marks always-open connections, edge -1 port openings
        # (which debris cannot block).
        arcs: list[tuple[int, int, int, int]] = []
        for edge in fpva.flow_edges:
            u, w = index[edge.a], index[edge.b]
            vi = self.valve_index.get(edge, -1)
            ei = self.edge_index[edge]
            arcs.append((u, w, vi, ei))
            arcs.append((w, u, vi, ei))
        for port in fpva.ports:
            p, c = index[port], index[fpva.port_cell(port)]
            arcs.append((p, c, -1, -1))
            arcs.append((c, p, -1, -1))
        arcs.sort(key=lambda a: a[1])  # destination-major for reduceat
        self._install_arcs(arcs)

    def _init_topology(self, fpva: FPVA) -> dict:
        """Derive the cheap node/valve/port maps from the array.

        Shared by the compiling constructor and :meth:`from_arrays`: only
        the arc tables are worth persisting, everything here is linear-time
        dictionary building.  Returns the node index map for arc assembly.
        """
        self.fpva = fpva
        self.nodes: tuple = tuple(fpva.cells()) + tuple(fpva.ports)
        index = {node: i for i, node in enumerate(self.nodes)}
        self.n_nodes = len(self.nodes)

        #: Edge → bit position maps for building scenario masks.
        self.valve_index: dict[Edge, int] = {
            v: i for i, v in enumerate(fpva.valves)
        }
        self.edge_index: dict[Edge, int] = {
            e: i for i, e in enumerate(fpva.flow_edges)
        }
        self.n_valves = len(self.valve_index)
        self.n_edges = len(self.edge_index)

        # Precomputed single-bit ints: valve_mask/edge_mask OR these instead
        # of shifting per element (hot on dense cut-set open sets).
        self._valve_bits = tuple(1 << i for i in range(self.n_valves))
        self._edge_bits = tuple(1 << i for i in range(self.n_edges))

        self._source_idx = tuple(index[p] for p in fpva.sources)
        self.sink_names: tuple[str, ...] = tuple(p.name for p in fpva.sinks)
        self._sink_rows = np.array(
            [index[p] for p in fpva.sinks], dtype=np.intp
        )
        sink_pos = [-1] * self.n_nodes
        for j, p in enumerate(fpva.sinks):
            sink_pos[index[p]] = j
        self._sink_pos = tuple(sink_pos)
        self.n_sinks = len(self.sink_names)

        #: Propagation backend (attached lazily; see :meth:`set_backend`).
        self._backend = None
        #: Scalar-path scratch: visited flags reused across queries and
        #: reset by one memset — replaces the per-call bytearray/deque
        #: allocation on size-1 workloads like adaptive diagnosis.
        self._scalar_seen = bytearray(self.n_nodes)
        self._scalar_zero = bytes(self.n_nodes)
        return index

    def _install_arcs(self, arcs: Sequence[tuple[int, int, int, int]]) -> None:
        """Install a destination-sorted arc table and its derived views."""
        self._arc_src = np.array([a[0] for a in arcs], dtype=np.intp)
        arc_dst = np.array([a[1] for a in arcs], dtype=np.intp)
        self._arc_valve = np.array([a[2] for a in arcs], dtype=np.int64)
        self._arc_edge = np.array([a[3] for a in arcs], dtype=np.int64)
        starts = np.flatnonzero(np.r_[True, arc_dst[1:] != arc_dst[:-1]])
        self._dst_starts = starts
        self._dst_nodes = arc_dst[starts]
        self._valve_arcs = np.flatnonzero(self._arc_valve >= 0)
        self._valve_arc_ids = self._arc_valve[self._valve_arcs]
        self._edge_arcs = np.flatnonzero(self._arc_edge >= 0)
        self._edge_arc_ids = self._arc_edge[self._edge_arcs]

        # Outgoing adjacency as plain tuples for the scalar (1-scenario) BFS.
        out: list[list[tuple[int, int, int]]] = [[] for _ in self.nodes]
        for u, w, vi, ei in arcs:
            out[u].append((w, vi, ei))
        self._out = tuple(tuple(lst) for lst in out)

    # -- persistence -------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """The compiled arc table as flat arrays (the persisted artifact).

        Everything else the kernel carries is rebuilt from the array object
        in linear time by :meth:`from_arrays`; only the destination-sorted
        CSR arc table embodies actual compilation work.
        """
        counts = np.diff(np.r_[self._dst_starts, len(self._arc_src)])
        return {
            "arc_src": np.asarray(self._arc_src, dtype=np.int64),
            "arc_dst": np.repeat(self._dst_nodes, counts).astype(np.int64),
            "arc_valve": self._arc_valve,
            "arc_edge": self._arc_edge,
        }

    @classmethod
    def from_arrays(
        cls, fpva: FPVA, arrays: dict[str, np.ndarray]
    ) -> "ReachabilityKernel":
        """Rebuild a kernel from :meth:`to_arrays` output without compiling.

        The arc table is installed verbatim (it is already destination
        sorted), so the reconstructed kernel's arrays — and therefore every
        reading it produces — are identical to the compiled original.
        """
        self = cls.__new__(cls)
        self._init_topology(fpva)
        src = np.asarray(arrays["arc_src"]).tolist()
        dst = np.asarray(arrays["arc_dst"]).tolist()
        valve = np.asarray(arrays["arc_valve"]).tolist()
        edge = np.asarray(arrays["arc_edge"]).tolist()
        if not (len(src) == len(dst) == len(valve) == len(edge)):
            raise ValueError("inconsistent kernel arc arrays")
        if any(b < a for a, b in zip(dst, dst[1:])):
            raise ValueError(
                "kernel arc table is not destination-sorted (corrupt artifact)"
            )
        arcs = list(zip(src, dst, valve, edge))
        for u, w, vi, ei in arcs:
            if not (0 <= u < self.n_nodes and 0 <= w < self.n_nodes):
                raise ValueError("kernel arc references a non-existent node")
            if not (-1 <= vi < self.n_valves and -1 <= ei < self.n_edges):
                raise ValueError("kernel arc references a non-existent edge")
        self._install_arcs(arcs)
        return self

    # -- mask construction -------------------------------------------------
    def valve_mask(self, open_valves: Iterable[Edge]) -> int:
        """Open-valve bitmask; edges that are not valves are ignored
        (opening a permanent channel or a non-existent edge is a no-op,
        exactly as in the object-graph simulator)."""
        get = self.valve_index.get
        bits = self._valve_bits
        mask = 0
        for edge in open_valves:
            i = get(edge)
            if i is not None:
                mask |= bits[i]
        return mask

    def edge_mask(self, edges: Iterable[Edge]) -> int:
        """Blocked-edge bitmask; non-flow edges are ignored."""
        get = self.edge_index.get
        bits = self._edge_bits
        mask = 0
        for edge in edges:
            i = get(edge)
            if i is not None:
                mask |= bits[i]
        return mask

    # -- backend seam ------------------------------------------------------
    @property
    def backend(self):
        """The propagation backend, resolved on first use.

        Without an explicit :meth:`set_backend` the registry default
        applies (``tile``, or whatever ``REPRO_KERNEL_BACKEND`` names).
        """
        if self._backend is None:
            from repro.sim.backends import create, default_backend

            self._backend = create(default_backend(), self, fallback=True)
        return self._backend

    def set_backend(self, backend) -> "ReachabilityKernel":
        """Attach a propagation backend (name or instance); returns self.

        Attaching the already-attached backend name is a no-op, so
        campaign workers re-binding a memoized kernel per shard never
        recompile a backend schedule.  Instances must have been built for
        this kernel.
        """
        from repro.sim.backends import KernelBackend, canonical_name, create

        if isinstance(backend, str):
            name = canonical_name(backend)
            if self._backend is not None and self._backend.name == name:
                return self
            self._backend = create(name, self)
            return self
        if not isinstance(backend, KernelBackend):
            raise TypeError(
                f"backend must be a registry name or KernelBackend, "
                f"got {type(backend).__name__}"
            )
        if backend.kernel is not self:
            raise ValueError("backend was built for a different kernel")
        self._backend = backend
        return self

    # -- scalar path (one scenario) ----------------------------------------
    def reach(self, open_mask: int, blocked_mask: int = 0) -> bytearray:
        """Per-node reachability flags for one scenario."""
        return self.backend.reach_mask(open_mask, blocked_mask)

    def readings(self, open_mask: int, blocked_mask: int = 0) -> dict[str, bool]:
        """Sink readings for one scenario, keyed by port name."""
        return self.backend.readings(open_mask, blocked_mask)

    def _scalar_reach(self, open_mask: int, blocked_mask: int = 0) -> bytearray:
        """Reference scalar BFS over all nodes (pure-Python backends).

        Uses the hoisted visited buffer (returning a fresh copy) and
        resets it with one C-level memset instead of re-allocating per
        query.  Iterating the frontier list while appending to it is the
        allocation-free BFS idiom: the ``for`` iterator sees pushed nodes.
        """
        seen = self._scalar_seen
        queue = [*self._source_idx]
        for s in queue:
            seen[s] = 1
        out = self._out
        push = queue.append
        if blocked_mask:
            for u in queue:
                for w, vi, ei in out[u]:
                    if seen[w]:
                        continue
                    if vi >= 0 and not (open_mask >> vi) & 1:
                        continue
                    if ei >= 0 and (blocked_mask >> ei) & 1:
                        continue
                    seen[w] = 1
                    push(w)
        else:
            for u in queue:
                for w, vi, _ in out[u]:
                    if seen[w]:
                        continue
                    if vi >= 0 and not (open_mask >> vi) & 1:
                        continue
                    seen[w] = 1
                    push(w)
        result = bytearray(seen)
        seen[:] = self._scalar_zero
        return result

    def _scalar_readings(
        self, open_mask: int, blocked_mask: int = 0
    ) -> dict[str, bool]:
        """Reference scalar BFS with meter early-exit (pure-Python backends).

        Early-exits once every meter has been reached, like the legacy
        BFS.  The visited buffer is the hoisted shared scratch — reset by
        one memset on the way out — and the common ``blocked_mask == 0``
        case (every stuck-at query adaptive diagnosis issues) runs a
        specialized loop without the per-arc blocked test; the
        allocation-free fast path is pinned by the scalar micro-benchmark.
        """
        n_sinks = self.n_sinks
        hits = [False] * n_sinks
        seen = self._scalar_seen
        queue = [*self._source_idx]
        for s in queue:
            seen[s] = 1
        out = self._out
        sink_pos = self._sink_pos
        found = 0
        push = queue.append
        if blocked_mask:
            for u in queue:
                for w, vi, ei in out[u]:
                    if seen[w]:
                        continue
                    if vi >= 0 and not (open_mask >> vi) & 1:
                        continue
                    if ei >= 0 and (blocked_mask >> ei) & 1:
                        continue
                    seen[w] = 1
                    sp = sink_pos[w]
                    if sp >= 0:
                        hits[sp] = True
                        found += 1
                    push(w)
                if found == n_sinks:
                    break
        else:
            for u in queue:
                for w, vi, _ in out[u]:
                    if seen[w]:
                        continue
                    if vi >= 0 and not (open_mask >> vi) & 1:
                        continue
                    seen[w] = 1
                    sp = sink_pos[w]
                    if sp >= 0:
                        hits[sp] = True
                        found += 1
                    push(w)
                if found == n_sinks:
                    break
        seen[:] = self._scalar_zero
        return dict(zip(self.sink_names, hits))

    # -- batched path (64 scenarios per word) ------------------------------
    def _propagate(self, arc_open: np.ndarray, words: int) -> np.ndarray:
        """Bit-parallel frontier propagation to a fixpoint.

        ``arc_open`` is ``(n_arcs, words)`` uint64: bit ``s`` of word ``w``
        says whether the arc conducts in scenario ``64*w + s``.  Returns the
        ``(n_nodes, words)`` reach matrix.
        """
        reach = np.zeros((self.n_nodes, words), dtype=np.uint64)
        if not len(self._arc_src):
            return reach
        reach[list(self._source_idx)] = _FULL_WORD
        src, starts, dst = self._arc_src, self._dst_starts, self._dst_nodes
        while True:
            spread = reach[src] & arc_open
            agg = np.bitwise_or.reduceat(spread, starts, axis=0)
            new = reach[dst] | agg
            if np.array_equal(new, reach[dst]):
                return reach
            reach[dst] = new

    def batch_readings_bool(
        self,
        open_bool: np.ndarray,
        blocked_bool: np.ndarray | None = None,
        tile_words: int | None = None,
    ) -> np.ndarray:
        """Sink readings for a batch of scenarios.

        ``open_bool`` is ``(B, n_valves)``; ``blocked_bool`` optionally
        ``(B, n_edges)``.  Returns ``(B, n_sinks)`` bool, columns in
        :attr:`sink_names` order.  Packing happens here; propagation is
        delegated to the attached backend, with ``tile_words`` bounding
        the per-pass word-column width for backends that tile.
        """
        batch = open_bool.shape[0]
        words = (batch + 63) // 64
        valve_words = _pack_words(open_bool)
        edge_words = None
        if blocked_bool is not None and blocked_bool.any():
            edge_words = _pack_words(blocked_bool)
        reach = self.backend.reach_words(
            valve_words,
            edge_words,
            words,
            rows=self._sink_rows,
            tile_words=tile_words,
        )
        return _unpack_words(reach, batch)

    def batch_readings(
        self,
        scenarios: Sequence[tuple[int, int]],
        chunk: int = 4096,
        tile_words: int | None = None,
    ) -> np.ndarray:
        """Sink readings for ``(open_mask, blocked_mask)`` int-mask pairs.

        Evaluates in chunks of ``chunk`` scenarios to bound the packed
        working set.  Returns ``(len(scenarios), n_sinks)`` bool.
        """
        if not scenarios:
            return np.zeros((0, self.n_sinks), dtype=bool)
        stride_v = (self.n_valves + 7) // 8 or 1
        stride_e = (self.n_edges + 7) // 8 or 1
        parts = []
        for lo in range(0, len(scenarios), chunk):
            batch = scenarios[lo : lo + chunk]
            opens = b"".join(m.to_bytes(stride_v, "little") for m, _ in batch)
            open_bool = np.unpackbits(
                np.frombuffer(opens, np.uint8).reshape(len(batch), stride_v),
                axis=1,
                bitorder="little",
                count=self.n_valves,
            ).astype(bool)
            blocked_bool = None
            if any(b for _, b in batch):
                blks = b"".join(b.to_bytes(stride_e, "little") for _, b in batch)
                blocked_bool = np.unpackbits(
                    np.frombuffer(blks, np.uint8).reshape(len(batch), stride_e),
                    axis=1,
                    bitorder="little",
                    count=self.n_edges,
                ).astype(bool)
            parts.append(
                self.batch_readings_bool(open_bool, blocked_bool, tile_words)
            )
        return np.concatenate(parts, axis=0) if len(parts) > 1 else parts[0]

    def toggled_readings(
        self, base_mask: int, valves: Sequence[Edge], set_bit: bool
    ) -> np.ndarray:
        """Sink readings for per-valve single-bit toggles of one open mask.

        Row ``i`` holds the readings of ``base_mask`` with valve ``i``'s
        bit set (``set_bit=True`` — a lone leak) or cleared (``False`` —
        a lone closure).  Edges unknown to the kernel toggle nothing, so
        their row equals the base scenario — the same no-op the
        object-graph simulator applies.  This is the shared primitive
        behind the batched observability checks (coverage SA0/SA1, cut
        wall membership): one bit-parallel batch instead of one query
        per candidate.
        """
        get = self.valve_index.get
        scenarios = []
        for valve in valves:
            vi = get(valve)
            if vi is None:
                scenarios.append((base_mask, 0))
            elif set_bit:
                scenarios.append((base_mask | (1 << vi), 0))
            else:
                scenarios.append((base_mask & ~(1 << vi), 0))
        return self.batch_readings(scenarios)

    def __repr__(self):
        return (
            f"ReachabilityKernel({self.fpva.name!r}, {self.n_nodes} nodes, "
            f"{len(self._arc_src)} arcs)"
        )


class CompiledFaultSet:
    """Mask-level replica of :meth:`ChipUnderTest.effective_state`.

    Applies the same transformation pipeline — control-leak propagation,
    stuck-at overrides, per-vector intermittent firings, blockage — as
    integer bit operations on the kernel's valve/edge masks, in the same
    order, so the resulting ``(open, blocked)`` masks encode exactly the
    frozensets the object path produces (asserted by the kernel/legacy
    equivalence property test).
    """

    def __init__(
        self,
        kernel: ReachabilityKernel,
        faults: Sequence[Fault],
        fires_cache: dict | None = None,
    ):
        self.kernel = kernel
        self.faults = tuple(faults)
        self._fires_cache = fires_cache if fires_cache is not None else {}
        vidx = kernel.valve_index
        sa0 = sa1 = blocked_valves = blocked_edges = 0
        leak_pairs: list[tuple[Edge, Edge]] = []
        intermittent: list[tuple[int, bool, IntermittentStuckAt]] = []
        for f in self.faults:
            if isinstance(f, StuckAt0):
                sa0 |= 1 << self._valve_bit(f.valve)
            elif isinstance(f, StuckAt1):
                sa1 |= 1 << self._valve_bit(f.valve)
            elif isinstance(f, IntermittentStuckAt):
                intermittent.append(
                    (1 << self._valve_bit(f.valve), f.stuck_open, f)
                )
            elif isinstance(f, ChannelBlocked):
                ei = kernel.edge_index.get(f.edge)
                if ei is None:
                    raise ValueError(
                        f"blockage on non-existent flow edge {f.edge}"
                    )
                blocked_edges |= 1 << ei
                vi = vidx.get(f.edge)
                if vi is not None:
                    blocked_valves |= 1 << vi
            elif isinstance(f, ControlLeak):
                self._valve_bit(f.a)
                self._valve_bit(f.b)
                leak_pairs.append((f.a, f.b))
            else:  # pragma: no cover - exhaustive over the Fault union
                raise TypeError(f"unknown fault kind {f!r}")
        self._sa0 = sa0
        self._sa1 = sa1
        self._blocked_valves = blocked_valves
        self.blocked_mask = blocked_edges
        self._intermittent = tuple(intermittent)

        # Control leakage spreads transitively, so a leak-graph component
        # containing any commanded-closed valve closes entirely.
        comp_masks: list[int] = []
        if leak_pairs:
            parent: dict[Edge, Edge] = {}

            def find(x: Edge) -> Edge:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            for a, b in leak_pairs:
                parent.setdefault(a, a)
                parent.setdefault(b, b)
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb
            groups: dict[Edge, int] = {}
            for valve in parent:
                root = find(valve)
                groups[root] = groups.get(root, 0) | (
                    1 << vidx[valve]
                )
            comp_masks = list(groups.values())
        self._leak_components = tuple(comp_masks)

    def _valve_bit(self, valve: Edge) -> int:
        vi = self.kernel.valve_index.get(valve)
        if vi is None:
            raise ValueError(f"fault on non-existent valve {valve}")
        return vi

    def effective_masks(
        self, commanded_mask: int, vector_key: str | None = None
    ) -> tuple[int, int]:
        """``(open, blocked)`` masks for one commanded pattern.

        Mirrors :meth:`ChipUnderTest.effective_open_valves` step for step:
        leaks, then SA1, then SA0, then intermittent firings, then blockage.
        """
        eff = commanded_mask
        for comp in self._leak_components:
            if commanded_mask & comp != comp:
                eff &= ~comp
        eff = (eff | self._sa1) & ~self._sa0
        if self._intermittent:
            if vector_key is None:
                raise ValueError(
                    "chip has intermittent faults; vector identity is "
                    "required to evaluate them"
                )
            cache = self._fires_cache
            for bit, stuck_open, fault in self._intermittent:
                key = (fault, vector_key)
                fires = cache.get(key)
                if fires is None:
                    fires = cache[key] = fault.fires_on(vector_key)
                if fires:
                    eff = eff | bit if stuck_open else eff & ~bit
        eff &= ~self._blocked_valves
        return eff, self.blocked_mask


class BatchEvaluator:
    """Scenario dedup + batched evaluation over one vector suite.

    Each distinct ``(open, blocked)`` mask pair is assigned a *slot* and
    simulated exactly once; consumers record slot rows per fault set, call
    :meth:`flush`, then read verdicts back.  Raises
    :class:`SinkCoverageError` at construction when a vector's expected
    readings do not cover exactly the array's sinks (callers fall back to
    the legacy path).
    """

    def __init__(self, kernel: ReachabilityKernel, vectors: Sequence[TestVector]):
        self.kernel = kernel
        self.vectors = list(vectors)
        self.vector_names = tuple(v.name for v in self.vectors)
        sink_set = set(kernel.sink_names)
        for v in self.vectors:
            if set(v.expected.keys()) != sink_set:
                raise SinkCoverageError(
                    f"vector {v.name!r} expectations do not match the "
                    f"array's sinks; batched evaluation unavailable"
                )
        self.commanded_masks = tuple(
            kernel.valve_mask(v.open_valves) for v in self.vectors
        )
        self.expected_rows = tuple(
            tuple(bool(v.expected[name]) for name in kernel.sink_names)
            for v in self.vectors
        )
        self._sorted_sinks = tuple(
            sorted(range(kernel.n_sinks), key=lambda j: kernel.sink_names[j])
        )
        self._memo: dict[tuple[int, int], int] = {}
        self._pending: list[tuple[int, int]] = []
        self._readings: np.ndarray | None = None
        self._observed: list[tuple[bool, ...] | None] = []
        self._items: list[tuple | None] = []

    @property
    def distinct_scenarios(self) -> int:
        return len(self._memo)

    def slot(self, open_mask: int, blocked_mask: int) -> int:
        """Slot id for a scenario, registering it for the next flush."""
        key = (open_mask, blocked_mask)
        s = self._memo.get(key)
        if s is None:
            s = len(self._memo)
            self._memo[key] = s
            self._pending.append(key)
        return s

    def slot_row(self, compiled: CompiledFaultSet) -> tuple[int, ...]:
        """Per-vector scenario slots for one compiled fault set."""
        slot = self.slot
        eff = compiled.effective_masks
        return tuple(
            slot(*eff(mask, name))
            for mask, name in zip(self.commanded_masks, self.vector_names)
        )

    def flush(self) -> None:
        """Simulate every pending scenario through the kernel."""
        if not self._pending:
            return
        from repro.sim.backends import pick_tile_words

        fresh = self.kernel.batch_readings(
            self._pending, tile_words=pick_tile_words(len(self._pending))
        )
        self._pending = []
        if self._readings is None:
            self._readings = fresh
        else:
            self._readings = np.concatenate([self._readings, fresh], axis=0)
        grow = self._readings.shape[0] - len(self._observed)
        self._observed.extend([None] * grow)
        self._items.extend([None] * grow)

    def observed_row(self, slot: int) -> tuple[bool, ...]:
        """Sink readings of a slot as Python bools, in sink order."""
        row = self._observed[slot]
        if row is None:
            row = self._observed[slot] = tuple(
                bool(x) for x in self._readings[slot]
            )
        return row

    def passed(self, vi: int, slot: int) -> bool:
        """Whether vector ``vi`` reads as expected under scenario ``slot``."""
        return self.observed_row(slot) == self.expected_rows[vi]

    def failed_grid(self, vi: int, slots) -> np.ndarray:
        """Vectorized verdicts: does vector ``vi`` fail under each slot?

        ``slots`` is any integer array-like of flushed slot ids; the
        result has the same shape with ``True`` where the observed row
        differs from the vector's expectation.  Equivalent to mapping
        ``not passed(vi, slot)`` but without a Python call per slot.
        """
        grid = np.asarray(slots, dtype=np.intp)
        expected = np.array(self.expected_rows[vi], dtype=bool)
        return (self._readings[grid] != expected).any(axis=-1)

    def observed_items(self, slot: int) -> tuple:
        """``tuple(sorted(observed.items()))`` — the syndrome signature."""
        items = self._items[slot]
        if items is None:
            row = self.observed_row(slot)
            names = self.kernel.sink_names
            items = self._items[slot] = tuple(
                (names[j], row[j]) for j in self._sorted_sinks
            )
        return items
