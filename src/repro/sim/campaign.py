"""Randomized multi-fault injection campaigns (the section IV experiment).

The paper's evaluation randomly introduces one to five faults per chip,
10 000 times per array, and applies the generated test set; every injected
fault combination was detected.  This module reproduces that experiment
with a configurable trial count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import Fault, fault_universe, faults_compatible
from repro.sim.kernel import (
    BatchEvaluator,
    CompiledFaultSet,
    SinkCoverageError,
)
from repro.sim.seeding import mix_seed


@dataclass
class CampaignResult:
    """Detection statistics for one (array, fault-count) configuration."""

    num_faults: int
    trials: int
    detected: int
    undetected_examples: list[tuple[Fault, ...]] = field(default_factory=list)
    #: Trial index (within this result's own trial stream) of each kept
    #: undetected example, parallel to :attr:`undetected_examples`.  Merged
    #: results carry campaign-global indices, which is what lets the merge
    #: select examples deterministically whatever order shards arrive in.
    undetected_trials: list[int] = field(default_factory=list)

    @property
    def detection_rate(self) -> float:
        return self.detected / self.trials if self.trials else 1.0

    @property
    def all_detected(self) -> bool:
        return self.detected == self.trials

    def as_dict(self) -> dict:
        """A JSON-serializable view (faults rendered via ``repr``)."""
        return {
            "num_faults": self.num_faults,
            "trials": self.trials,
            "detected": self.detected,
            "detection_rate": self.detection_rate,
            "undetected_trials": list(self.undetected_trials),
            "undetected_examples": [
                [repr(fault) for fault in example]
                for example in self.undetected_examples
            ],
        }

    def __repr__(self):
        return (
            f"CampaignResult(k={self.num_faults}, {self.detected}/{self.trials} "
            f"detected = {self.detection_rate:.4%})"
        )


def merge_shards(
    num_faults: int,
    shards: Sequence[tuple[int, "CampaignResult"]],
    keep_undetected: int,
) -> "CampaignResult":
    """Merge ``(shard index, result)`` pairs into one :class:`CampaignResult`.

    The aggregate is a pure function of the shard *contents*: counts are
    commutative sums, and undetected examples are re-indexed to
    campaign-global trial numbers (``shard offset + local trial``), sorted
    by that global index, then truncated to ``keep_undetected`` — so the
    merge is bit-identical whether shards arrive in shard order (the
    in-memory pool), completion order, or any resume order (the fabric).
    """
    ordered = sorted(shards, key=lambda pair: pair[0])
    indices = [index for index, _ in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard indices in merge: {indices}")
    merged = CampaignResult(num_faults=num_faults, trials=0, detected=0)
    entries: list[tuple[int, tuple]] = []
    offset = 0
    for _, shard in ordered:
        merged.trials += shard.trials
        merged.detected += shard.detected
        trials = shard.undetected_trials
        if len(trials) != len(shard.undetected_examples):
            # Legacy shard results without per-example indices: fall back
            # to per-shard arrival order (still deterministic, examples
            # are appended in trial order).
            trials = range(len(shard.undetected_examples))
        for local, example in zip(trials, shard.undetected_examples):
            entries.append((offset + local, example))
        offset += shard.trials
    entries.sort(key=lambda entry: entry[0])
    for global_trial, example in entries[:keep_undetected]:
        merged.undetected_examples.append(example)
        merged.undetected_trials.append(global_trial)
    return merged


def sample_fault_set(
    universe: Sequence[Fault], k: int, rng: random.Random, max_attempts: int = 1000
) -> tuple[Fault, ...]:
    """Draw ``k`` distinct, physically compatible faults."""
    for _ in range(max_attempts):
        picked = tuple(rng.sample(universe, k))
        if faults_compatible(picked):
            return picked
    raise RuntimeError(f"could not sample {k} compatible faults")


def _resolve_context(fpva, context, backend: str | None, kernel):
    """Coerce the legacy ``backend=``/``kernel=`` plumbing to a session.

    The old keyword arguments stay accepted as thin deprecation shims (one
    release): explicitly passing either warns through the registry's
    single deprecation path and parameterizes a fresh private
    :class:`~repro.context.ExecutionContext` (``backend="kernel"`` routes
    to the registry's default tier, ``"legacy"`` to the object engine).
    Passing them *alongside* an explicit context is a contradiction and
    raises.
    """
    from repro.context import ExecutionContext  # late: context sits above sim

    if context is not None:
        if backend is not None or kernel is not None:
            raise ValueError(
                "pass either context= or the legacy backend=/kernel= "
                "arguments, not both"
            )
        return ExecutionContext.resolve(context, fpva)
    if backend is None and kernel is None:
        return ExecutionContext(fpva)
    from repro.sim.backends import resolve_legacy_engine, warn_deprecated

    engine, kernel_backend = "kernel", None
    if backend is not None:
        engine, kernel_backend = resolve_legacy_engine(backend, "campaign")
    if kernel is not None:
        warn_deprecated(
            "campaign kernel=", "context=ExecutionContext(fpva, kernel=...)"
        )
    return ExecutionContext(
        fpva, engine=engine, kernel=kernel, kernel_backend=kernel_backend
    )


def run_campaign(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    num_faults: int,
    trials: int,
    seed: int = 0,
    include_control_leaks: bool = True,
    keep_undetected: int = 10,
    scenario=None,
    backend: str | None = None,
    kernel=None,
    context=None,
) -> CampaignResult:
    """Inject ``num_faults`` random faults ``trials`` times; count detections.

    ``scenario`` is any object implementing the
    :class:`repro.engine.scenarios.FaultScenario` protocol (``universe(fpva)``
    and ``sample(universe, rng, num_faults)``); when omitted the paper's
    stuck-at/control-leak fault space is sampled directly.

    ``context`` supplies the compiled-kernel session every campaign in a
    sweep shares (kernel, tester, batch-evaluation scenario pool).  A
    kernel-engine session canonicalizes every trial chip to its per-vector
    effective-state masks, deduplicates, and evaluates the whole campaign
    through the compiled bitmask kernel — 64 scenarios per machine word;
    an ``engine="object"`` session keeps the original chip-at-a-time loop.
    Both draw fault sets in the same RNG order and report bit-identical
    :class:`CampaignResult`\\ s.  The pre-context ``backend=``/``kernel=``
    keywords remain as deprecation shims for one release; they configure a
    private session with the same semantics.
    """
    context = _resolve_context(fpva, context, backend, kernel)
    rng = random.Random(seed)
    if scenario is None:
        universe = fault_universe(fpva, include_control_leaks=include_control_leaks)
        draw = lambda: sample_fault_set(universe, num_faults, rng)  # noqa: E731
    else:
        universe = scenario.universe(fpva)
        draw = lambda: scenario.sample(universe, rng, num_faults)  # noqa: E731
    result = CampaignResult(num_faults=num_faults, trials=trials, detected=0)
    tester = context.tester
    if context.batched:
        evaluator = None
        try:
            evaluator = context.evaluator(vectors)
        except SinkCoverageError:
            pass  # partial expectations: fall through to the legacy loop
        if evaluator is not None:
            _run_batched(
                evaluator, draw, trials, keep_undetected, result
            )
            return result
    for trial in range(trials):
        faults = draw()
        chip = ChipUnderTest(fpva, faults)
        run = tester.run(chip, vectors, stop_at_first_fail=True)
        if run.fault_detected:
            result.detected += 1
        elif len(result.undetected_examples) < keep_undetected:
            result.undetected_examples.append(faults)
            result.undetected_trials.append(trial)
    return result


def _run_batched(
    evaluator: BatchEvaluator,
    draw,
    trials: int,
    keep_undetected: int,
    result: CampaignResult,
) -> None:
    """Kernel-backed campaign body: draw everything, simulate once.

    A chip is detected iff *any* vector reads off-expectation, which does
    not depend on the early-exit order of the legacy loop, so detection
    counts and undetected examples match it exactly.
    """
    kernel = evaluator.kernel
    fires_cache: dict = {}
    drawn = [draw() for _ in range(trials)]
    rows = []
    for faults in drawn:
        # Same physical-consistency gate ChipUnderTest applies on the
        # legacy path (scenarios are expected to sample compatible sets).
        if not faults_compatible(faults):
            raise ValueError(f"incompatible fault set: {tuple(faults)}")
        rows.append(
            evaluator.slot_row(CompiledFaultSet(kernel, faults, fires_cache))
        )
    evaluator.flush()
    expected = evaluator.expected_rows
    observed = evaluator.observed_row
    for trial, (faults, row) in enumerate(zip(drawn, rows)):
        if any(observed(slot) != expected[vi] for vi, slot in enumerate(row)):
            result.detected += 1
        elif len(result.undetected_examples) < keep_undetected:
            result.undetected_examples.append(faults)
            result.undetected_trials.append(trial)


def run_sweep(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    fault_counts: Sequence[int] = (1, 2, 3, 4, 5),
    trials: int = 200,
    seed: int = 0,
    include_control_leaks: bool = True,
    scenario=None,
    backend: str | None = None,
    kernel=None,
    context=None,
) -> dict[int, CampaignResult]:
    """The paper's sweep: k = 1..5 faults, ``trials`` chips per k.

    One session serves every fault count, so the kernel compiles once and
    the per-campaign batch evaluations share a scenario-dedup pool.  Each
    fault count draws from its own RNG stream seeded by
    ``mix_seed(seed, k)`` — never by naive ``seed + k`` arithmetic, whose
    streams collide across sweeps (``(seed=0, k=2)`` and ``(seed=1, k=1)``
    would inject identical chips).
    """
    context = _resolve_context(fpva, context, backend, kernel)
    return {
        k: run_campaign(
            fpva,
            vectors,
            num_faults=k,
            trials=trials,
            seed=mix_seed(seed, k),
            include_control_leaks=include_control_leaks,
            scenario=scenario,
            context=context,
        )
        for k in fault_counts
    }
