"""Randomized multi-fault injection campaigns (the section IV experiment).

The paper's evaluation randomly introduces one to five faults per chip,
10 000 times per array, and applies the generated test set; every injected
fault combination was detected.  This module reproduces that experiment
with a configurable trial count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import Fault, fault_universe, faults_compatible
from repro.sim.tester import Tester


@dataclass
class CampaignResult:
    """Detection statistics for one (array, fault-count) configuration."""

    num_faults: int
    trials: int
    detected: int
    undetected_examples: list[tuple[Fault, ...]] = field(default_factory=list)

    @property
    def detection_rate(self) -> float:
        return self.detected / self.trials if self.trials else 1.0

    @property
    def all_detected(self) -> bool:
        return self.detected == self.trials

    def __repr__(self):
        return (
            f"CampaignResult(k={self.num_faults}, {self.detected}/{self.trials} "
            f"detected = {self.detection_rate:.4%})"
        )


def sample_fault_set(
    universe: Sequence[Fault], k: int, rng: random.Random, max_attempts: int = 1000
) -> tuple[Fault, ...]:
    """Draw ``k`` distinct, physically compatible faults."""
    for _ in range(max_attempts):
        picked = tuple(rng.sample(universe, k))
        if faults_compatible(picked):
            return picked
    raise RuntimeError(f"could not sample {k} compatible faults")


def run_campaign(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    num_faults: int,
    trials: int,
    seed: int = 0,
    include_control_leaks: bool = True,
    keep_undetected: int = 10,
    scenario=None,
) -> CampaignResult:
    """Inject ``num_faults`` random faults ``trials`` times; count detections.

    ``scenario`` is any object implementing the
    :class:`repro.engine.scenarios.FaultScenario` protocol (``universe(fpva)``
    and ``sample(universe, rng, num_faults)``); when omitted the paper's
    stuck-at/control-leak fault space is sampled directly.
    """
    rng = random.Random(seed)
    if scenario is None:
        universe = fault_universe(fpva, include_control_leaks=include_control_leaks)
        draw = lambda: sample_fault_set(universe, num_faults, rng)  # noqa: E731
    else:
        universe = scenario.universe(fpva)
        draw = lambda: scenario.sample(universe, rng, num_faults)  # noqa: E731
    tester = Tester(fpva)
    result = CampaignResult(num_faults=num_faults, trials=trials, detected=0)
    for _ in range(trials):
        faults = draw()
        chip = ChipUnderTest(fpva, faults)
        run = tester.run(chip, vectors, stop_at_first_fail=True)
        if run.fault_detected:
            result.detected += 1
        elif len(result.undetected_examples) < keep_undetected:
            result.undetected_examples.append(faults)
    return result


def run_sweep(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    fault_counts: Sequence[int] = (1, 2, 3, 4, 5),
    trials: int = 200,
    seed: int = 0,
    include_control_leaks: bool = True,
    scenario=None,
) -> dict[int, CampaignResult]:
    """The paper's sweep: k = 1..5 faults, ``trials`` chips per k."""
    return {
        k: run_campaign(
            fpva,
            vectors,
            num_faults=k,
            trials=trials,
            seed=seed + k,
            include_control_leaks=include_control_leaks,
            scenario=scenario,
        )
        for k in fault_counts
    }
