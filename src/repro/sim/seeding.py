"""Deterministic seed derivation shared by every campaign runner.

Both the serial multi-``k`` sweep (:func:`repro.sim.campaign.run_sweep`)
and the sharded parallel runner (:mod:`repro.engine.parallel`) must derive
one independent RNG stream per ``(seed, fault count, shard)`` coordinate.
Naive arithmetic like ``seed + k`` collides across coordinates — the
streams for ``(seed=0, k=2)`` and ``(seed=1, k=1)`` would be identical —
so every runner routes through :func:`mix_seed`, a splitmix64 finalizer
over the packed coordinates.  The finalizer is a bijection on 64-bit
words applied to a linear combination with large odd constants, so nearby
coordinates land in unrelated parts of the seed space.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1


def mix_seed(seed: int, num_faults: int = 0, shard: int = 0) -> int:
    """Deterministic, well-spread stream seed (splitmix64 finalizer)."""
    x = (seed * 0x9E3779B97F4A7C15 + num_faults * 0xBF58476D1CE4E5B9 + shard) & _MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)
