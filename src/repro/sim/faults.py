"""Fault model (section II of the paper), plus scenario extensions.

The four manufacturing defects of Fig 3 map onto three valve-level faults:

* broken flow channel → the valve at the channel entrance can never open:
  :class:`StuckAt0`;
* leaking flow channel → the valve separating the two channels can never
  close: :class:`StuckAt1`;
* broken control channel → actuation pressure never arrives, the valve can
  never close: :class:`StuckAt1`;
* leaking control channel → two valves close simultaneously whenever either
  control line is pressurized: :class:`ControlLeak`.

Beyond the paper's three models, the engine's scenario registry
(:mod:`repro.engine.scenarios`) draws on two further fault kinds:

* :class:`IntermittentStuckAt` — a marginal valve seat that misbehaves on
  only a fraction of actuations.  Whether the fault fires is a
  *deterministic* function of the applied vector (a keyed hash of the
  vector name), so a chip carrying one behaves identically no matter how
  many times, or in which order, vectors are applied — the property that
  makes dictionary and adaptive diagnosis agree;
* :class:`ChannelBlocked` — debris physically obstructing a flow edge.  On
  a valve edge it overrides any commanded or stuck behaviour; on a
  permanent transport channel it closes a connection the simulator
  otherwise treats as always open.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.fpva.array import FPVA
from repro.fpva.control import control_adjacent_pairs
from repro.fpva.geometry import Edge


@dataclass(frozen=True)
class StuckAt0:
    """The valve can never open (always closed)."""

    valve: Edge

    def __repr__(self):
        return f"SA0({self.valve})"


@dataclass(frozen=True)
class StuckAt1:
    """The valve can never close (always open)."""

    valve: Edge

    def __repr__(self):
        return f"SA1({self.valve})"


@dataclass(frozen=True)
class ControlLeak:
    """Control-line leakage between two valves: closing either closes both."""

    a: Edge
    b: Edge

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError("control leak needs two distinct valves")
        if self.b < self.a:  # normalize order
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)

    @property
    def valves(self) -> tuple[Edge, Edge]:
        return (self.a, self.b)

    def __repr__(self):
        return f"Leak({self.a}~{self.b})"


@dataclass(frozen=True)
class IntermittentStuckAt:
    """A valve that misbehaves on a deterministic fraction of vectors.

    ``stuck_open`` selects the failure polarity (True: the seat fails to
    close, like a transient :class:`StuckAt1`; False: it fails to open).
    ``rate`` is the long-run fraction of vectors on which the fault fires;
    ``salt`` keys the per-vector hash so distinct physical defects on the
    same valve produce distinct firing patterns.
    """

    valve: Edge
    stuck_open: bool = True
    rate: float = 0.5
    salt: int = 0

    def __post_init__(self):
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"intermittent rate must be in (0, 1], got {self.rate}")

    def fires_on(self, vector_key: str) -> bool:
        """Deterministic per-vector activation (stable across processes)."""
        digest = hashlib.blake2b(
            f"{self.salt}:{self.valve!r}:{vector_key}".encode(),
            digest_size=8,
        ).digest()
        draw = int.from_bytes(digest, "big") / float(1 << 64)
        return draw < self.rate

    def __repr__(self):
        mode = "open" if self.stuck_open else "closed"
        return f"Flaky{mode}({self.valve}@{self.rate:g})"


@dataclass(frozen=True)
class ChannelBlocked:
    """Debris obstructing a flow edge (valve or permanent channel)."""

    edge: Edge

    def __repr__(self):
        return f"Blocked({self.edge})"


Fault = Union[StuckAt0, StuckAt1, ControlLeak, IntermittentStuckAt, ChannelBlocked]

#: Fault kinds that occupy a valve/channel seat exclusively: a seat carrying
#: one of these cannot also carry any other seat-level fault (the behaviours
#: are physically contradictory or indistinguishable compositions).
_SEAT_EXCLUSIVE = (IntermittentStuckAt, ChannelBlocked)


def stuck_at_faults(fpva: FPVA) -> list[Fault]:
    """Both stuck-at faults for every valve."""
    out: list[Fault] = []
    for valve in fpva.valves:
        out.append(StuckAt0(valve))
        out.append(StuckAt1(valve))
    return out


def untestable_leak_pairs(fpva: FPVA) -> frozenset[frozenset[Edge]]:
    """Control pairs no pressure test can distinguish from a good chip.

    If two valves are the only two openings of a shared cell (a degree-2
    dead-end cell with no port), every flow route through one of them must
    also use the other — so neither "aggressor closed, victim live" pattern
    is realizable and the leak between them is physically undetectable at
    the meters.  The paper's random-injection experiment ("test vectors
    captured all the faults") implicitly ranges over detectable faults, so
    the campaign sampler excludes these pairs by default.
    """
    degree: dict = {}
    for edge in fpva.flow_edges:
        for cell in edge.cells:
            degree[cell] = degree.get(cell, 0) + 1
    for port in fpva.ports:
        cell = port.cell(fpva.nr, fpva.nc)
        degree[cell] = degree.get(cell, 0) + 1

    out: set[frozenset[Edge]] = set()
    for pair in control_adjacent_pairs(fpva):
        a, b = tuple(pair)
        shared = set(a.cells) & set(b.cells)
        if shared and degree[next(iter(shared))] == 2:
            out.add(pair)
    return frozenset(out)


def control_leak_faults(fpva: FPVA, testable_only: bool = True) -> list[Fault]:
    """One :class:`ControlLeak` per control-adjacent valve pair."""
    skip = untestable_leak_pairs(fpva) if testable_only else frozenset()
    out: list[Fault] = []
    for pair in sorted(control_adjacent_pairs(fpva), key=sorted):
        if pair in skip:
            continue
        a, b = sorted(pair)
        out.append(ControlLeak(a, b))
    return out


def fault_universe(
    fpva: FPVA,
    include_control_leaks: bool = True,
    testable_only: bool = True,
) -> list[Fault]:
    """Every injectable fault of the array.

    ``testable_only`` drops the physically undetectable control-leak pairs
    (see :func:`untestable_leak_pairs`); pass False to get the raw universe.
    """
    out = stuck_at_faults(fpva)
    if include_control_leaks:
        out.extend(control_leak_faults(fpva, testable_only=testable_only))
    return out


def faults_compatible(faults: Sequence[Fault]) -> bool:
    """True if the fault set is physically consistent.

    A single valve cannot be simultaneously stuck-at-0 and stuck-at-1 (a
    flow channel cannot be both permanently blocked and permanently leaking
    at the same valve seat).  Intermittent and blockage faults occupy their
    seat exclusively: stacking one on a seat that already carries any other
    seat-level fault is rejected.
    """
    sa0 = {f.valve for f in faults if isinstance(f, StuckAt0)}
    sa1 = {f.valve for f in faults if isinstance(f, StuckAt1)}
    if sa0 & sa1:
        return False
    seats: list[Edge] = []
    for f in faults:
        if isinstance(f, _SEAT_EXCLUSIVE):
            seats.append(f.valve if isinstance(f, IntermittentStuckAt) else f.edge)
    if seats:
        if len(seats) != len(set(seats)):
            return False
        if set(seats) & (sa0 | sa1):
            return False
    # Duplicate faults are also rejected.
    return len(set(faults)) == len(faults)


def compatibility_key(fault: Fault) -> object:
    """The one array resource :func:`faults_compatible` arbitrates over.

    Every inconsistency that function rejects — stuck-at-0 against
    stuck-at-1, seat-exclusive stacking, a seat fault on an already-stuck
    valve, duplicate faults — requires two faults whose keys compare
    equal, so a set with pairwise-distinct keys is compatible without
    further inspection.  Enumeration hot loops use this as an exact
    prefilter and fall back to :func:`faults_compatible` only on key
    collisions.
    """
    if isinstance(fault, (StuckAt0, StuckAt1, IntermittentStuckAt)):
        return fault.valve
    if isinstance(fault, _SEAT_EXCLUSIVE):
        return fault.edge
    return fault


def faulty_valves(faults: Iterable[Fault]) -> set[Edge]:
    """All valves/edges touched by any fault in the set."""
    out: set[Edge] = set()
    for f in faults:
        if isinstance(f, (StuckAt0, StuckAt1, IntermittentStuckAt)):
            out.add(f.valve)
        elif isinstance(f, ChannelBlocked):
            out.add(f.edge)
        else:
            out.update(f.valves)
    return out
