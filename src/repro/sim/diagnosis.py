"""Fault localization by syndrome matching (dictionary diagnosis).

The paper's test flow answers "is the chip faulty?"; for a programmable
array it is also useful to know *where*, because an FPVA with a localized
defect can still run applications mapped around the bad region.  This module
implements classic dictionary diagnosis on top of the simulator: precompute
the syndrome of every single fault (optionally every fault pair) under the
generated suite, then look up observed syndromes.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import Fault, fault_universe, faults_compatible
from repro.sim.tester import Tester, TestRunResult

Syndrome = tuple


@dataclass
class DiagnosisReport:
    """Candidate fault sets whose syndrome matches the observation."""

    syndrome: Syndrome
    candidates: list[tuple[Fault, ...]]

    @property
    def is_unique(self) -> bool:
        return len(self.candidates) == 1

    @property
    def localized(self) -> bool:
        return bool(self.candidates)


class FaultDictionary:
    """Precomputed syndrome → fault-set dictionary."""

    def __init__(
        self,
        fpva: FPVA,
        vectors: Sequence[TestVector],
        include_control_leaks: bool = True,
        max_cardinality: int = 1,
        universe: Sequence[Fault] | None = None,
    ):
        if max_cardinality not in (1, 2):
            raise ValueError("dictionary supports single and double faults")
        self.fpva = fpva
        self.vectors = list(vectors)
        self.tester = Tester(fpva)
        self._table: dict[Syndrome, list[tuple[Fault, ...]]] = defaultdict(list)

        if universe is None:
            universe = fault_universe(
                fpva, include_control_leaks=include_control_leaks
            )
        fault_sets: list[tuple[Fault, ...]] = [(f,) for f in universe]
        if max_cardinality == 2:
            fault_sets.extend(
                pair
                for pair in itertools.combinations(universe, 2)
                if faults_compatible(pair)
            )
        for faults in fault_sets:
            syndrome = self._syndrome_of(faults)
            if syndrome:  # undetectable sets cannot be diagnosed
                self._table[syndrome].append(faults)

    def _syndrome_of(self, faults: tuple[Fault, ...]) -> Syndrome:
        chip = ChipUnderTest(self.fpva, faults)
        return self.tester.run(chip, self.vectors).syndrome()

    @property
    def distinct_syndromes(self) -> int:
        return len(self._table)

    def syndrome_classes(self) -> list[tuple[Syndrome, list[tuple[Fault, ...]]]]:
        """Every (syndrome, candidate fault sets) equivalence class.

        Fault sets in one class are behaviourally indistinguishable under
        the dictionary's vector suite; the adaptive engine schedules vectors
        to separate these classes, never their members.
        """
        return [(syndrome, list(sets)) for syndrome, sets in self._table.items()]

    def diagnose_run(self, run: TestRunResult) -> DiagnosisReport:
        """Diagnose from a completed (full, non-early-stopped) test run."""
        syndrome = run.syndrome()
        return DiagnosisReport(
            syndrome=syndrome, candidates=list(self._table.get(syndrome, []))
        )

    def diagnose_chip(self, chip: ChipUnderTest) -> DiagnosisReport:
        """Apply the suite to ``chip`` and diagnose the observed syndrome."""
        return self.diagnose_run(self.tester.run(chip, self.vectors))

    def resolution(self) -> float:
        """Average number of candidates per syndrome (1.0 = perfect)."""
        if not self._table:
            return 0.0
        return sum(len(v) for v in self._table.values()) / len(self._table)
