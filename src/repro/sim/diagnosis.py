"""Fault localization by syndrome matching (dictionary diagnosis).

The paper's test flow answers "is the chip faulty?"; for a programmable
array it is also useful to know *where*, because an FPVA with a localized
defect can still run applications mapped around the bad region.  This module
implements classic dictionary diagnosis on top of the simulator: precompute
the syndrome of every single fault (optionally every fault pair) under the
generated suite, then look up observed syndromes.

Construction cost is dominated by repeated reachability simulation, and
most fault sets induce states the suite has already seen — a stuck-at-0 on
a valve a vector commands closed changes nothing, and thousands of double
faults collapse onto the same effective ``(open, blocked)`` masks.  The
default ``kernel`` backend therefore canonicalizes every (fault set,
vector) pair to its effective-state masks, simulates each **distinct**
scenario exactly once through the compiled bitmask kernel (64 scenarios
per machine word), and assembles syndromes from the shared slot table.
The ``legacy`` backend retains the original one-chip-at-a-time loop; both
produce identical tables (asserted by the equivalence property test and
``benchmarks/bench_kernel.py``).

Construction also **streams**: fault sets are enumerated lazily
(:func:`iter_fault_sets`) and evaluated in bounded-size chunks, so the
double-fault universe is never materialized as one list, and — when a
:class:`~repro.store.ArtifactStore` is supplied — each chunk of detected
sets is appended to the on-disk artifact as it is produced.  A later
construction over the same (layout, suite, universe, cardinality) then
**warm-starts**: the syndrome table is loaded from the store with no
simulation at all, which is what makes 10x10-and-up double-fault
dictionaries practical for repeated serving.
"""

from __future__ import annotations

import itertools
import warnings
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import (
    ChannelBlocked,
    Fault,
    StuckAt0,
    StuckAt1,
    compatibility_key,
    fault_universe,
    faults_compatible,
)
from repro.sim.kernel import (
    BatchEvaluator,
    CompiledFaultSet,
    ReachabilityKernel,
    SinkCoverageError,
)
from repro.sim.tester import Tester, TestRunResult

Syndrome = tuple

#: Fault sets simulated (and, with a store, persisted) per streaming chunk.
DEFAULT_CHUNK_SIZE = 8192


def iter_fault_sets(
    universe: Sequence[Fault],
    max_cardinality: int,
    min_cardinality: int = 1,
) -> Iterator[tuple[Fault, ...]]:
    """Lazily enumerate every diagnosable fault set of the universe.

    Singles first, then compatible pairs, then compatible triples — each
    tier in :func:`itertools.combinations` order, exactly the order the
    eager builds used, but never materialized as a list (higher tiers
    grow polynomially).  Tiers are strictly ordered by cardinality, so
    the cardinality-``c`` enumeration is an exact *prefix* of the
    cardinality-``c+1`` one — the property incremental cardinality
    promotion leans on; ``min_cardinality`` starts the stream at a later
    tier (the promotion region: sets absent from a lower-cardinality
    ancestor artifact).
    """
    for cardinality in range(min_cardinality, max_cardinality + 1):
        if cardinality == 1:
            for f in universe:
                yield (f,)
        else:
            keys = _interned_keys(universe)
            for idx in itertools.combinations(range(len(universe)), cardinality):
                if _prefiltered_compatible(universe, keys, idx):
                    yield tuple(universe[i] for i in idx)


def _interned_keys(universe: Sequence[Fault]) -> list[int]:
    """Per-fault :func:`compatibility_key`, interned to small integers."""
    ids: dict = {}
    return [
        ids.setdefault(compatibility_key(f), len(ids)) for f in universe
    ]


def _prefiltered_compatible(
    universe: Sequence[Fault], keys: Sequence[int], idx: tuple[int, ...]
) -> bool:
    """Exact :func:`faults_compatible`, skipping it on distinct keys.

    Pairwise-distinct compatibility keys guarantee consistency, and
    enumeration covers cardinality <= 3, so the all-distinct test is two
    or three integer comparisons before any set machinery runs.
    """
    if len(idx) == 2:
        i, j = idx
        if keys[i] != keys[j]:
            return True
    else:
        a, b, c = idx
        if keys[a] != keys[b] and keys[a] != keys[c] and keys[b] != keys[c]:
            return True
    return faults_compatible(tuple(universe[i] for i in idx))


def _count_fault_sets(universe: Sequence[Fault], max_cardinality: int) -> int:
    """``sum(1 for _ in iter_fault_sets(...))``, in closed form.

    Singles and pairs are counted arithmetically — only colliding-key
    pairs (rare) consult :func:`faults_compatible` — so whether a stored
    ancestor covers *every* compatible set of its tiers is decidable
    without re-running the enumeration.  Triples fall back to the honest
    enumeration; cardinality-3 universes are small by construction.
    """
    n = len(universe)
    total = n
    if max_cardinality >= 2:
        total += n * (n - 1) // 2
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(_interned_keys(universe)):
            groups.setdefault(key, []).append(i)
        for members in groups.values():
            for a, b in itertools.combinations(members, 2):
                if not faults_compatible((universe[a], universe[b])):
                    total -= 1
    if max_cardinality >= 3:
        total += sum(1 for _ in iter_fault_sets(universe, 3, 3))
    return total


def _next_combo(idx: tuple[int, ...], n: int) -> tuple[int, ...] | None:
    """Successor of ``idx`` in ``combinations(range(n), len(idx))`` order."""
    if len(idx) == 1:
        i = idx[0] + 1
        return (i,) if i < n else None
    if len(idx) == 2:
        i, j = idx
        if j + 1 < n:
            return (i, j + 1)
        i += 1
        return (i, i + 1) if i + 1 < n else None
    i, j, k = idx
    if k + 1 < n:
        return (i, j, k + 1)
    if j + 2 < n:
        return (i, j + 1, j + 2)
    i += 1
    return (i, i + 1, i + 2) if i + 2 < n else None


def _walk_items(
    stored: Iterable[tuple[tuple[int, ...], int]],
    n: int,
    max_cardinality: int,
    universe: Sequence[Fault],
    path,
) -> Iterator[tuple[tuple[int, ...], int]]:
    """Pair stored artifact rows with the canonical enumeration.

    Yields ``(idx, syndrome_id)`` for stored rows and ``(idx, -1)`` for
    compatible fault sets absent from the artifact, in exact canonical
    enumeration order.  The successor function steps through *gaps only*
    — a complete tier costs one tuple comparison per stored row instead
    of a full re-enumeration — and any stored row that is not an ordered
    subsequence of the enumeration raises
    :class:`~repro.store.ArtifactCorruptionError` against ``path``.
    """
    from repro.store import ArtifactCorruptionError

    def bad() -> ArtifactCorruptionError:
        return ArtifactCorruptionError(
            path,
            "stored fault-set rows are not a subsequence of the "
            "canonical enumeration",
        )

    keys = _interned_keys(universe)
    card = 1
    expected: tuple[int, ...] | None = (0,) if n else None
    for idx, sid in stored:
        c = len(idx)
        if c < card or c > max_cardinality:
            raise bad()
        while card < c:
            while expected is not None:
                if len(expected) == 1 or _prefiltered_compatible(
                    universe, keys, expected
                ):
                    yield expected, -1
                expected = _next_combo(expected, n)
            card += 1
            expected = tuple(range(card)) if card <= n else None
        while expected != idx:
            if expected is None or expected > idx:
                raise bad()
            if len(expected) == 1 or _prefiltered_compatible(
                universe, keys, expected
            ):
                yield expected, -1
            expected = _next_combo(expected, n)
        yield idx, sid
        # Successor of the row just matched, inlined for the pair tier —
        # the hot path runs it once per stored row.
        if c == 2:
            i, j = idx
            j += 1
            if j < n:
                expected = (i, j)
            else:
                i += 1
                expected = (i, i + 1) if i + 1 < n else None
        else:
            expected = _next_combo(idx, n)
    while card <= max_cardinality:
        while expected is not None:
            if len(expected) == 1 or _prefiltered_compatible(
                universe, keys, expected
            ):
                yield expected, -1
            expected = _next_combo(expected, n)
        card += 1
        expected = tuple(range(card)) if card <= n else None


def _simple_fault_bits(
    kernel: ReachabilityKernel, universe: Sequence[Fault]
) -> dict:
    """Per-fault ``(sa0, sa1, closed_valves, blocked_edges)`` mask quads.

    Stuck-ats and blockages compose into effective masks by pure bit
    arithmetic (no leak components, no per-vector intermittent firings),
    so the incremental build's hot loop ORs these quads together instead
    of constructing a :class:`CompiledFaultSet` per fault set.  Complex
    kinds — and faults the kernel has no bit for, whose compilation must
    raise exactly as the cold build's would — map to ``None`` and take
    the compiled path.
    """
    quads: dict = {}
    valve_index = kernel.valve_index
    edge_index = kernel.edge_index
    for fault in universe:
        quad = None
        if isinstance(fault, StuckAt0):
            vi = valve_index.get(fault.valve)
            if vi is not None:
                quad = (1 << vi, 0, 0, 0)
        elif isinstance(fault, StuckAt1):
            vi = valve_index.get(fault.valve)
            if vi is not None:
                quad = (0, 1 << vi, 0, 0)
        elif isinstance(fault, ChannelBlocked):
            ei = edge_index.get(fault.edge)
            if ei is not None:
                vi = valve_index.get(fault.edge)
                quad = (0, 0, 0 if vi is None else 1 << vi, 1 << ei)
        quads[fault] = quad
    return quads


def _iter_chunks(iterable: Iterable, size: int) -> Iterator[list]:
    it = iter(iterable)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


@dataclass
class DiagnosisReport:
    """Candidate fault sets whose syndrome matches the observation."""

    syndrome: Syndrome
    candidates: list[tuple[Fault, ...]]

    @property
    def is_unique(self) -> bool:
        return len(self.candidates) == 1

    @property
    def localized(self) -> bool:
        return bool(self.candidates)


class FaultDictionary:
    """Precomputed syndrome → fault-set dictionary.

    ``context`` binds the dictionary to an
    :class:`~repro.context.ExecutionContext`: the session's kernel, tester
    and artifact store are shared instead of re-derived, and the session's
    engine choice selects the build backend.  The pre-context plumbing
    stays as thin deprecation shims for one release: ``kernel`` supplies a
    pre-compiled :class:`~repro.sim.kernel.ReachabilityKernel` directly;
    ``backend="legacy"`` forces the object-engine build; ``store`` (an
    :class:`~repro.store.ArtifactStore` or a cache-directory path) enables
    the warm-start/streaming persistence described in the module
    docstring.  Without any of them the kernel is compiled lazily, on
    first need — a legacy build never pays for one.
    """

    def __init__(
        self,
        fpva: FPVA,
        vectors: Sequence[TestVector],
        include_control_leaks: bool = True,
        max_cardinality: int = 1,
        universe: Sequence[Fault] | None = None,
        backend: str | None = None,
        kernel: ReachabilityKernel | None = None,
        store=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        context=None,
        base_digest: str | None = None,
        incremental: bool = True,
    ):
        if max_cardinality not in (1, 2, 3):
            raise ValueError(
                "dictionary supports fault sets of cardinality 1, 2 or 3"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if base_digest is not None and not incremental:
            raise ValueError("base_digest requires incremental builds")
        from repro.store import as_store  # late: store sits above sim

        if context is not None:
            from repro.context import ExecutionContext

            if backend is not None or kernel is not None:
                raise ValueError(
                    "pass either context= or the legacy backend=/kernel= "
                    "arguments, not both"
                )
            context = ExecutionContext.resolve(context, fpva)
            backend = "kernel" if context.batched else "legacy"
            if store is None:
                store = context.store
            elif context.store is not None:
                # Two stores is split-brain caching (kernel in one,
                # dictionary in the other); a store-less context may be
                # supplemented, a store-ful one may not be overridden.
                raise ValueError(
                    "pass either context= (with its store) or store=, "
                    "not both"
                )
        elif backend is not None or kernel is not None:
            from repro.sim.backends import resolve_legacy_engine, warn_deprecated

            if backend is not None:
                engine, _ = resolve_legacy_engine(backend, "dictionary")
                backend = "kernel" if engine == "kernel" else "legacy"
            else:
                backend = "kernel"
            if kernel is not None:
                warn_deprecated(
                    "dictionary kernel=",
                    "context=ExecutionContext(fpva, kernel=...)",
                )
        else:
            backend = "kernel"
        self._context = context
        self.fpva = fpva
        self.vectors = list(vectors)
        self.backend = backend
        self.max_cardinality = max_cardinality
        self.chunk_size = chunk_size
        self._kernel = kernel
        self._tester: Tester | None = None
        self._table: dict[Syndrome, list[tuple[Fault, ...]]] = defaultdict(list)

        if universe is None:
            universe = fault_universe(
                fpva, include_control_leaks=include_control_leaks
            )
        self.universe: list[Fault] = list(universe)

        self.store = as_store(store)
        self.digest: str | None = None
        #: True when the table came off disk instead of being simulated.
        self.warm_loaded = False
        #: How this table was obtained: ``{"mode": "warm" | "delta" |
        #: "cold", ...}`` plus per-mode detail (delta parent, reused row
        #: counts, distinct scenarios simulated) — the probe the
        #: zero-re-simulation tests and benchmarks assert against.
        self.build_stats: dict = {}
        if base_digest is not None and self.store is None:
            raise ValueError("base_digest requires an artifact store")
        if self.store is not None:
            from repro.store import dictionary_digest

            self.digest = dictionary_digest(
                fpva, self.vectors, self.universe, max_cardinality
            )
            if self.store.dictionaries.has(self.digest):
                from repro.store import ArtifactCorruptionError

                try:
                    self._table = self.store.dictionaries.load(
                        self.digest, self.universe
                    )
                except ArtifactCorruptionError as error:
                    # Quarantine the corrupt chunks and fall through to a
                    # cold build, whose writer republishes the artifact —
                    # a damaged cache heals instead of crashing diagnosis.
                    self.store.dictionaries.heal(self.digest, error)
                else:
                    self.warm_loaded = True
                    self.build_stats = {"mode": "warm"}
                    return
            if (
                incremental
                and self.backend == "kernel"
                and self.vectors
                and self.universe
                and self._build_delta(base_digest)
            ):
                return
        self._build()

    # -- construction ------------------------------------------------------
    def _lineage_meta(self) -> dict:
        """The artifact's lineage block (parentless; delta builds annotate
        their actual parent + delta shape over this before committing)."""
        from repro.store import layout_digest, suite_digests, universe_digest

        return {
            "layout": layout_digest(self.fpva),
            "universe": universe_digest(self.universe),
            "suite": suite_digests(self.vectors),
            "parent": None,
            "delta": None,
        }

    def _build(self) -> None:
        fault_sets = iter_fault_sets(self.universe, self.max_cardinality)
        writer = None
        if self.store is not None:
            writer = self.store.dictionaries.writer(
                self.digest,
                self.max_cardinality,
                meta={
                    "array": self.fpva.name,
                    "vectors": len(self.vectors),
                    "universe_size": len(self.universe),
                    "lineage": self._lineage_meta(),
                },
            )
            self._fault_pos = {f: i for i, f in enumerate(self.universe)}
        self.build_stats = {"mode": "cold"}
        try:
            if self.backend == "kernel":
                scenarios = self._build_batched(fault_sets, writer)
                if scenarios is not None:
                    self.build_stats["simulated_scenarios"] = scenarios
            else:
                self._build_legacy(fault_sets, writer)
            if writer is not None:
                writer.commit()
        finally:
            if writer is not None:
                writer.abort()

    def _record(
        self, faults: tuple[Fault, ...], syndrome: Syndrome, writer
    ) -> None:
        self._table[syndrome].append(faults)
        if writer is not None:
            writer.add([self._fault_pos[f] for f in faults], syndrome)

    def _build_legacy(
        self, fault_sets: Iterable[tuple[Fault, ...]], writer=None
    ) -> None:
        """One full-suite simulation per fault set through the pure-Python
        object-graph engine (the pre-kernel reference path)."""
        tester = Tester(self.fpva, engine="object")
        for faults in fault_sets:
            syndrome = self._syndrome_of(faults, tester=tester)
            if syndrome:  # undetectable sets cannot be diagnosed
                self._record(faults, syndrome, writer)

    def _build_batched(
        self,
        fault_sets: Iterable[tuple[Fault, ...]],
        writer=None,
        evaluator: BatchEvaluator | None = None,
    ) -> int | None:
        """Canonicalize by effective state, simulate distinct states once.

        Streams: each chunk of fault sets is compiled, deduplicated,
        simulated and folded into the table (and the store, when present)
        before the next chunk is enumerated, so peak memory is bounded by
        the chunk size plus the *distinct* scenario pool — never by the
        quadratic fault-set universe.

        Returns the number of distinct scenarios simulated (the
        re-simulation probe ``build_stats`` reports), or ``None`` when
        sink coverage forced the legacy fallback.  ``evaluator`` lets the
        incremental build run its promotion region through a pre-checked
        evaluator without re-raising the coverage fallback mid-delta.
        """
        kernel = self._require_kernel()
        if evaluator is None:
            try:
                evaluator = BatchEvaluator(kernel, self.vectors)
            except SinkCoverageError as exc:
                # Vectors whose expectations do not cover the array's sinks
                # cannot be compared row-wise; fall back to the reference path.
                warnings.warn(
                    f"batched dictionary build unavailable ({exc}); falling "
                    f"back to the one-chip-at-a-time legacy engine",
                    stacklevel=2,
                )
                self._build_legacy(fault_sets, writer)
                return None
        fires_cache: dict = {}
        names = [v.name for v in self.vectors]
        syndrome_cache: dict[tuple[int, ...], Syndrome] = {}
        for chunk in _iter_chunks(fault_sets, self.chunk_size):
            slot_rows = [
                evaluator.slot_row(CompiledFaultSet(kernel, faults, fires_cache))
                for faults in chunk
            ]
            evaluator.flush()
            for faults, row in zip(chunk, slot_rows):
                syndrome = syndrome_cache.get(row)
                if syndrome is None:
                    syndrome = tuple(
                        (names[vi], evaluator.observed_items(slot))
                        for vi, slot in enumerate(row)
                        if not evaluator.passed(vi, slot)
                    )
                    syndrome_cache[row] = syndrome
                if syndrome:  # undetectable sets cannot be diagnosed
                    self._record(faults, syndrome, writer)
        return evaluator.distinct_scenarios

    def _build_delta(self, base_digest: str | None) -> bool:
        """Assemble the table from a stored ancestor plus new work only.

        Resolves the most reusable stored ancestor (same layout and
        ordered universe, vector suite ⊆ ours, cardinality ≤ ours),
        carries its rows into the table while simulating only the
        genuinely *new* vectors against them, then enumerates only the
        fault sets the ancestor's cardinality tier missed.  The published
        artifact is complete and self-contained under the target digest,
        and its canonical content — table entries, interned syndrome
        order, chunk rows — is bit-identical to what a cold build of the
        same key produces (pinned by the incremental property tests).

        Returns ``False`` (with the table left empty) whenever any
        precondition fails — no ancestor, duplicate vector names, sink
        coverage, ancestor corruption — and the caller cold-builds
        exactly as before this path existed.
        """
        from repro.store import ArtifactCorruptionError, resolve_ancestor

        names = [v.name for v in self.vectors]
        position = {name: i for i, name in enumerate(names)}
        if len(position) != len(names):
            return False  # duplicate names make entry repositioning ambiguous
        lineage = self._lineage_meta()
        dicts = self.store.dictionaries
        plan = resolve_ancestor(
            dicts,
            lineage["layout"],
            lineage["universe"],
            len(self.universe),
            lineage["suite"],
            self.max_cardinality,
            base_digest=base_digest,
        )
        if plan is None:
            return False
        anc = plan.ancestor
        kernel = self._require_kernel()
        try:
            evaluator = BatchEvaluator(kernel, self.vectors)
        except SinkCoverageError:
            return False  # the cold path will warn and take the legacy engine
        new_positions = plan.new_positions
        try:
            # Ancestor syndrome entries, repositioned into the target
            # suite: per syndrome id, (target position, entry) pairs.
            carried: list[list[tuple[int, tuple]]] = []
            for syndrome in dicts.load_syndromes(anc.digest):
                entries = []
                for name, items in syndrome:
                    pos = position.get(name)
                    if pos is None:
                        return False  # suite digests lied; do not guess
                    entries.append((pos, (name, items)))
                carried.append(entries)
        except ArtifactCorruptionError as error:
            dicts.heal(anc.digest, error)
            return False
        writer = dicts.writer(
            self.digest,
            self.max_cardinality,
            meta={
                "array": self.fpva.name,
                "vectors": len(self.vectors),
                "universe_size": len(self.universe),
                "lineage": lineage,
            },
        )
        self._fault_pos = {f: i for i, f in enumerate(self.universe)}
        table = self._table
        universe = self.universe
        reused = 0
        sub: BatchEvaluator | None = None
        try:
            if not new_positions:
                # Pure cardinality promotion: every ancestor row carries
                # over verbatim — zero enumeration, zero simulation for
                # the reused region.  Entries still re-sort into *our*
                # suite order, which may permute the ancestor's.
                finals = [
                    tuple(e for _, e in sorted(entries)) for entries in carried
                ]
                get = universe.__getitem__
                for idx, sid in dicts.iter_rows(anc.digest):
                    syndrome = finals[sid]
                    table[syndrome].append(tuple(map(get, idx)))
                    writer.add(idx, syndrome)
                    reused += 1
            else:
                # New columns: every set of the ancestor's tiers must be
                # re-judged (an undetected set may become detectable), but
                # only against the new vectors.  The walk pairs stored
                # rows with the canonical enumeration via a successor
                # function — gaps only, no re-enumeration — so the common
                # near-complete ancestor costs one tuple comparison per
                # stored row; absent sets surface as ``sid == -1`` items.
                sub = BatchEvaluator(
                    kernel, [self.vectors[i] for i in new_positions]
                )
                sub_slot = sub.slot
                sub_masks = sub.commanded_masks
                sub_names = sub.vector_names
                quads = _simple_fault_bits(kernel, universe)
                quads_ix = [quads[f] for f in universe]
                fires_cache: dict = {}
                # Distinct new-vector slot rows are few; memoize their
                # contribution once per row.  ``finals`` caches the
                # re-sorted carried syndrome for rows the new vectors
                # leave untouched (the common case on an append).
                new_cache: dict = {}
                finals: list[Syndrome | None] = [None] * len(carried)
                sub_passed = sub.passed
                sub_observed = sub.observed_items
                single = sub_masks[0] if len(sub_masks) == 1 else None
                items = _walk_items(
                    dicts.iter_rows(anc.digest),
                    len(universe),
                    anc.cardinality,
                    universe,
                    dicts.path_for(anc.digest),
                )
                for chunk in _iter_chunks(items, self.chunk_size):
                    slots: list = []
                    put = slots.append
                    for idx, _sid in chunk:
                        sa0 = sa1 = closed = debris = 0
                        simple = True
                        for i in idx:
                            quad = quads_ix[i]
                            if quad is None:
                                simple = False
                                break
                            sa0 |= quad[0]
                            sa1 |= quad[1]
                            closed |= quad[2]
                            debris |= quad[3]
                        if simple:
                            if single is not None:
                                put(sub_slot(
                                    ((single | sa1) & ~sa0) & ~closed,
                                    debris,
                                ))
                            else:
                                put(tuple(
                                    sub_slot(
                                        ((m | sa1) & ~sa0) & ~closed, debris
                                    )
                                    for m in sub_masks
                                ))
                        else:
                            compiled = CompiledFaultSet(
                                kernel,
                                tuple(universe[i] for i in idx),
                                fires_cache,
                            )
                            row = sub.slot_row(compiled)
                            put(row[0] if single is not None else row)
                    sub.flush()
                    get = universe.__getitem__
                    cache_get = new_cache.get
                    writer_add = writer.add
                    for (idx, sid), row in zip(chunk, slots):
                        cached = cache_get(row)
                        if cached is None:
                            if single is not None:
                                new_entries = (
                                    []
                                    if sub_passed(0, row)
                                    else [(
                                        new_positions[0],
                                        (sub_names[0], sub_observed(row)),
                                    )]
                                )
                            else:
                                # ``new_positions`` ascends with ``k``,
                                # so this is already entry-sorted.
                                new_entries = [
                                    (
                                        new_positions[k],
                                        (
                                            sub_names[k],
                                            sub_observed(slot_id),
                                        ),
                                    )
                                    for k, slot_id in enumerate(row)
                                    if not sub_passed(k, slot_id)
                                ]
                            cached = (
                                new_entries,
                                tuple(e for _, e in new_entries),
                            )
                            new_cache[row] = cached
                        if sid < 0:
                            syndrome = cached[1]
                            if not syndrome:
                                continue  # still undetected: no row
                        else:
                            reused += 1
                            if cached[0]:
                                entries = carried[sid] + cached[0]
                                entries.sort()
                                syndrome = tuple(e for _, e in entries)
                            else:
                                syndrome = finals[sid]
                                if syndrome is None:
                                    syndrome = tuple(
                                        e for _, e in sorted(carried[sid])
                                    )
                                    finals[sid] = syndrome
                        table[syndrome].append(tuple(map(get, idx)))
                        writer_add(idx, syndrome)
            return self._finish_delta(
                anc, lineage, writer, evaluator, sub, new_positions, reused
            )
        except ArtifactCorruptionError as error:
            # Mid-walk corruption: drop everything assembled so far and
            # let the cold build (over a healed store) start clean.
            self._table = defaultdict(list)
            dicts.heal(anc.digest, error)
            return False
        finally:
            writer.abort()

    def _finish_delta(
        self,
        anc,
        lineage: dict,
        writer,
        evaluator: BatchEvaluator,
        sub: BatchEvaluator | None,
        new_positions: Sequence[int],
        reused: int,
    ) -> bool:
        """Promote the missing tiers, publish, and record the stats."""
        promoted_from = self.total_fault_sets
        scenarios = 0
        if anc.cardinality < self.max_cardinality:
            scenarios = self._build_batched(
                iter_fault_sets(
                    self.universe, self.max_cardinality, anc.cardinality + 1
                ),
                writer,
                evaluator,
            ) or 0
        writer.annotate(
            lineage={
                **lineage,
                "parent": anc.digest,
                "delta": {
                    "new_vectors": len(new_positions),
                    "from_cardinality": anc.cardinality,
                    "reused_sets": reused,
                },
            }
        )
        writer.commit()
        self.build_stats = {
            "mode": "delta",
            "parent": anc.digest,
            "parent_cardinality": anc.cardinality,
            "new_vectors": len(new_positions),
            "reused_sets": reused,
            "promoted_sets": self.total_fault_sets - promoted_from,
            "simulated_scenarios": scenarios
            + (sub.distinct_scenarios if sub is not None else 0),
        }
        return True

    def _require_kernel(self) -> ReachabilityKernel:
        """The compiled kernel, built (or warm-loaded) on first need."""
        if self._kernel is None:
            if self._context is not None:
                self._kernel = self._context.kernel
            elif self.store is not None:
                self._kernel = self.store.kernels.get_or_compile(self.fpva)
            else:
                self._kernel = ReachabilityKernel(self.fpva)
        return self._kernel

    @property
    def tester(self) -> Tester:
        """The session's tester (kernel-engine when built standalone),
        constructed lazily on first use."""
        if self._tester is None:
            if self._context is not None:
                self._tester = self._context.tester
            else:
                self._tester = Tester(self.fpva, kernel=self._require_kernel())
        return self._tester

    def _syndrome_of(
        self, faults: tuple[Fault, ...], tester: Tester | None = None
    ) -> Syndrome:
        chip = ChipUnderTest(self.fpva, faults)
        return (tester or self.tester).run(chip, self.vectors).syndrome()

    @property
    def distinct_syndromes(self) -> int:
        return len(self._table)

    @property
    def total_fault_sets(self) -> int:
        """Detectable fault sets across every syndrome class."""
        return sum(len(sets) for sets in self._table.values())

    def syndrome_classes(self) -> list[tuple[Syndrome, list[tuple[Fault, ...]]]]:
        """Every (syndrome, candidate fault sets) equivalence class.

        Fault sets in one class are behaviourally indistinguishable under
        the dictionary's vector suite; the adaptive engine schedules vectors
        to separate these classes, never their members.
        """
        return [(syndrome, list(sets)) for syndrome, sets in self._table.items()]

    def diagnose_run(self, run: TestRunResult) -> DiagnosisReport:
        """Diagnose from a completed (full, non-early-stopped) test run."""
        syndrome = run.syndrome()
        return DiagnosisReport(
            syndrome=syndrome, candidates=list(self._table.get(syndrome, []))
        )

    def diagnose_chip(self, chip: ChipUnderTest) -> DiagnosisReport:
        """Apply the suite to ``chip`` and diagnose the observed syndrome."""
        return self.diagnose_run(self.tester.run(chip, self.vectors))

    def resolution(self) -> float:
        """Average number of candidates per syndrome (1.0 = perfect)."""
        if not self._table:
            return 0.0
        return sum(len(v) for v in self._table.values()) / len(self._table)
