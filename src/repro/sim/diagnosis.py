"""Fault localization by syndrome matching (dictionary diagnosis).

The paper's test flow answers "is the chip faulty?"; for a programmable
array it is also useful to know *where*, because an FPVA with a localized
defect can still run applications mapped around the bad region.  This module
implements classic dictionary diagnosis on top of the simulator: precompute
the syndrome of every single fault (optionally every fault pair) under the
generated suite, then look up observed syndromes.

Construction cost is dominated by repeated reachability simulation, and
most fault sets induce states the suite has already seen — a stuck-at-0 on
a valve a vector commands closed changes nothing, and thousands of double
faults collapse onto the same effective ``(open, blocked)`` masks.  The
default ``kernel`` backend therefore canonicalizes every (fault set,
vector) pair to its effective-state masks, simulates each **distinct**
scenario exactly once through the compiled bitmask kernel (64 scenarios
per machine word), and assembles syndromes from the shared slot table.
The ``legacy`` backend retains the original one-chip-at-a-time loop; both
produce identical tables (asserted by the equivalence property test and
``benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import Fault, fault_universe, faults_compatible
from repro.sim.kernel import BatchEvaluator, CompiledFaultSet
from repro.sim.tester import Tester, TestRunResult

Syndrome = tuple


@dataclass
class DiagnosisReport:
    """Candidate fault sets whose syndrome matches the observation."""

    syndrome: Syndrome
    candidates: list[tuple[Fault, ...]]

    @property
    def is_unique(self) -> bool:
        return len(self.candidates) == 1

    @property
    def localized(self) -> bool:
        return bool(self.candidates)


class FaultDictionary:
    """Precomputed syndrome → fault-set dictionary."""

    def __init__(
        self,
        fpva: FPVA,
        vectors: Sequence[TestVector],
        include_control_leaks: bool = True,
        max_cardinality: int = 1,
        universe: Sequence[Fault] | None = None,
        backend: str = "kernel",
    ):
        if max_cardinality not in (1, 2):
            raise ValueError("dictionary supports single and double faults")
        if backend not in ("kernel", "legacy"):
            raise ValueError(f"unknown dictionary backend {backend!r}")
        self.fpva = fpva
        self.vectors = list(vectors)
        self.tester = Tester(fpva)
        self._table: dict[Syndrome, list[tuple[Fault, ...]]] = defaultdict(list)

        if universe is None:
            universe = fault_universe(
                fpva, include_control_leaks=include_control_leaks
            )
        fault_sets: list[tuple[Fault, ...]] = [(f,) for f in universe]
        if max_cardinality == 2:
            fault_sets.extend(
                pair
                for pair in itertools.combinations(universe, 2)
                if faults_compatible(pair)
            )
        if backend == "kernel":
            self._build_batched(fault_sets)
        else:
            self._build_legacy(fault_sets)

    # -- construction ------------------------------------------------------
    def _build_legacy(self, fault_sets: Sequence[tuple[Fault, ...]]) -> None:
        """One full-suite simulation per fault set through the pure-Python
        object-graph engine (the pre-kernel reference path)."""
        tester = Tester(self.fpva, engine="object")
        for faults in fault_sets:
            syndrome = self._syndrome_of(faults, tester=tester)
            if syndrome:  # undetectable sets cannot be diagnosed
                self._table[syndrome].append(faults)

    def _build_batched(self, fault_sets: Sequence[tuple[Fault, ...]]) -> None:
        """Canonicalize by effective state, simulate distinct states once."""
        kernel = self.tester.simulator.kernel
        try:
            evaluator = BatchEvaluator(kernel, self.vectors)
        except ValueError:
            # Vectors whose expectations do not cover the array's sinks
            # cannot be compared row-wise; fall back to the reference path.
            self._build_legacy(fault_sets)
            return
        fires_cache: dict = {}
        slot_rows = [
            evaluator.slot_row(CompiledFaultSet(kernel, faults, fires_cache))
            for faults in fault_sets
        ]
        evaluator.flush()

        names = [v.name for v in self.vectors]
        syndrome_cache: dict[tuple[int, ...], Syndrome] = {}
        for faults, row in zip(fault_sets, slot_rows):
            syndrome = syndrome_cache.get(row)
            if syndrome is None:
                syndrome = tuple(
                    (names[vi], evaluator.observed_items(slot))
                    for vi, slot in enumerate(row)
                    if not evaluator.passed(vi, slot)
                )
                syndrome_cache[row] = syndrome
            if syndrome:  # undetectable sets cannot be diagnosed
                self._table[syndrome].append(faults)

    def _syndrome_of(
        self, faults: tuple[Fault, ...], tester: Tester | None = None
    ) -> Syndrome:
        chip = ChipUnderTest(self.fpva, faults)
        return (tester or self.tester).run(chip, self.vectors).syndrome()

    @property
    def distinct_syndromes(self) -> int:
        return len(self._table)

    def syndrome_classes(self) -> list[tuple[Syndrome, list[tuple[Fault, ...]]]]:
        """Every (syndrome, candidate fault sets) equivalence class.

        Fault sets in one class are behaviourally indistinguishable under
        the dictionary's vector suite; the adaptive engine schedules vectors
        to separate these classes, never their members.
        """
        return [(syndrome, list(sets)) for syndrome, sets in self._table.items()]

    def diagnose_run(self, run: TestRunResult) -> DiagnosisReport:
        """Diagnose from a completed (full, non-early-stopped) test run."""
        syndrome = run.syndrome()
        return DiagnosisReport(
            syndrome=syndrome, candidates=list(self._table.get(syndrome, []))
        )

    def diagnose_chip(self, chip: ChipUnderTest) -> DiagnosisReport:
        """Apply the suite to ``chip`` and diagnose the observed syndrome."""
        return self.diagnose_run(self.tester.run(chip, self.vectors))

    def resolution(self) -> float:
        """Average number of candidates per syndrome (1.0 = perfect)."""
        if not self._table:
            return 0.0
        return sum(len(v) for v in self._table.values()) / len(self._table)
