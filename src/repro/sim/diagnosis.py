"""Fault localization by syndrome matching (dictionary diagnosis).

The paper's test flow answers "is the chip faulty?"; for a programmable
array it is also useful to know *where*, because an FPVA with a localized
defect can still run applications mapped around the bad region.  This module
implements classic dictionary diagnosis on top of the simulator: precompute
the syndrome of every single fault (optionally every fault pair) under the
generated suite, then look up observed syndromes.

Construction cost is dominated by repeated reachability simulation, and
most fault sets induce states the suite has already seen — a stuck-at-0 on
a valve a vector commands closed changes nothing, and thousands of double
faults collapse onto the same effective ``(open, blocked)`` masks.  The
default ``kernel`` backend therefore canonicalizes every (fault set,
vector) pair to its effective-state masks, simulates each **distinct**
scenario exactly once through the compiled bitmask kernel (64 scenarios
per machine word), and assembles syndromes from the shared slot table.
The ``legacy`` backend retains the original one-chip-at-a-time loop; both
produce identical tables (asserted by the equivalence property test and
``benchmarks/bench_kernel.py``).

Construction also **streams**: fault sets are enumerated lazily
(:func:`iter_fault_sets`) and evaluated in bounded-size chunks, so the
double-fault universe is never materialized as one list, and — when a
:class:`~repro.store.ArtifactStore` is supplied — each chunk of detected
sets is appended to the on-disk artifact as it is produced.  A later
construction over the same (layout, suite, universe, cardinality) then
**warm-starts**: the syndrome table is loaded from the store with no
simulation at all, which is what makes 10x10-and-up double-fault
dictionaries practical for repeated serving.
"""

from __future__ import annotations

import itertools
import warnings
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.chip import ChipUnderTest
from repro.sim.faults import Fault, fault_universe, faults_compatible
from repro.sim.kernel import (
    BatchEvaluator,
    CompiledFaultSet,
    ReachabilityKernel,
    SinkCoverageError,
)
from repro.sim.tester import Tester, TestRunResult

Syndrome = tuple

#: Fault sets simulated (and, with a store, persisted) per streaming chunk.
DEFAULT_CHUNK_SIZE = 8192


def iter_fault_sets(
    universe: Sequence[Fault], max_cardinality: int
) -> Iterator[tuple[Fault, ...]]:
    """Lazily enumerate every diagnosable fault set of the universe.

    Singles first, then compatible pairs in :func:`itertools.combinations`
    order — the exact order the eager builds used, but never materialized
    as a list (the double-fault universe grows quadratically).
    """
    for f in universe:
        yield (f,)
    if max_cardinality == 2:
        for pair in itertools.combinations(universe, 2):
            if faults_compatible(pair):
                yield pair


def _iter_chunks(iterable: Iterable, size: int) -> Iterator[list]:
    it = iter(iterable)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


@dataclass
class DiagnosisReport:
    """Candidate fault sets whose syndrome matches the observation."""

    syndrome: Syndrome
    candidates: list[tuple[Fault, ...]]

    @property
    def is_unique(self) -> bool:
        return len(self.candidates) == 1

    @property
    def localized(self) -> bool:
        return bool(self.candidates)


class FaultDictionary:
    """Precomputed syndrome → fault-set dictionary.

    ``context`` binds the dictionary to an
    :class:`~repro.context.ExecutionContext`: the session's kernel, tester
    and artifact store are shared instead of re-derived, and the session's
    engine choice selects the build backend.  The pre-context plumbing
    stays as thin deprecation shims for one release: ``kernel`` supplies a
    pre-compiled :class:`~repro.sim.kernel.ReachabilityKernel` directly;
    ``backend="legacy"`` forces the object-engine build; ``store`` (an
    :class:`~repro.store.ArtifactStore` or a cache-directory path) enables
    the warm-start/streaming persistence described in the module
    docstring.  Without any of them the kernel is compiled lazily, on
    first need — a legacy build never pays for one.
    """

    def __init__(
        self,
        fpva: FPVA,
        vectors: Sequence[TestVector],
        include_control_leaks: bool = True,
        max_cardinality: int = 1,
        universe: Sequence[Fault] | None = None,
        backend: str | None = None,
        kernel: ReachabilityKernel | None = None,
        store=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        context=None,
    ):
        if max_cardinality not in (1, 2):
            raise ValueError("dictionary supports single and double faults")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        from repro.store import as_store  # late: store sits above sim

        if context is not None:
            from repro.context import ExecutionContext

            if backend is not None or kernel is not None:
                raise ValueError(
                    "pass either context= or the legacy backend=/kernel= "
                    "arguments, not both"
                )
            context = ExecutionContext.resolve(context, fpva)
            backend = "kernel" if context.batched else "legacy"
            if store is None:
                store = context.store
            elif context.store is not None:
                # Two stores is split-brain caching (kernel in one,
                # dictionary in the other); a store-less context may be
                # supplemented, a store-ful one may not be overridden.
                raise ValueError(
                    "pass either context= (with its store) or store=, "
                    "not both"
                )
        elif backend is not None or kernel is not None:
            from repro.sim.backends import resolve_legacy_engine, warn_deprecated

            if backend is not None:
                engine, _ = resolve_legacy_engine(backend, "dictionary")
                backend = "kernel" if engine == "kernel" else "legacy"
            else:
                backend = "kernel"
            if kernel is not None:
                warn_deprecated(
                    "dictionary kernel=",
                    "context=ExecutionContext(fpva, kernel=...)",
                )
        else:
            backend = "kernel"
        self._context = context
        self.fpva = fpva
        self.vectors = list(vectors)
        self.backend = backend
        self.max_cardinality = max_cardinality
        self.chunk_size = chunk_size
        self._kernel = kernel
        self._tester: Tester | None = None
        self._table: dict[Syndrome, list[tuple[Fault, ...]]] = defaultdict(list)

        if universe is None:
            universe = fault_universe(
                fpva, include_control_leaks=include_control_leaks
            )
        self.universe: list[Fault] = list(universe)

        self.store = as_store(store)
        self.digest: str | None = None
        #: True when the table came off disk instead of being simulated.
        self.warm_loaded = False
        if self.store is not None:
            from repro.store import dictionary_digest

            self.digest = dictionary_digest(
                fpva, self.vectors, self.universe, max_cardinality
            )
            if self.store.dictionaries.has(self.digest):
                from repro.store import ArtifactCorruptionError

                try:
                    self._table = self.store.dictionaries.load(
                        self.digest, self.universe
                    )
                except ArtifactCorruptionError as error:
                    # Quarantine the corrupt chunks and fall through to a
                    # cold build, whose writer republishes the artifact —
                    # a damaged cache heals instead of crashing diagnosis.
                    self.store.dictionaries.heal(self.digest, error)
                else:
                    self.warm_loaded = True
                    return
        self._build()

    # -- construction ------------------------------------------------------
    def _build(self) -> None:
        fault_sets = iter_fault_sets(self.universe, self.max_cardinality)
        writer = None
        if self.store is not None:
            writer = self.store.dictionaries.writer(
                self.digest,
                self.max_cardinality,
                meta={
                    "array": self.fpva.name,
                    "vectors": len(self.vectors),
                    "universe_size": len(self.universe),
                },
            )
            self._fault_pos = {f: i for i, f in enumerate(self.universe)}
        try:
            if self.backend == "kernel":
                self._build_batched(fault_sets, writer)
            else:
                self._build_legacy(fault_sets, writer)
            if writer is not None:
                writer.commit()
        finally:
            if writer is not None:
                writer.abort()

    def _record(
        self, faults: tuple[Fault, ...], syndrome: Syndrome, writer
    ) -> None:
        self._table[syndrome].append(faults)
        if writer is not None:
            writer.add([self._fault_pos[f] for f in faults], syndrome)

    def _build_legacy(
        self, fault_sets: Iterable[tuple[Fault, ...]], writer=None
    ) -> None:
        """One full-suite simulation per fault set through the pure-Python
        object-graph engine (the pre-kernel reference path)."""
        tester = Tester(self.fpva, engine="object")
        for faults in fault_sets:
            syndrome = self._syndrome_of(faults, tester=tester)
            if syndrome:  # undetectable sets cannot be diagnosed
                self._record(faults, syndrome, writer)

    def _build_batched(
        self, fault_sets: Iterable[tuple[Fault, ...]], writer=None
    ) -> None:
        """Canonicalize by effective state, simulate distinct states once.

        Streams: each chunk of fault sets is compiled, deduplicated,
        simulated and folded into the table (and the store, when present)
        before the next chunk is enumerated, so peak memory is bounded by
        the chunk size plus the *distinct* scenario pool — never by the
        quadratic fault-set universe.
        """
        kernel = self._require_kernel()
        try:
            evaluator = BatchEvaluator(kernel, self.vectors)
        except SinkCoverageError as exc:
            # Vectors whose expectations do not cover the array's sinks
            # cannot be compared row-wise; fall back to the reference path.
            warnings.warn(
                f"batched dictionary build unavailable ({exc}); falling "
                f"back to the one-chip-at-a-time legacy engine",
                stacklevel=2,
            )
            self._build_legacy(fault_sets, writer)
            return
        fires_cache: dict = {}
        names = [v.name for v in self.vectors]
        syndrome_cache: dict[tuple[int, ...], Syndrome] = {}
        for chunk in _iter_chunks(fault_sets, self.chunk_size):
            slot_rows = [
                evaluator.slot_row(CompiledFaultSet(kernel, faults, fires_cache))
                for faults in chunk
            ]
            evaluator.flush()
            for faults, row in zip(chunk, slot_rows):
                syndrome = syndrome_cache.get(row)
                if syndrome is None:
                    syndrome = tuple(
                        (names[vi], evaluator.observed_items(slot))
                        for vi, slot in enumerate(row)
                        if not evaluator.passed(vi, slot)
                    )
                    syndrome_cache[row] = syndrome
                if syndrome:  # undetectable sets cannot be diagnosed
                    self._record(faults, syndrome, writer)

    def _require_kernel(self) -> ReachabilityKernel:
        """The compiled kernel, built (or warm-loaded) on first need."""
        if self._kernel is None:
            if self._context is not None:
                self._kernel = self._context.kernel
            elif self.store is not None:
                self._kernel = self.store.kernels.get_or_compile(self.fpva)
            else:
                self._kernel = ReachabilityKernel(self.fpva)
        return self._kernel

    @property
    def tester(self) -> Tester:
        """The session's tester (kernel-engine when built standalone),
        constructed lazily on first use."""
        if self._tester is None:
            if self._context is not None:
                self._tester = self._context.tester
            else:
                self._tester = Tester(self.fpva, kernel=self._require_kernel())
        return self._tester

    def _syndrome_of(
        self, faults: tuple[Fault, ...], tester: Tester | None = None
    ) -> Syndrome:
        chip = ChipUnderTest(self.fpva, faults)
        return (tester or self.tester).run(chip, self.vectors).syndrome()

    @property
    def distinct_syndromes(self) -> int:
        return len(self._table)

    @property
    def total_fault_sets(self) -> int:
        """Detectable fault sets across every syndrome class."""
        return sum(len(sets) for sets in self._table.values())

    def syndrome_classes(self) -> list[tuple[Syndrome, list[tuple[Fault, ...]]]]:
        """Every (syndrome, candidate fault sets) equivalence class.

        Fault sets in one class are behaviourally indistinguishable under
        the dictionary's vector suite; the adaptive engine schedules vectors
        to separate these classes, never their members.
        """
        return [(syndrome, list(sets)) for syndrome, sets in self._table.items()]

    def diagnose_run(self, run: TestRunResult) -> DiagnosisReport:
        """Diagnose from a completed (full, non-early-stopped) test run."""
        syndrome = run.syndrome()
        return DiagnosisReport(
            syndrome=syndrome, candidates=list(self._table.get(syndrome, []))
        )

    def diagnose_chip(self, chip: ChipUnderTest) -> DiagnosisReport:
        """Apply the suite to ``chip`` and diagnose the observed syndrome."""
        return self.diagnose_run(self.tester.run(chip, self.vectors))

    def resolution(self) -> float:
        """Average number of candidates per syndrome (1.0 = perfect)."""
        if not self._table:
            return 0.0
        return sum(len(v) for v in self._table.values()) / len(self._table)
