"""GPU backend: cupy word sweeps for very wide dictionary builds.

A dictionary build at 16x16+ propagates hundreds of thousands of packed
scenario words; the arithmetic is pure gather / AND / OR, which maps
directly onto a GPU.  This tier mirrors the word backend's fixpoint sweep
with two device-side adaptations:

* the destination-sorted segment reduction is expressed as a **padded
  gather** — a static ``(n_nodes, max_indegree)`` arc-index matrix (extra
  slots point at a sentinel all-zero row) followed by
  ``bitwise_or.reduce`` along the padding axis, because ``reduceat`` is
  not portable across cupy versions;
* convergence is tested on-device and synced once per sweep.

cupy (and a visible CUDA device) is an **optional** dependency: the
registry probe reports the reason when either is missing and tests skip
cleanly.  Device state is never pickled — a kernel shipped to campaign
workers re-uploads its arrays on first use in each process.
"""

from __future__ import annotations

import numpy as np

from repro.sim.backends.base import BackendUnavailable, KernelBackend

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy as cp
except ImportError:  # pragma: no cover - the no-cupy environment
    cp = None


def probe() -> str | None:
    """``None`` when the tier can run, else the human-readable reason."""
    if cp is None:
        return "cupy is not installed"
    try:  # pragma: no cover - requires CUDA hardware
        if cp.cuda.runtime.getDeviceCount() < 1:
            return "no CUDA device is visible"
    # repro: ignore[R5] -- availability probe: any driver/runtime failure means "tier unavailable", reported as a reason string
    except Exception as exc:  # pragma: no cover - driver/runtime failures
        return f"CUDA runtime unavailable ({exc})"
    return None  # pragma: no cover - requires CUDA hardware


class GpuBackend(KernelBackend):  # pragma: no cover - requires CUDA hardware
    """Padded-gather word sweeps on a CUDA device via cupy."""

    name = "gpu"

    def __init__(self, kernel):
        reason = probe()
        if reason is not None:
            raise BackendUnavailable(reason)
        super().__init__(kernel)
        self._device = None  # uploaded lazily, never pickled

    def _upload(self):
        """Static device arrays: arc table plus the padded gather index."""
        if self._device is not None:
            return self._device
        kernel = self.kernel
        n_arcs = len(kernel._arc_src)
        starts = np.r_[np.asarray(kernel._dst_starts), n_arcs]
        indegree = np.diff(starts)
        max_deg = int(indegree.max()) if len(indegree) else 1
        # Pad each destination's arc list with the sentinel arc id n_arcs,
        # whose spread row is pinned to zero words.
        pad = np.full((len(indegree), max_deg), n_arcs, dtype=np.int64)
        for i, (lo, deg) in enumerate(zip(starts[:-1], indegree)):
            pad[i, :deg] = np.arange(lo, lo + deg, dtype=np.int64)
        self._device = {
            "arc_src": cp.asarray(np.asarray(kernel._arc_src, dtype=np.int64)),
            "dst_nodes": cp.asarray(np.asarray(kernel._dst_nodes, dtype=np.int64)),
            "pad": cp.asarray(pad),
            "valve_arcs": cp.asarray(kernel._valve_arcs),
            "valve_arc_ids": cp.asarray(kernel._valve_arc_ids),
            "edge_arcs": cp.asarray(kernel._edge_arcs),
            "edge_arc_ids": cp.asarray(kernel._edge_arc_ids),
        }
        return self._device

    def reach_words(
        self,
        valve_words: np.ndarray,
        blocked_words: np.ndarray | None,
        words: int,
        rows: np.ndarray | None = None,
        tile_words: int | None = None,
    ) -> np.ndarray:
        kernel = self.kernel
        full = ~np.uint64(0)
        if not len(kernel._arc_src):
            reach = np.zeros((kernel.n_nodes, words), dtype=np.uint64)
            reach[list(kernel._source_idx)] = full
            return reach if rows is None else reach[rows]
        dev = self._upload()
        arc_open = cp.full(
            (len(kernel._arc_src), words), full, dtype=cp.uint64
        )
        arc_open[dev["valve_arcs"]] = cp.asarray(valve_words)[dev["valve_arc_ids"]]
        if blocked_words is not None:
            arc_open[dev["edge_arcs"]] &= ~cp.asarray(blocked_words)[
                dev["edge_arc_ids"]
            ]
        reach = cp.zeros((kernel.n_nodes, words), dtype=cp.uint64)
        reach[list(kernel._source_idx)] = full
        # Sentinel row: padded gather slots contribute zero to the OR.
        zero_row = cp.zeros((1, words), dtype=cp.uint64)
        src, pad, dst = dev["arc_src"], dev["pad"], dev["dst_nodes"]
        while True:
            spread = reach[src] & arc_open
            spread = cp.concatenate([spread, zero_row], axis=0)
            agg = cp.bitwise_or.reduce(spread[pad], axis=1)
            merged = reach[dst] | agg
            if bool((merged == reach[dst]).all()):
                break
            reach[dst] = merged
        host = cp.asnumpy(reach)
        return host if rows is None else host[rows]

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_device"] = None
        return state
