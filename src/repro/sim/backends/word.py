"""The single-word packed sweep — the PR-3 propagation path, verbatim.

One ``(n_arcs, words)`` conduction matrix, level-synchronous
``reach[dst] |= reach[src] & arc_open`` sweeps to a fixpoint via one
``np.bitwise_or.reduceat`` over the destination-sorted arc table.  Runtime
is ``O(diameter x arcs x words)``: exact, branch-free, and the reference
cost model every other backend's floor is measured against.
"""

from __future__ import annotations

import numpy as np

from repro.sim.backends.base import KernelBackend


class WordBackend(KernelBackend):
    """Destination-major reduceat sweeps over the full word block."""

    name = "word"

    def reach_words(
        self,
        valve_words: np.ndarray,
        blocked_words: np.ndarray | None,
        words: int,
        rows: np.ndarray | None = None,
        tile_words: int | None = None,
    ) -> np.ndarray:
        kernel = self.kernel
        full = ~np.uint64(0)
        arc_open = np.full((len(kernel._arc_src), words), full, dtype=np.uint64)
        arc_open[kernel._valve_arcs] = valve_words[kernel._valve_arc_ids]
        if blocked_words is not None:
            arc_open[kernel._edge_arcs] &= ~blocked_words[kernel._edge_arc_ids]
        reach = kernel._propagate(arc_open, words)
        return reach if rows is None else reach[rows]
