"""Backend seam: the abstract contract every kernel backend implements.

A :class:`KernelBackend` answers reachability for one compiled
:class:`~repro.sim.kernel.ReachabilityKernel` at two granularities:

* :meth:`reach_words` — the batched tier.  Inputs are the kernel's packed
  scenario words (``(n_valves, W)`` / ``(n_edges, W)`` uint64, 64
  scenarios per word); output is the ``(rows, W)`` reach matrix.  This is
  the seam :meth:`ReachabilityKernel.batch_readings_bool` dispatches
  through, so a backend swap changes *how* words propagate, never what a
  scenario or a reading is.
* :meth:`readings` / :meth:`reach_mask` — the scalar tier (one scenario,
  arbitrary-precision int masks).  The default implementations delegate
  to the kernel's hoisted-buffer BFS; the JIT tier overrides them with
  compiled loops because adaptive diagnosis issues size-1 batches where
  per-query Python overhead dominates.

Backends hold only the kernel reference plus plain arrays derived from
it, so a kernel pickled into a campaign shard payload carries its backend
(and any compiled schedule) along — workers never re-derive either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.sim.kernel import ReachabilityKernel


class BackendUnavailable(RuntimeError):
    """A registered backend cannot run here (missing optional dependency).

    Carries the human-readable reason (e.g. ``"numba is not installed"``)
    so callers can warn-and-fall-back or skip-with-reason; never raised
    for misconfiguration, which stays a :class:`ValueError`.
    """


class KernelBackend:
    """One propagation strategy bound to one compiled kernel."""

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, kernel: "ReachabilityKernel"):
        self.kernel = kernel

    # -- batched tier -------------------------------------------------------
    def reach_words(
        self,
        valve_words: np.ndarray,
        blocked_words: np.ndarray | None,
        words: int,
        rows: np.ndarray | None = None,
        tile_words: int | None = None,
    ) -> np.ndarray:
        """Reach words for a packed scenario batch.

        ``valve_words`` is ``(n_valves, words)`` uint64 (bit ``s`` of word
        ``w`` = valve open in scenario ``64*w + s``), ``blocked_words``
        optionally ``(n_edges, words)``.  Returns ``(len(rows), words)``
        (``(n_nodes, words)`` when ``rows`` is ``None``).  ``tile_words``
        is a column-tiling hint; backends that do not tile ignore it.
        """
        raise NotImplementedError

    # -- scalar tier --------------------------------------------------------
    def readings(self, open_mask: int, blocked_mask: int = 0) -> dict[str, bool]:
        """Sink readings for one int-mask scenario (kernel BFS by default)."""
        return self.kernel._scalar_readings(open_mask, blocked_mask)

    def reach_mask(self, open_mask: int, blocked_mask: int = 0) -> bytearray:
        """Per-node reach flags for one int-mask scenario."""
        return self.kernel._scalar_reach(open_mask, blocked_mask)

    def describe(self) -> str:
        return f"{self.name} backend on {self.kernel!r}"

    def __repr__(self):
        return f"{type(self).__name__}({self.kernel.fpva.name!r})"
