"""Multi-word tile backend: elimination-scheduled propagation (default).

The word sweep's cost is ``O(diameter x arcs x words)``, and on real
dictionary workloads the diameter term is brutal: suite vectors command
long serpentine flow paths, so a 16x16 batch needs ~250 level-synchronous
sweeps before the slowest scenario converges — and per-word convergence is
uniformly slow (median ~190), so retiring converged word columns barely
helps.  This backend removes the diameter term entirely.

At compile time the array graph (plus a virtual super-source ``S`` wired
to every pressure port) is reduced by **greedy independent-set
elimination**: each level removes a maximal independent set of
low-degree nodes and records, per removed node ``v``, the shortcut edges
``(a, b)`` its elimination induces between its neighbours, with
conduction ``open(a,v) & open(v,b)``.  Shortcuts produced within one
level target disjoint node pairs (independence), so every level is a
*static schedule* of gather / AND / ``bitwise_or.reduceat`` array ops.
Per word tile the solve is then two diameter-free passes:

* **forward** (elimination order): evaluate each level's shortcut
  conductions from the already-known edge words below it;
* **backward** (reverse order): ``reach(v) = OR over v's elimination-time
  edges (v,a) of open(v,a) & reach(a)`` — every neighbour ``a`` survives
  ``v``, so its reach words are already final; ``reach(S)`` is all-ones.

Total work is two passes over (base + fill) edges — for a 16x16 array
~2.2k edge rows instead of ~250 sweeps over 964 arcs — and the result is
bit-identical to the word sweep (pinned by the equivalence suite).  The
backward pass is additionally *restricted*: when the caller only needs
sink rows (every ``batch_readings`` call), only the static dependency
cone of those rows is substituted.

Word columns are processed in ``(n_nodes, W)`` tiles so the gathered
working set stays cache-sized; :func:`pick_tile_words` chooses ``W`` from
the batch size (the hook :class:`~repro.sim.kernel.BatchEvaluator` uses
when flushing its scenario pool).
"""

from __future__ import annotations

import numpy as np

from repro.sim.backends.base import KernelBackend

_FULL = ~np.uint64(0)


def pick_tile_words(batch: int) -> int:
    """Tile width (in 64-scenario words) for a batch of ``batch`` scenarios.

    Small batches fit one tile outright; large batches are capped so one
    tile's gathered edge rows stay comfortably inside cache: 4/8/16-word
    tiles for the mid range, 32 words (2048 scenarios) at the top.
    """
    words = max(1, (batch + 63) // 64)
    for w in (4, 8, 16):
        if words <= w:
            return words
    return min(words, 32)


class _ElimLevel:
    """Static arrays for one elimination level (plain attrs, picklable).

    Forward (shortcut conduction) schedule::

        prod_a, prod_b : product edge-id pairs, grouped by target edge
        seg            : reduceat group starts into the product arrays
        tgt            : target edge id per group
        tgt_new        : True = fresh fill edge (assign), False = OR into
                         an edge that already existed at this level

    Backward (reach substitution) schedule — ``v``'s elimination-time
    incident edges, entries sorted by ``v``::

        bs_entry_node  : per-entry eliminated node id
        bs_nbr         : per-entry surviving neighbour node id (may be S)
        bs_edge        : per-entry edge id
        bs_seg         : reduceat group starts (one group per node)
        bs_nodes       : node id per group
    """

    __slots__ = (
        "prod_a", "prod_b", "seg", "tgt", "tgt_new",
        "bs_entry_node", "bs_nbr", "bs_edge", "bs_seg", "bs_nodes",
    )


def _group_starts(sorted_ids: np.ndarray) -> np.ndarray:
    if not len(sorted_ids):
        return np.array([], dtype=np.intp)
    return np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])


class EliminationPlan:
    """Compiled elimination schedule for one kernel's topology.

    Deterministic: nodes are eliminated in (degree, node id) order within
    each level, so the same kernel always compiles the same plan — and a
    warm-loaded kernel (same arc table) compiles an identical one.
    """

    def __init__(self, kernel) -> None:
        self.n_nodes = kernel.n_nodes
        self.source_node = kernel.n_nodes  # virtual S
        self._compile(kernel)
        #: Backward schedules filtered to a dependency cone, keyed by the
        #: requested output rows (None = full substitution).
        self._restricted: dict[bytes | None, list] = {}

    # -- static compilation -------------------------------------------------
    def _compile(self, kernel) -> None:
        n = self.n_nodes
        S = self.source_node
        counts = np.diff(np.r_[kernel._dst_starts, len(kernel._arc_src)])
        arc_dst = np.repeat(kernel._dst_nodes, counts)

        # Undirected base edges: arcs come in (u,w)/(w,u) pairs with one
        # conduction source (valve id / blocked edge id), so keep each
        # pair once.  S-edges to the pressure sources always conduct.
        adj: list[dict[int, int]] = [dict() for _ in range(n + 1)]
        base_valve: list[int] = []
        base_block: list[int] = []
        seen: set[tuple[int, int]] = set()

        def add_edge(a: int, b: int, vi: int, ei: int) -> None:
            eid = len(base_valve)
            base_valve.append(vi)
            base_block.append(ei)
            adj[a][b] = eid
            adj[b][a] = eid

        for u, w, vi, ei in zip(
            kernel._arc_src.tolist(), arc_dst.tolist(),
            kernel._arc_valve.tolist(), kernel._arc_edge.tolist(),
        ):
            if (w, u) in seen:
                continue
            seen.add((u, w))
            add_edge(u, w, vi, ei)
        for s in kernel._source_idx:
            add_edge(S, s, -1, -1)

        self.base_valve = np.array(base_valve, dtype=np.int64)
        self.base_block = np.array(base_block, dtype=np.int64)
        self.n_base = len(base_valve)

        total_edges = self.n_base
        levels: list[_ElimLevel] = []
        alive = set(range(n))
        while alive:
            # Maximal independent set, lowest current degree first (stable
            # tiebreak on node id) — low-degree-first bounds the fill-in.
            picked: list[int] = []
            excluded: set[int] = set()
            for v in sorted(alive, key=lambda v: (len(adj[v]), v)):
                if v in excluded:
                    continue
                picked.append(v)
                excluded.update(adj[v])

            bs_node: list[int] = []
            bs_nbr: list[int] = []
            bs_edge: list[int] = []
            pending: dict[tuple[int, int], list[tuple[int, int]]] = {}
            for v in picked:
                nbrs = sorted(adj[v].items())
                for a, ea in nbrs:
                    bs_node.append(v)
                    bs_nbr.append(a)
                    bs_edge.append(ea)
                for i in range(len(nbrs)):
                    ai, eai = nbrs[i]
                    for j in range(i + 1, len(nbrs)):
                        bj, ebj = nbrs[j]
                        key = (ai, bj) if ai < bj else (bj, ai)
                        pending.setdefault(key, []).append((eai, ebj))
                for a, _ in nbrs:
                    del adj[a][v]
                adj[v] = {}
                alive.discard(v)

            prod_a: list[int] = []
            prod_b: list[int] = []
            seg: list[int] = []
            tgt: list[int] = []
            tgt_new: list[bool] = []
            for (a, b), prods in sorted(pending.items()):
                seg.append(len(prod_a))
                for ea, eb in prods:
                    prod_a.append(ea)
                    prod_b.append(eb)
                existing = adj[a].get(b)
                if existing is None:
                    eid = total_edges
                    total_edges += 1
                    adj[a][b] = eid
                    adj[b][a] = eid
                    tgt.append(eid)
                    tgt_new.append(True)
                else:
                    tgt.append(existing)
                    tgt_new.append(False)

            lvl = _ElimLevel()
            lvl.prod_a = np.array(prod_a, dtype=np.intp)
            lvl.prod_b = np.array(prod_b, dtype=np.intp)
            lvl.seg = np.array(seg, dtype=np.intp)
            lvl.tgt = np.array(tgt, dtype=np.intp)
            lvl.tgt_new = np.array(tgt_new, dtype=bool)
            lvl.bs_entry_node = np.array(bs_node, dtype=np.intp)
            lvl.bs_nbr = np.array(bs_nbr, dtype=np.intp)
            lvl.bs_edge = np.array(bs_edge, dtype=np.intp)
            lvl.bs_seg = _group_starts(lvl.bs_entry_node)
            lvl.bs_nodes = lvl.bs_entry_node[lvl.bs_seg]
            levels.append(lvl)

        self.levels = levels
        self.total_edges = total_edges
        self.fill_edges = total_edges - self.n_base

    # -- backward-pass restriction ------------------------------------------
    def _backward_levels(self, rows: np.ndarray | None) -> list:
        """Per-level backward schedules covering ``rows``'s dependency cone.

        ``reach(v)`` depends on the reach of ``v``'s elimination-time
        neighbours, which are eliminated strictly later (or are S), so one
        pass over the levels in elimination order closes the cone; levels
        are then filtered to needed nodes.  Entries are precomputed once
        per distinct ``rows`` and reused for every batch.
        """
        key = None if rows is None else np.asarray(rows).tobytes()
        cached = self._restricted.get(key)
        if cached is not None:
            return cached
        if rows is None:
            schedules = [
                (lvl.bs_nbr, lvl.bs_edge, lvl.bs_seg, lvl.bs_nodes)
                for lvl in self.levels
            ]
        else:
            needed = np.zeros(self.n_nodes + 1, dtype=bool)
            needed[np.asarray(rows, dtype=np.intp)] = True
            schedules = []
            for lvl in self.levels:
                keep = needed[lvl.bs_entry_node]
                if keep.all():
                    needed[lvl.bs_nbr] = True
                    schedules.append(
                        (lvl.bs_nbr, lvl.bs_edge, lvl.bs_seg, lvl.bs_nodes)
                    )
                    continue
                nbr = lvl.bs_nbr[keep]
                needed[nbr] = True
                entry = lvl.bs_entry_node[keep]
                seg = _group_starts(entry)
                schedules.append(
                    (nbr, lvl.bs_edge[keep], seg, entry[seg])
                )
        self._restricted[key] = schedules
        return schedules

    # -- per-tile solve ------------------------------------------------------
    def solve(
        self,
        valve_words: np.ndarray,
        blocked_words: np.ndarray | None,
        width: int,
        rows: np.ndarray | None,
    ) -> np.ndarray:
        """Reach words for one tile of ``width`` word columns."""
        edge_open = np.empty((self.total_edges, width), dtype=np.uint64)
        has_valve = self.base_valve >= 0
        free = np.flatnonzero(~has_valve)
        gated = np.flatnonzero(has_valve)
        edge_open[free] = _FULL
        edge_open[gated] = valve_words[self.base_valve[gated]]
        if blocked_words is not None:
            blockable = np.flatnonzero(self.base_block >= 0)
            edge_open[blockable] &= ~blocked_words[self.base_block[blockable]]

        for lvl in self.levels:
            if not len(lvl.prod_a):
                continue
            products = edge_open[lvl.prod_a] & edge_open[lvl.prod_b]
            grouped = np.bitwise_or.reduceat(products, lvl.seg, axis=0)
            fresh = lvl.tgt_new
            edge_open[lvl.tgt[fresh]] = grouped[fresh]
            if not fresh.all():
                edge_open[lvl.tgt[~fresh]] |= grouped[~fresh]

        reach = np.zeros((self.n_nodes + 1, width), dtype=np.uint64)
        reach[self.source_node] = _FULL
        for nbr, edge, seg, nodes in reversed(self._backward_levels(rows)):
            if not len(nodes):
                continue
            spread = reach[nbr] & edge_open[edge]
            reach[nodes] = np.bitwise_or.reduceat(spread, seg, axis=0)
        if rows is None:
            return reach[: self.n_nodes]
        return reach[rows]


class TileBackend(KernelBackend):
    """Elimination-scheduled tiles — the default batched backend."""

    name = "tile"

    def __init__(self, kernel):
        super().__init__(kernel)
        self._plan: EliminationPlan | None = None

    @property
    def plan(self) -> EliminationPlan:
        """The elimination schedule, compiled on first batched use."""
        if self._plan is None:
            self._plan = EliminationPlan(self.kernel)
        return self._plan

    def reach_words(
        self,
        valve_words: np.ndarray,
        blocked_words: np.ndarray | None,
        words: int,
        rows: np.ndarray | None = None,
        tile_words: int | None = None,
    ) -> np.ndarray:
        plan = self.plan
        width = tile_words if tile_words else pick_tile_words(words * 64)
        width = max(1, min(width, words))
        n_rows = plan.n_nodes if rows is None else len(rows)
        out = np.empty((n_rows, words), dtype=np.uint64)
        for lo in range(0, words, width):
            hi = min(lo + width, words)
            blocked_tile = (
                None if blocked_words is None
                else np.ascontiguousarray(blocked_words[:, lo:hi])
            )
            out[:, lo:hi] = plan.solve(
                np.ascontiguousarray(valve_words[:, lo:hi]),
                blocked_tile,
                hi - lo,
                rows,
            )
        return out

    def describe(self) -> str:
        plan = self.plan
        return (
            f"tile backend: {len(plan.levels)} elimination levels, "
            f"{plan.n_base} base + {plan.fill_edges} fill edges"
        )
