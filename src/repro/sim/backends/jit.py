"""JIT backend: numba-compiled scalar BFS and frontier sweeps.

Adaptive diagnosis applies one vector at a time — every simulation is a
size-1 batch — so its cost profile is pure per-query Python overhead:
int-mask bit tests, deque churn, tuple unpacking.  This tier compiles the
scalar single-query BFS and the batched inner frontier sweep with numba's
``@njit``; the data model is unchanged (same CSR arrays, same masks), so
results stay bit-identical to the word sweep.

numba is an **optional** dependency: the module imports without it (the
registry probe reports the reason and selection falls back), and the
jitted functions live at module level so a kernel carrying this backend
still pickles by reference.  Masks cross the boundary as little-endian
``uint8`` bit arrays rather than arbitrary-precision ints, which numba
cannot represent.
"""

from __future__ import annotations

import numpy as np

from repro.sim.backends.base import BackendUnavailable, KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the no-numba environment
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Stand-in so the module (and its docs/tests) import cleanly."""
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn


def probe() -> str | None:
    """``None`` when the tier can run, else the human-readable reason."""
    if not NUMBA_AVAILABLE:
        return "numba is not installed"
    return None


@njit(cache=True)
def _bfs_scalar(
    out_starts, out_nbr, out_valve, out_edge,
    sources, sink_pos, n_sinks,
    open_bits, blocked_bits, has_blocked,
    seen, queue, hits, early_exit,
):  # pragma: no cover - compiled path, exercised via the jit CI leg
    """One-scenario BFS over the CSR out-adjacency; resets ``seen`` itself.

    ``open_bits``/``blocked_bits`` are per-valve / per-edge uint8 flags.
    Returns the number of visited nodes left in ``queue`` (diagnostics).
    """
    head = 0
    tail = 0
    found = 0
    for i in range(sources.shape[0]):
        s = sources[i]
        seen[s] = 1
        queue[tail] = s
        tail += 1
    while head < tail and (not early_exit or found < n_sinks):
        u = queue[head]
        head += 1
        for j in range(out_starts[u], out_starts[u + 1]):
            w = out_nbr[j]
            if seen[w]:
                continue
            vi = out_valve[j]
            if vi >= 0 and open_bits[vi] == 0:
                continue
            if has_blocked:
                ei = out_edge[j]
                if ei >= 0 and blocked_bits[ei] != 0:
                    continue
            seen[w] = 1
            sp = sink_pos[w]
            if sp >= 0:
                hits[sp] = 1
                found += 1
            queue[tail] = w
            tail += 1
    for i in range(tail):
        seen[queue[i]] = 0
    return tail


@njit(cache=True)
def _sweep_words(
    arc_src, dst_starts, dst_nodes, n_arcs, arc_open, reach
):  # pragma: no cover - compiled path, exercised via the jit CI leg
    """Frontier sweep to fixpoint, one word column at a time.

    Per-column Gauss–Seidel: updates are visible within a sweep, which
    only accelerates convergence toward the same (unique, monotone)
    fixpoint the level-synchronous word sweep reaches.
    """
    n_seg = dst_starts.shape[0]
    words = arc_open.shape[1]
    for w in range(words):
        changed = True
        while changed:
            changed = False
            for s in range(n_seg):
                end = dst_starts[s + 1] if s + 1 < n_seg else n_arcs
                acc = np.uint64(0)
                for a in range(dst_starts[s], end):
                    acc |= reach[arc_src[a], w] & arc_open[a, w]
                d = dst_nodes[s]
                merged = reach[d, w] | acc
                if merged != reach[d, w]:
                    reach[d, w] = merged
                    changed = True


class JitBackend(KernelBackend):
    """numba-compiled scalar queries plus a compiled batched sweep."""

    name = "jit"

    def __init__(self, kernel):
        reason = probe()
        if reason is not None:
            raise BackendUnavailable(reason)
        super().__init__(kernel)
        # Flatten the scalar-path tuple adjacency to CSR arrays once.
        degrees = [len(nbrs) for nbrs in kernel._out]
        self._out_starts = np.cumsum([0] + degrees).astype(np.int64)
        flat = [entry for nbrs in kernel._out for entry in nbrs]
        self._out_nbr = np.array([e[0] for e in flat], dtype=np.int64)
        self._out_valve = np.array([e[1] for e in flat], dtype=np.int64)
        self._out_edge = np.array([e[2] for e in flat], dtype=np.int64)
        self._sources = np.array(kernel._source_idx, dtype=np.int64)
        self._sink_pos = np.array(kernel._sink_pos, dtype=np.int64)
        self._seen = np.zeros(kernel.n_nodes, dtype=np.uint8)
        self._queue = np.zeros(max(kernel.n_nodes, 1), dtype=np.int64)

    # -- mask marshalling ---------------------------------------------------
    def _bits(self, mask: int, count: int) -> np.ndarray:
        stride = (count + 7) // 8 or 1
        return np.unpackbits(
            np.frombuffer(mask.to_bytes(stride, "little"), np.uint8),
            bitorder="little", count=count,
        )

    _EMPTY_BITS = np.zeros(0, dtype=np.uint8)

    def _run_scalar(
        self, open_mask: int, blocked_mask: int, early_exit: bool
    ) -> tuple[np.ndarray, int]:
        kernel = self.kernel
        open_bits = self._bits(open_mask, kernel.n_valves)
        if blocked_mask:
            blocked_bits = self._bits(blocked_mask, kernel.n_edges)
            has_blocked = True
        else:
            blocked_bits = self._EMPTY_BITS
            has_blocked = False
        hits = np.zeros(kernel.n_sinks, dtype=np.uint8)
        visited = _bfs_scalar(
            self._out_starts, self._out_nbr, self._out_valve, self._out_edge,
            self._sources, self._sink_pos, kernel.n_sinks,
            open_bits, blocked_bits, has_blocked,
            self._seen, self._queue, hits, early_exit,
        )
        return hits, visited

    # -- scalar tier --------------------------------------------------------
    def readings(self, open_mask: int, blocked_mask: int = 0) -> dict[str, bool]:
        hits, _ = self._run_scalar(open_mask, blocked_mask, early_exit=True)
        return {
            name: bool(hits[j])
            for j, name in enumerate(self.kernel.sink_names)
        }

    def reach_mask(self, open_mask: int, blocked_mask: int = 0) -> bytearray:
        kernel = self.kernel
        # No early exit: callers want every reached node, not just sinks.
        reached = bytearray(kernel.n_nodes)
        hits = np.zeros(kernel.n_sinks, dtype=np.uint8)
        open_bits = self._bits(open_mask, kernel.n_valves)
        blocked_bits = (
            self._bits(blocked_mask, kernel.n_edges)
            if blocked_mask else self._EMPTY_BITS
        )
        visited = _bfs_scalar(
            self._out_starts, self._out_nbr, self._out_valve, self._out_edge,
            self._sources, self._sink_pos, kernel.n_sinks,
            open_bits, blocked_bits, bool(blocked_mask),
            self._seen, self._queue, hits, False,
        )
        for i in range(visited):
            reached[int(self._queue[i])] = 1
        return reached

    # -- batched tier -------------------------------------------------------
    def reach_words(
        self,
        valve_words: np.ndarray,
        blocked_words: np.ndarray | None,
        words: int,
        rows: np.ndarray | None = None,
        tile_words: int | None = None,
    ) -> np.ndarray:
        kernel = self.kernel
        full = ~np.uint64(0)
        arc_open = np.full((len(kernel._arc_src), words), full, dtype=np.uint64)
        arc_open[kernel._valve_arcs] = valve_words[kernel._valve_arc_ids]
        if blocked_words is not None:
            arc_open[kernel._edge_arcs] &= ~blocked_words[kernel._edge_arc_ids]
        reach = np.zeros((kernel.n_nodes, words), dtype=np.uint64)
        reach[list(kernel._source_idx)] = full
        if len(kernel._arc_src):
            _sweep_words(
                np.asarray(kernel._arc_src, dtype=np.int64),
                np.asarray(kernel._dst_starts, dtype=np.int64),
                np.asarray(kernel._dst_nodes, dtype=np.int64),
                len(kernel._arc_src),
                arc_open,
                reach,
            )
        return reach if rows is None else reach[rows]

    def __getstate__(self):
        # The seen/queue scratch buffers are per-process scratch; shipping
        # them is harmless but they must not be shared after unpickling.
        state = self.__dict__.copy()
        state["_seen"] = np.zeros_like(self._seen)
        state["_queue"] = np.zeros_like(self._queue)
        return state
