"""Kernel backend registry: pluggable propagation tiers behind one seam.

Every backend answers the same two questions — batched reach words and
scalar readings — against the same compiled CSR arc table, and every one
is pinned bit-identical to the ``engine="object"`` reference by the
equivalence suite.  What varies is the cost model:

======  ==================================================================
name    strategy
======  ==================================================================
word    single-word packed reduceat sweeps (the PR-3 path; the baseline
        every floor is measured against)
tile    **default** — elimination-scheduled multi-word tiles: two
        diameter-free passes over a precompiled shortcut schedule
jit     numba-compiled scalar BFS + per-column frontier sweep (optional;
        targets adaptive diagnosis, where batches are size-1)
gpu     cupy padded-gather word sweeps (optional; wide dictionary builds)
======  ==================================================================

Selection flows through one spelling everywhere: the
``kernel_backend=`` session knob on
:class:`~repro.context.ExecutionContext`, the ``REPRO_KERNEL_BACKEND``
environment variable, and the CLI ``--kernel-backend`` flag.  Optional
tiers degrade gracefully: :func:`availability` reports why a tier cannot
run, and :func:`create` with ``fallback=True`` warns and substitutes the
default instead of failing.

The deprecated ``backend="kernel"`` spelling from the pre-session API
routes here too (``"kernel"`` → ``tile``); :func:`warn_deprecated` is the
single warning path every legacy shim funnels through.
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING, Callable

from repro.sim.backends.base import BackendUnavailable, KernelBackend
from repro.sim.backends.tile import EliminationPlan, TileBackend, pick_tile_words
from repro.sim.backends.word import WordBackend

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.sim.kernel import ReachabilityKernel

#: The session/env/CLI selection knob's environment spelling.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Backend used when nothing selects one explicitly.
DEFAULT_BACKEND = "tile"

#: Deprecated spellings accepted by :func:`create` (via the legacy shims).
_ALIASES = {"kernel": "tile"}  # repro: ignore[R7] -- frozen alias table, never mutated after import


def _make_jit(kernel):
    from repro.sim.backends.jit import JitBackend

    return JitBackend(kernel)


def _probe_jit() -> str | None:
    from repro.sim.backends.jit import probe

    return probe()


def _make_gpu(kernel):
    from repro.sim.backends.gpu import GpuBackend

    return GpuBackend(kernel)


def _probe_gpu() -> str | None:
    from repro.sim.backends.gpu import probe

    return probe()


#: name -> (factory, availability probe).  Probes return ``None`` when the
#: tier can run here, else the human-readable reason it cannot.
# repro: ignore[R7] -- backend registry: written once at import, read-only afterwards, identical in every worker
_REGISTRY: dict[str, tuple[Callable, Callable[[], str | None]]] = {
    "word": (WordBackend, lambda: None),
    "tile": (TileBackend, lambda: None),
    "jit": (_make_jit, _probe_jit),
    "gpu": (_make_gpu, _probe_gpu),
}


def backend_names() -> tuple[str, ...]:
    """Every registered backend name (available here or not)."""
    return tuple(_REGISTRY)


def availability() -> dict[str, str | None]:
    """Per-backend availability: ``None`` = runnable, else the reason not."""
    return {name: probe() for name, (_, probe) in _REGISTRY.items()}


def canonical_name(name: str) -> str:
    """Resolve aliases and validate; raises ``ValueError`` for unknowns."""
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {backend_names()}"
        )
    return resolved


def default_backend() -> str:
    """The session default: ``REPRO_KERNEL_BACKEND`` if set, else tile."""
    env = os.environ.get(ENV_VAR)
    return canonical_name(env) if env else DEFAULT_BACKEND


def create(
    name: str, kernel: "ReachabilityKernel", *, fallback: bool = False
) -> KernelBackend:
    """Instantiate backend ``name`` for ``kernel``.

    Unknown names always raise ``ValueError``.  A known-but-unavailable
    tier raises :class:`BackendUnavailable` — or, with ``fallback=True``,
    warns and substitutes :data:`DEFAULT_BACKEND` so an optional
    dependency missing at runtime degrades instead of failing.
    """
    resolved = canonical_name(name)
    factory, probe = _REGISTRY[resolved]
    reason = probe()
    if reason is not None:
        if not fallback or resolved == DEFAULT_BACKEND:
            raise BackendUnavailable(
                f"kernel backend {resolved!r} is unavailable: {reason}"
            )
        warnings.warn(
            f"kernel backend {resolved!r} is unavailable ({reason}); "
            f"falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        factory, _ = _REGISTRY[DEFAULT_BACKEND]
    return factory(kernel)


def warn_deprecated(old: str, new: str) -> None:
    """The one deprecation-warning path every legacy shim routes through.

    ``old`` names the spelling being retired (e.g. ``backend='kernel'``),
    ``new`` the session-era replacement.  Funnelling every shim through
    one helper keeps the message format — and the promise that the shims
    last one release — in a single place.
    """
    warnings.warn(
        f"{old} is deprecated and will be removed; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def resolve_legacy_engine(backend: str, kind: str) -> tuple[str, str | None]:
    """Map a deprecated ``backend=`` string to ``(engine, kernel_backend)``.

    The pre-session API spelled the engine choice ``backend="kernel"`` /
    ``"legacy"``; sessions split that into ``engine=`` (kernel vs object
    reference) and ``kernel_backend=`` (which kernel tier).  ``"kernel"``
    routes to the registry default tier, ``"legacy"`` to the object
    engine.  Emits the deprecation warning through the single shared
    path; ``kind`` names the call site's argument for the message.
    """
    if backend not in ("kernel", "legacy"):
        raise ValueError(f"unknown {kind} backend {backend!r}")
    warn_deprecated(
        f"{kind} backend={backend!r}",
        "context=ExecutionContext(fpva, engine=..., kernel_backend=...)",
    )
    if backend == "legacy":
        return "object", None
    return "kernel", canonical_name("kernel")


__all__ = [
    "BackendUnavailable",
    "KernelBackend",
    "WordBackend",
    "TileBackend",
    "EliminationPlan",
    "pick_tile_words",
    "ENV_VAR",
    "DEFAULT_BACKEND",
    "backend_names",
    "availability",
    "canonical_name",
    "default_backend",
    "create",
    "warn_deprecated",
    "resolve_legacy_engine",
]
