"""A chip under test: an FPVA plus a set of manufacturing faults.

Given a commanded test vector, :class:`ChipUnderTest` computes the
*effective* open valve set (and, for blockage faults, the physically
obstructed edges):

1. start from the commanded states (open set; everything else closed);
2. propagate control-layer leaks: pressurizing one leaking line closes its
   partner too — propagation is transitive across chained leaks;
3. apply stuck-at overrides: a stuck-at-1 valve is open no matter what, a
   stuck-at-0 valve is closed no matter what (a physically broken flow
   channel cannot be re-opened by control pressure, so SA0 wins over SA1 in
   the impossible event both are injected — the fault sampler forbids it);
4. apply intermittent faults that fire on this vector (a keyed hash of the
   vector name decides, so chip behaviour is a deterministic function of
   the vector — independent of application order or repetition);
5. blockage faults override everything: an obstructed valve edge is closed
   regardless of state, an obstructed channel edge is reported in the
   blocked set for the simulator to exclude.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Iterable, Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.fpva.geometry import Edge
from repro.sim.faults import (
    ChannelBlocked,
    ControlLeak,
    Fault,
    IntermittentStuckAt,
    StuckAt0,
    StuckAt1,
    faults_compatible,
)


class ChipUnderTest:
    """An FPVA with zero or more injected faults."""

    def __init__(self, fpva: FPVA, faults: Sequence[Fault] = ()):
        self.fpva = fpva
        self.faults = tuple(faults)
        if not faults_compatible(self.faults):
            raise ValueError(f"incompatible fault set: {self.faults}")
        self._sa0 = {f.valve for f in self.faults if isinstance(f, StuckAt0)}
        self._sa1 = {f.valve for f in self.faults if isinstance(f, StuckAt1)}
        self._intermittent = tuple(
            f for f in self.faults if isinstance(f, IntermittentStuckAt)
        )
        self._blocked = frozenset(
            f.edge for f in self.faults if isinstance(f, ChannelBlocked)
        )
        self._leaks: dict[Edge, list[Edge]] = defaultdict(list)
        for f in self.faults:
            if isinstance(f, ControlLeak):
                self._leaks[f.a].append(f.b)
                self._leaks[f.b].append(f.a)
        for valve in (
            self._sa0
            | self._sa1
            | set(self._leaks)
            | {f.valve for f in self._intermittent}
        ):
            if valve not in fpva.valve_set:
                raise ValueError(f"fault on non-existent valve {valve}")
        flow_edges = frozenset(fpva.flow_edges)
        for edge in self._blocked:
            if edge not in flow_edges:
                raise ValueError(f"blockage on non-existent flow edge {edge}")

    @property
    def is_fault_free(self) -> bool:
        return not self.faults

    def effective_open_valves(
        self,
        commanded_open: Iterable[Edge],
        vector_key: str | None = None,
    ) -> frozenset[Edge]:
        """The valves that are physically open under the commanded pattern.

        ``vector_key`` identifies the applied vector for intermittent
        faults; a chip carrying one cannot be evaluated without it.
        """
        open_set = set(commanded_open)

        if self._leaks:
            # Control pressure spreads transitively through leaking lines:
            # every commanded-closed valve pressurizes its line; partners of
            # pressurized lines become pressurized (closed) as well.
            closed = {
                v for v in self.fpva.valves if v not in open_set
            }
            frontier = deque(v for v in closed if v in self._leaks)
            while frontier:
                v = frontier.popleft()
                for partner in self._leaks[v]:
                    if partner not in closed:
                        closed.add(partner)
                        open_set.discard(partner)
                        if partner in self._leaks:
                            frontier.append(partner)

        open_set.update(self._sa1)
        open_set.difference_update(self._sa0)

        if self._intermittent:
            if vector_key is None:
                raise ValueError(
                    "chip has intermittent faults; vector identity is "
                    "required to evaluate them (pass vector_key or use "
                    "effective_state)"
                )
            for fault in self._intermittent:
                if fault.fires_on(vector_key):
                    if fault.stuck_open:
                        open_set.add(fault.valve)
                    else:
                        open_set.discard(fault.valve)

        open_set.difference_update(self._blocked)
        return frozenset(open_set)

    def effective_state(
        self, vector: TestVector
    ) -> tuple[frozenset[Edge], frozenset[Edge]]:
        """Physically open valves and physically blocked edges for a vector."""
        open_set = self.effective_open_valves(
            vector.open_valves, vector_key=vector.name
        )
        return open_set, self._blocked

    def effective_open_for(self, vector: TestVector) -> frozenset[Edge]:
        """Effective open valves under a test vector."""
        return self.effective_state(vector)[0]

    def __repr__(self):
        return f"ChipUnderTest({self.fpva.name!r}, {len(self.faults)} faults)"
