"""Pressure simulation, fault injection and diagnosis substrate."""

from repro.sim.campaign import (
    CampaignResult,
    merge_shards,
    run_campaign,
    run_sweep,
    sample_fault_set,
)
from repro.sim.chip import ChipUnderTest
from repro.sim.diagnosis import DiagnosisReport, FaultDictionary, iter_fault_sets
from repro.sim.seeding import mix_seed
from repro.sim.faults import (
    ChannelBlocked,
    ControlLeak,
    Fault,
    IntermittentStuckAt,
    StuckAt0,
    StuckAt1,
    control_leak_faults,
    fault_universe,
    untestable_leak_pairs,
    faults_compatible,
    faulty_valves,
    stuck_at_faults,
)
from repro.sim.kernel import (
    BatchEvaluator,
    CompiledFaultSet,
    ReachabilityKernel,
    SinkCoverageError,
)
from repro.sim.pressure import PressureSimulator
from repro.sim.tester import Tester, TestRunResult, VectorOutcome

__all__ = [
    "CampaignResult",
    "merge_shards",
    "run_campaign",
    "run_sweep",
    "sample_fault_set",
    "ChipUnderTest",
    "DiagnosisReport",
    "FaultDictionary",
    "iter_fault_sets",
    "mix_seed",
    "ChannelBlocked",
    "ControlLeak",
    "Fault",
    "IntermittentStuckAt",
    "StuckAt0",
    "StuckAt1",
    "control_leak_faults",
    "fault_universe",
    "untestable_leak_pairs",
    "faults_compatible",
    "faulty_valves",
    "stuck_at_faults",
    "BatchEvaluator",
    "CompiledFaultSet",
    "ReachabilityKernel",
    "SinkCoverageError",
    "PressureSimulator",
    "Tester",
    "TestRunResult",
    "VectorOutcome",
]
