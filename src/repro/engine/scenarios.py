"""Fault-scenario registry: pluggable workloads beyond the paper's models.

The paper's evaluation (section IV) injects the three deterministic fault
kinds of Fig 3.  Real silicone ages and clogs in messier ways, so the
engine treats the *workload* — which fault space chips are drawn from — as
a pluggable :class:`FaultScenario`.  A scenario supplies two things:

* ``universe(fpva)`` — the finite candidate fault list, which doubles as
  the hypothesis space for dictionary/adaptive diagnosis;
* ``sample(universe, rng, num_faults)`` — how a random defective chip is
  drawn for injection campaigns.

Four scenarios ship registered:

========== =============================================================
stuck-at   the paper's models (SA0, SA1, control-layer leaks)
intermittent marginal seats that misbehave on ~half of the vectors
blockage   debris obstructing flow edges (valves *and* permanent channels)
mixed      cocktails drawn from all of the above
========== =============================================================

Register custom scenarios with :func:`register_scenario`; everything in
``sim`` (campaigns, dictionaries) and the CLI resolves them by name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.fpva.array import FPVA
from repro.sim.campaign import sample_fault_set
from repro.sim.faults import (
    ChannelBlocked,
    Fault,
    IntermittentStuckAt,
    fault_universe,
)


@runtime_checkable
class FaultScenario(Protocol):
    """The scenario contract consumed by campaigns and diagnosis."""

    name: str
    description: str

    def universe(self, fpva: FPVA) -> list[Fault]:
        """All candidate faults this scenario can inject on ``fpva``."""
        ...

    def sample(
        self, universe: Sequence[Fault], rng: random.Random, num_faults: int
    ) -> tuple[Fault, ...]:
        """Draw one defective chip's fault set from ``universe``."""
        ...


@dataclass(frozen=True)
class StuckAtScenario:
    """The paper's fault space: stuck-at valves plus control-layer leaks."""

    name: str = "stuck-at"
    description: str = "SA0/SA1 valves and control-leak pairs (paper, Fig 3)"
    include_control_leaks: bool = True

    def universe(self, fpva: FPVA) -> list[Fault]:
        return fault_universe(
            fpva, include_control_leaks=self.include_control_leaks
        )

    def sample(self, universe, rng, num_faults):
        return sample_fault_set(universe, num_faults, rng)


@dataclass(frozen=True)
class IntermittentScenario:
    """Marginal valve seats that fail on a fraction of actuations.

    Firing is a deterministic keyed hash of the applied vector (see
    :class:`repro.sim.faults.IntermittentStuckAt`), so chips remain
    diagnosable: behaviour depends only on *which* vector is applied.
    """

    name: str = "intermittent"
    description: str = "probabilistic stuck-open/stuck-closed valve seats"
    rate: float = 0.5

    def universe(self, fpva: FPVA) -> list[Fault]:
        out: list[Fault] = []
        for valve in fpva.valves:
            out.append(IntermittentStuckAt(valve, stuck_open=True, rate=self.rate))
            out.append(IntermittentStuckAt(valve, stuck_open=False, rate=self.rate))
        return out

    def sample(self, universe, rng, num_faults):
        return sample_fault_set(universe, num_faults, rng)


@dataclass(frozen=True)
class BlockageScenario:
    """Debris obstructing flow edges.

    Unlike stuck-at-0, a blockage can hit a *permanent transport channel*
    — an edge the paper's fault model treats as unconditionally open — so
    this scenario exercises chip behaviours no stuck-at cocktail can.
    """

    name: str = "blockage"
    description: str = "obstructed flow edges, including permanent channels"

    def universe(self, fpva: FPVA) -> list[Fault]:
        return [ChannelBlocked(edge) for edge in fpva.flow_edges]

    def sample(self, universe, rng, num_faults):
        return sample_fault_set(universe, num_faults, rng)


@dataclass(frozen=True)
class MixedScenario:
    """Multi-model cocktails: every registered fault kind in one chip."""

    name: str = "mixed"
    description: str = "cocktails of stuck-at, leak, intermittent and blockage"
    include_control_leaks: bool = True
    intermittent_rate: float = 0.5

    def universe(self, fpva: FPVA) -> list[Fault]:
        out = fault_universe(
            fpva, include_control_leaks=self.include_control_leaks
        )
        out.extend(
            IntermittentScenario(rate=self.intermittent_rate).universe(fpva)
        )
        out.extend(BlockageScenario().universe(fpva))
        return out

    def sample(self, universe, rng, num_faults):
        return sample_fault_set(universe, num_faults, rng)


# repro: ignore[R7] -- scenario registry: filled by register_scenario() at import time, read-only afterwards, identical in every worker
_REGISTRY: dict[str, FaultScenario] = {}


def register_scenario(scenario: FaultScenario, replace: bool = False) -> FaultScenario:
    """Add a scenario to the global registry (returns it for chaining)."""
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> FaultScenario:
    """Look a scenario up by name; raises with the available names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def iter_scenarios() -> list[FaultScenario]:
    return [_REGISTRY[name] for name in scenario_names()]


register_scenario(StuckAtScenario())
register_scenario(IntermittentScenario())
register_scenario(BlockageScenario())
register_scenario(MixedScenario())
