"""Adaptive diagnosis, fault scenarios and parallel campaign orchestration.

The three pillars on top of the ``sim`` substrate:

* :mod:`repro.engine.adaptive` — entropy-guided sequential diagnosis that
  matches the full-suite dictionary verdict in a fraction of the vectors;
* :mod:`repro.engine.scenarios` — the pluggable fault-workload registry
  (stuck-at, intermittent, blockage, mixed — and user-registered ones);
* :mod:`repro.engine.parallel` — sharded process-pool campaign/sweep
  runners whose results are independent of the worker count.
"""

from repro.engine.adaptive import (
    AdaptiveDiagnoser,
    AdaptiveDiagnosisResult,
    AdaptiveStep,
    adaptive_diagnose,
)
from repro.engine.parallel import (
    SHARD_TRIALS,
    run_campaign,
    run_sweep,
)
from repro.engine.scenarios import (
    BlockageScenario,
    FaultScenario,
    IntermittentScenario,
    MixedScenario,
    StuckAtScenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "AdaptiveDiagnoser",
    "AdaptiveDiagnosisResult",
    "AdaptiveStep",
    "adaptive_diagnose",
    "SHARD_TRIALS",
    "run_campaign",
    "run_sweep",
    "BlockageScenario",
    "FaultScenario",
    "IntermittentScenario",
    "MixedScenario",
    "StuckAtScenario",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
]
