"""Sharded, process-parallel fault-injection campaigns.

The section IV experiment is embarrassingly parallel: trials are
independent chips.  The runner splits a campaign into fixed-size logical
shards, seeds each shard's RNG by mixing (seed, fault count, shard index)
through the shared splitmix64 finalizer (:mod:`repro.sim.seeding`) — never
by worker identity — and merges shard results in shard order.  Because the
shard structure is a function of the *trial count* alone, the aggregated
:class:`CampaignResult` is bit-identical whatever ``workers`` is; a pool
only changes wall-clock.

The array is compiled into a
:class:`~repro.sim.kernel.ReachabilityKernel` **once** per campaign.  By
default the kernel rides to every shard pickled inside the payload; with
``cache_dir`` set it is persisted through the
:class:`~repro.store.KernelStore` instead and the payload carries only the
artifact *path* — each worker process loads the flat arrays once and
memoizes them across its shards, so wide sweeps stop serializing a kernel
per task.  Scenario objects and arrays ride to the workers via pickling,
so custom scenarios must be defined at module top level (the registered
ones are).

With ``journal_dir=`` set, the *identical* shard structure runs through
the campaign fabric (:mod:`repro.fabric`) instead of a transient pool:
every shard is a content-addressed descriptor, completed shards publish
atomically into the journal, and a killed run resumes from the last
published shard — with any worker count, since the merge reads published
shards in canonical order.  The no-journal path remains the in-memory
fast case.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.campaign import (
    CampaignResult,
    merge_shards,
    run_campaign as _run_serial,
)
from repro.sim.kernel import ReachabilityKernel
from repro.sim.seeding import mix_seed as _mix_seed

#: Trials per logical shard.  Small enough that modest campaigns still fan
#: out, large enough that per-task pickling stays negligible.
SHARD_TRIALS = 50

#: Per-process kernel memo for path-shipped payloads: worker processes
#: survive across shards, so each loads a given artifact exactly once.
# repro: ignore[R7] -- deliberate per-process cache: populated only inside a worker, keyed by artifact path, never shared across processes
_KERNEL_MEMO: dict[str, ReachabilityKernel] = {}

#: Per-process session memo for path-shipped payloads: shards carrying the
#: same artifact path share one ExecutionContext, so evaluator scenario
#: pools (and any dictionary warm state) persist across a worker's shards.
# repro: ignore[R7] -- deliberate per-process cache: populated only inside a worker, keyed by (artifact path, backend tier), never shared across processes
_CONTEXT_MEMO: dict = {}


def _resolve_shipping(fpva, backend: str | None, cache_dir, context):
    """Normalize (legacy kwargs | context) to
    ``(backend, kernel_spec, kernel_backend)``.

    The kernel spec is what rides in shard payloads: ``None`` for the
    legacy backend, the compiled kernel object without a cache, or the
    persisted artifact's path (a string) with one.  ``kernel_backend`` is
    the propagation-tier *name* — the stored artifact is backend-agnostic,
    so each worker re-attaches the tier to its memoized kernel (a no-op
    after the first shard).  A context supplies its session kernel, store
    and tier; the pre-context ``backend=``/``cache_dir=`` keywords remain
    as deprecation shims for one release and warn when passed.
    """
    if context is not None:
        if backend is not None or cache_dir is not None:
            raise ValueError(
                "pass either context= or the legacy backend=/cache_dir= "
                "arguments, not both"
            )
        from repro.context import ExecutionContext

        context = ExecutionContext.resolve(context, fpva)
        return context.shipping_spec()
    kernel_backend = None
    if backend is not None:
        from repro.sim.backends import resolve_legacy_engine

        engine, kernel_backend = resolve_legacy_engine(backend, "sweep")
        if engine == "object":
            return "legacy", None, None
    if cache_dir is None:
        # repro: ignore[R3] -- legacy shipping shim: pre-context callers with no store get a pickled kernel, by design
        return "kernel", ReachabilityKernel(fpva), kernel_backend
    from repro.store import ArtifactStore

    store = ArtifactStore(cache_dir)
    if not store.kernels.has(fpva):
        # repro: ignore[R3] -- legacy shipping shim: seeds the store for cache_dir= callers that bypass ExecutionContext
        store.kernels.save(ReachabilityKernel(fpva))
    return "kernel", str(store.kernels.path_for(fpva)), kernel_backend


def _resolve_kernel(fpva, kernel):
    """Materialize a payload's kernel spec inside the worker.

    Path-shipped kernels are loaded once per process and reused; the
    memoized kernel's own (unpickled) array object is returned alongside so
    the simulator's compiled-for-this-array identity check holds across
    shards that arrived in different payloads.
    """
    if not isinstance(kernel, str):
        return fpva, kernel
    cached = _KERNEL_MEMO.get(kernel)
    if cached is None:
        from pathlib import Path

        from repro.store import ArtifactCorruptionError, KernelStore

        try:
            cached = KernelStore.load_file(fpva, kernel)
        except ArtifactCorruptionError as error:
            # A corrupt shipped artifact must not poison every shard this
            # worker runs: quarantine it and recompile from the array —
            # get_or_compile republishes, so later workers warm-load the
            # healed artifact instead of re-paying the compile.
            store = KernelStore(Path(kernel).parent)
            store.heal(fpva, error)
            cached = store.get_or_compile(fpva)
        _KERNEL_MEMO[kernel] = cached
    return cached.fpva, cached


def _shard_context(fpva, backend, kernel, kernel_backend):
    """The session a shard runs under, memoized for path-shipped kernels.

    Shards whose payloads name the same persisted kernel artifact share
    one :class:`~repro.context.ExecutionContext` per worker process, so
    the session's evaluator scenario pools survive across shards instead
    of re-deduplicating per task.  Safe for bit-identity: shard results
    are a pure function of the payload's explicit seed (``run_campaign``
    never consults the context's own seed).  Object-shipped kernels (no
    store) arrive as a fresh pickled copy per payload and keep a fresh
    context, exactly as before.
    """
    from repro.context import ExecutionContext

    if backend == "legacy":
        return ExecutionContext(fpva, engine="object")
    if isinstance(kernel, str):
        key = (kernel, kernel_backend)
        context = _CONTEXT_MEMO.get(key)
        if context is None:
            fpva, resolved = _resolve_kernel(fpva, kernel)
            context = _CONTEXT_MEMO[key] = ExecutionContext(
                fpva, kernel=resolved, kernel_backend=kernel_backend
            )
        return context
    fpva, resolved = _resolve_kernel(fpva, kernel)
    return ExecutionContext(fpva, kernel=resolved, kernel_backend=kernel_backend)


def _run_shard(payload) -> CampaignResult:
    (fpva, vectors, num_faults, trials, shard_seed, include_control_leaks,
     keep_undetected, scenario, backend, kernel, kernel_backend) = payload
    shard_context = _shard_context(fpva, backend, kernel, kernel_backend)
    return _run_serial(
        shard_context.fpva,
        vectors,
        num_faults=num_faults,
        trials=trials,
        seed=shard_seed,
        include_control_leaks=include_control_leaks,
        keep_undetected=keep_undetected,
        scenario=scenario,
        context=shard_context,
    )


def _shard_payloads(
    fpva,
    vectors,
    num_faults,
    trials,
    seed,
    include_control_leaks,
    keep_undetected,
    scenario,
    shard_trials,
    backend,
    kernel,
    kernel_backend,
):
    payloads = []
    shard = 0
    remaining = trials
    while remaining > 0:
        size = min(shard_trials, remaining)
        payloads.append(
            (
                fpva,
                vectors,
                num_faults,
                size,
                _mix_seed(seed, num_faults, shard),
                include_control_leaks,
                keep_undetected,
                scenario,
                backend,
                kernel,
                kernel_backend,
            )
        )
        remaining -= size
        shard += 1
    return payloads


def _merge(
    num_faults: int, shards: Sequence[CampaignResult], keep_undetected: int
) -> CampaignResult:
    """Merge shard results given *in shard order*.

    Delegates to :func:`repro.sim.campaign.merge_shards`, which sorts
    example candidates by campaign-global ``(shard, trial)`` before
    truncating to ``keep_undetected`` — the selection is therefore a pure
    function of shard contents, never of arrival or resume order (the
    pre-fabric version took examples first-come, which only happened to
    be deterministic because this runner always merged in shard order).
    """
    return merge_shards(num_faults, list(enumerate(shards)), keep_undetected)


def _run_journaled(
    fpva,
    vectors,
    fault_counts,
    trials,
    seed,
    include_control_leaks,
    keep_undetected,
    scenario,
    shard_trials,
    mode,
    kernel,
    kernel_backend,
    workers,
    journal_dir,
    resume,
    scheduler,
    max_attempts=None,
):
    """The fabric path shared by the journaled campaign and sweep."""
    from repro.fabric import CampaignSpec, run_journaled_sweep

    spec = CampaignSpec(
        fpva=fpva,
        vectors=tuple(vectors),
        fault_counts=tuple(fault_counts),
        trials=trials,
        seed=seed,
        include_control_leaks=include_control_leaks,
        keep_undetected=keep_undetected,
        scenario=scenario,
        shard_trials=shard_trials,
    )
    extra = {} if max_attempts is None else {"max_attempts": max_attempts}
    results, _ = run_journaled_sweep(
        spec,
        journal_dir,
        workers=workers,
        scheduler=scheduler,
        resume=resume,
        mode=mode,
        kernel=kernel,
        kernel_backend=kernel_backend,
        **extra,
    )
    return results


def run_campaign(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    num_faults: int,
    trials: int,
    seed: int = 0,
    workers: int = 1,
    include_control_leaks: bool = True,
    keep_undetected: int = 10,
    scenario=None,
    shard_trials: int = SHARD_TRIALS,
    backend: str | None = None,
    cache_dir: str | os.PathLike | None = None,
    context=None,
    journal_dir: str | os.PathLike | None = None,
    resume: bool = False,
    scheduler: str = "greedy",
) -> CampaignResult:
    """Sharded campaign; result is independent of ``workers`` *and* of
    whether the kernel ships by artifact path or by pickle.  ``context``
    supplies the session kernel/store/backend tier; the ``backend=``/
    ``cache_dir=`` keywords remain as deprecation shims for one release.

    ``journal_dir`` reroutes the identical shard structure through the
    campaign fabric (:mod:`repro.fabric`): shards publish durably as they
    finish, a killed run resumes from the last published shard, and the
    shard space is content-addressed — a sweep touching this ``num_faults``
    against the same (suite, scenario, seed) reuses these shards.  The
    no-journal path stays the in-memory fast case.
    """
    backend, kernel, kernel_backend = _resolve_shipping(
        fpva, backend, cache_dir, context
    )
    if journal_dir is not None:
        return _run_journaled(
            fpva, vectors, (num_faults,), trials, seed,
            include_control_leaks, keep_undetected, scenario, shard_trials,
            backend, kernel, kernel_backend, workers, journal_dir, resume,
            scheduler,
        )[num_faults]
    payloads = _shard_payloads(
        fpva,
        vectors,
        num_faults,
        trials,
        seed,
        include_control_leaks,
        keep_undetected,
        scenario,
        shard_trials,
        backend,
        kernel,
        kernel_backend,
    )
    if workers <= 1 or len(payloads) <= 1:
        shards = [_run_shard(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            shards = list(pool.map(_run_shard, payloads))
    return _merge(num_faults, shards, keep_undetected)


def run_sweep(
    fpva: FPVA,
    vectors: Sequence[TestVector],
    fault_counts: Sequence[int] = (1, 2, 3, 4, 5),
    trials: int = 200,
    seed: int = 0,
    workers: int = 1,
    include_control_leaks: bool = True,
    keep_undetected: int = 10,
    scenario=None,
    shard_trials: int = SHARD_TRIALS,
    backend: str | None = None,
    cache_dir: str | os.PathLike | None = None,
    context=None,
    journal_dir: str | os.PathLike | None = None,
    resume: bool = False,
    scheduler: str = "greedy",
) -> dict[int, CampaignResult]:
    """The paper's k-faults sweep, with all (k, shard) tasks in one pool.

    Flattening the sweep before fanning out keeps every worker busy even
    when individual fault counts have few shards.  Per-(k, shard) streams
    come from ``mix_seed(seed, k, shard)`` directly — the fault count is
    mixed in by the finalizer, so no ``seed + k`` arithmetic (whose streams
    collide across sweeps) ever touches the seed.

    ``journal_dir`` reroutes the identical shard structure through the
    campaign fabric: every completed shard publishes atomically into the
    journal, a killed sweep resumes from the last published shard (with
    any worker count — the merge is bit-identical regardless), and
    re-running a finished sweep simulates nothing.  ``scheduler`` picks
    the shard-to-worker assignment (``"greedy"`` cost model or ``"ilp"``
    makespan solve over measured worker profiles); ``resume=True``
    additionally insists the journal already exists.
    """
    backend, kernel, kernel_backend = _resolve_shipping(
        fpva, backend, cache_dir, context
    )
    if journal_dir is not None:
        return _run_journaled(
            fpva, vectors, tuple(fault_counts), trials, seed,
            include_control_leaks, keep_undetected, scenario, shard_trials,
            backend, kernel, kernel_backend, workers, journal_dir, resume,
            scheduler,
        )
    tagged: list[tuple[int, tuple]] = []
    for k in fault_counts:
        for payload in _shard_payloads(
            fpva,
            vectors,
            k,
            trials,
            seed,
            include_control_leaks,
            keep_undetected,
            scenario,
            shard_trials,
            backend,
            kernel,
            kernel_backend,
        ):
            tagged.append((k, payload))
    if workers <= 1 or len(tagged) <= 1:
        shard_results = [(k, _run_shard(p)) for k, p in tagged]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = pool.map(_run_shard, [p for _, p in tagged])
            shard_results = [(k, r) for (k, _), r in zip(tagged, results)]
    by_k: dict[int, list[CampaignResult]] = {k: [] for k in fault_counts}
    for k, shard in shard_results:
        by_k[k].append(shard)
    return {
        k: _merge(k, shards, keep_undetected) for k, shards in by_k.items()
    }
