"""Adaptive sequential diagnosis: entropy-guided vector scheduling.

The full-suite path applies every generated vector and looks the complete
syndrome up in a :class:`~repro.sim.diagnosis.FaultDictionary`.  A real
tester does not need to: after each observation, whole regions of the
hypothesis space become inconsistent and further vectors that cannot
separate the survivors carry no information.  This module schedules
vectors one at a time, greedily maximizing the Shannon entropy of the
partition each unapplied vector induces on the surviving syndrome
classes, applies the winner via :meth:`Tester.apply`, prunes, and stops
as soon as the diagnosis is unique or the residual ambiguity is
irreducible (one syndrome class left — its members are indistinguishable
under the *whole* suite, so no further vector can help).

Guarantee: for any chip whose behaviour matches one of the dictionary's
hypotheses (including the fault-free chip), the returned
:class:`DiagnosisReport` — syndrome and candidate list — is identical to
what :meth:`FaultDictionary.diagnose_chip` produces from the full suite,
in far fewer applied vectors.  Chips *outside* the hypothesis space get a
best-effort verdict: if the observations contradict every hypothesis the
candidate list is empty (as with the full suite), but an off-model chip
that mimics a modelled fault on every applied vector is reported as that
fault — the same conclusion a tester working under the fault-model
assumption would reach.  Either way every returned candidate is
consistent with every outcome actually observed.

Everything here needs only ``Tester.apply``; the compiled reachability
kernel (bitmask ``reach`` in :mod:`repro.sim.kernel`) accelerates the
underlying simulation below that API, exactly as this hook anticipated —
scheduling additionally interns per-vector signatures to small integer
ids at build so ``_best_split`` buckets on ints instead of hashing
tuples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.chip import ChipUnderTest
from repro.sim.diagnosis import DiagnosisReport, FaultDictionary, Syndrome
from repro.sim.faults import Fault
from repro.sim.tester import Tester, VectorOutcome

#: Observation signature: the canonical hashable form of a meter readout.
Signature = tuple


def _signature(observed: dict) -> Signature:
    return tuple(sorted(observed.items()))


@dataclass
class _Hypothesis:
    """One syndrome equivalence class (or the fault-free hypothesis)."""

    syndrome: Syndrome
    fault_sets: list[tuple[Fault, ...]]
    signatures: tuple[Signature, ...]  # predicted readout per vector index
    #: Per-vector signature interned to a small int (see AdaptiveDiagnoser:
    #: ids are assigned per vector in hypothesis order, so bucketing and
    #: survivor filtering compare ints instead of hashing tuples).
    sig_ids: tuple[int, ...] = ()

    @property
    def weight(self) -> int:
        """Prior mass: how many concrete fault sets the class contains."""
        return max(1, len(self.fault_sets))


@dataclass
class AdaptiveStep:
    """One scheduled application, for tracing/benchmarking."""

    vector_name: str
    entropy_bits: float
    hypotheses_before: int
    hypotheses_after: int


@dataclass
class AdaptiveDiagnosisResult:
    """Outcome of one adaptive session."""

    report: DiagnosisReport
    outcomes: list[VectorOutcome] = field(default_factory=list)
    steps: list[AdaptiveStep] = field(default_factory=list)
    total_vectors: int = 0
    exhausted_budget: bool = False

    @property
    def num_applied(self) -> int:
        return len(self.outcomes)

    @property
    def saved_fraction(self) -> float:
        """Fraction of the full suite this session did *not* apply."""
        if not self.total_vectors:
            return 0.0
        return 1.0 - self.num_applied / self.total_vectors


class AdaptiveDiagnoser:
    """Schedules vectors by information gain over a fault dictionary.

    Build once per (array, suite) pair — construction derives each
    syndrome class's predicted readout for every vector from the
    dictionary's stored syndromes, with no extra simulation — then call
    :meth:`diagnose` per chip.
    """

    def __init__(self, dictionary: FaultDictionary, context=None):
        self.dictionary = dictionary
        self.vectors = list(dictionary.vectors)
        if context is not None:
            from repro.context import ExecutionContext

            context = ExecutionContext.resolve(context, dictionary.fpva)
            self.tester: Tester = context.tester
        else:
            self.tester = dictionary.tester
        expected = tuple(_signature(dict(v.expected)) for v in self.vectors)
        name_to_index = {v.name: i for i, v in enumerate(self.vectors)}

        # The fault-free hypothesis: every vector reads as expected.  It
        # anchors the session for clean chips and is excluded from the
        # candidate list, mirroring the dictionary (whose table only holds
        # detectable — i.e. somewhere-failing — fault sets).
        self._nominal = _Hypothesis(
            syndrome=(), fault_sets=[], signatures=expected
        )
        self._hypotheses: list[_Hypothesis] = [self._nominal]
        for syndrome, fault_sets in dictionary.syndrome_classes():
            signatures = list(expected)
            for vector_name, observed_items in syndrome:
                signatures[name_to_index[vector_name]] = tuple(observed_items)
            self._hypotheses.append(
                _Hypothesis(
                    syndrome=syndrome,
                    fault_sets=fault_sets,
                    signatures=tuple(signatures),
                )
            )

        # Intern per-vector signatures to small integer ids (assigned in
        # hypothesis order) so scheduling buckets on ints instead of
        # repeatedly hashing signature tuples.
        self._sig_maps: list[dict[Signature, int]] = [
            {} for _ in self.vectors
        ]
        for h in self._hypotheses:
            ids = []
            for vi, sig in enumerate(h.signatures):
                sig_map = self._sig_maps[vi]
                ids.append(sig_map.setdefault(sig, len(sig_map)))
            h.sig_ids = tuple(ids)

    # -- scheduling --------------------------------------------------------
    def _best_split(
        self, alive: Sequence[_Hypothesis], unapplied: Sequence[bool]
    ) -> tuple[int | None, float]:
        """The unapplied vector whose outcome partition has max entropy.

        ``unapplied`` is a per-vector-index flag sequence.  Candidates are
        scanned in ascending vector index and a challenger must be
        *strictly* better, so ties break to the lowest vector index —
        sessions replay identically across platforms and runs.
        """
        best_index: int | None = None
        best_entropy = 0.0
        total = float(sum(h.weight for h in alive))
        sig_maps = self._sig_maps
        for vi in range(len(self.vectors)):
            if not unapplied[vi]:
                continue
            counts = [0] * len(sig_maps[vi])
            for h in alive:
                counts[h.sig_ids[vi]] += h.weight
            # Bucket masses in sig-id order == first-occurrence order, so
            # the entropy sum is evaluated deterministically.
            distinct = 0
            entropy = 0.0
            for mass in counts:
                if not mass:
                    continue
                distinct += 1
                p = mass / total
                entropy -= p * math.log2(p)
            if distinct < 2:
                continue
            if entropy > best_entropy:
                best_entropy = entropy
                best_index = vi
        return best_index, best_entropy

    # -- diagnosis ---------------------------------------------------------
    def diagnose(
        self,
        chip: ChipUnderTest,
        max_vectors: int | None = None,
    ) -> AdaptiveDiagnosisResult:
        """Adaptively localize ``chip``'s faults.

        ``max_vectors`` optionally caps the session; a capped session can
        end with residual ambiguity across several syndrome classes, in
        which case the candidates are the union of all surviving classes.
        """
        outcomes: list[VectorOutcome] = []
        steps: list[AdaptiveStep] = []
        exhausted = False
        alive = list(self._hypotheses)
        # O(1) application marking (the previous list held indices and paid
        # an O(n) scan per `.remove`); _best_split skips applied flags.
        unapplied = bytearray([1]) * len(self.vectors)

        while len(alive) > 1:
            if max_vectors is not None and len(outcomes) >= max_vectors:
                exhausted = True
                break
            vi, entropy = self._best_split(alive, unapplied)
            if vi is None:
                # All survivors predict identical readouts for every
                # unapplied vector — only possible across distinct
                # syndromes when the budget already hid the separating
                # vector, or the suite cannot separate them at all.
                break
            outcome = self.tester.apply(chip, self.vectors[vi])
            observed_id = self._sig_maps[vi].get(_signature(outcome.observed))
            before = len(alive)
            if observed_id is None:
                alive = []  # readout no hypothesis predicts (off-model chip)
            else:
                alive = [h for h in alive if h.sig_ids[vi] == observed_id]
            unapplied[vi] = 0
            outcomes.append(outcome)
            steps.append(
                AdaptiveStep(
                    vector_name=self.vectors[vi].name,
                    entropy_bits=entropy,
                    hypotheses_before=before,
                    hypotheses_after=len(alive),
                )
            )
            if not alive:
                break

        return AdaptiveDiagnosisResult(
            report=self._conclude(alive, outcomes),
            outcomes=outcomes,
            steps=steps,
            total_vectors=len(self.vectors),
            exhausted_budget=exhausted,
        )

    def _conclude(
        self, alive: list[_Hypothesis], outcomes: list[VectorOutcome]
    ) -> DiagnosisReport:
        survivors = [h for h in alive if h is not self._nominal]
        if len(alive) == 1 and alive[0] is self._nominal:
            return DiagnosisReport(syndrome=(), candidates=[])
        if len(survivors) == 1 and len(alive) == 1:
            h = survivors[0]
            return DiagnosisReport(
                syndrome=h.syndrome, candidates=list(h.fault_sets)
            )
        # Chip outside the hypothesis space (no survivors) or a
        # budget-capped session (several survivors): report what is known.
        observed_syndrome = tuple(
            (o.vector.name, _signature(o.observed))
            for o in outcomes
            if not o.passed
        )
        candidates = [fs for h in survivors for fs in h.fault_sets]
        return DiagnosisReport(syndrome=observed_syndrome, candidates=candidates)


def adaptive_diagnose(
    dictionary: FaultDictionary,
    chip: ChipUnderTest,
    max_vectors: int | None = None,
) -> AdaptiveDiagnosisResult:
    """One-shot convenience wrapper around :class:`AdaptiveDiagnoser`."""
    return AdaptiveDiagnoser(dictionary).diagnose(chip, max_vectors=max_vectors)
