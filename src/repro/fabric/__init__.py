"""Resumable campaign fabric: durable, distributed fault-injection sweeps.

The section-IV experiments are million-trial sweeps; run through a plain
process pool they die with the process.  The fabric makes every
``(layout, suite, scenario, k, shard)`` task a content-addressed
descriptor (:mod:`repro.fabric.descriptors`), publishes completed shards
atomically into a :class:`ShardStore` (:mod:`repro.fabric.shards`, the
store subsystem's ``meta.json`` completeness-marker pattern), and tracks
pending/leased/done in a :class:`CampaignJournal`
(:mod:`repro.fabric.journal`) that any number of independent processes —
on any kernel backend tier — can drain concurrently.  A killed run
resumes from the last published shard; re-running a finished campaign is
a pure cache hit; and the merge (:func:`repro.sim.campaign.merge_shards`)
reads shards in canonical order, so the aggregate is bit-identical to
the uninterrupted ``workers=1`` run whatever happened along the way.

Shard-to-worker assignment is a pluggable scheduler seam
(:mod:`repro.fabric.scheduler`): a greedy LPT cost model by default, an
exact ILP makespan solve over measured per-worker throughput profiles on
request — advisory only, the lease protocol owns correctness.

Supervision (:mod:`repro.fabric.supervision`, :mod:`repro.fabric.retry`)
bounds what crashes *cost*: durable per-shard attempt counts (burned at
claim time, so SIGKILLed attempts count), bounded retries with
deterministic-jitter exponential backoff, heartbeat beacons that
distinguish hung workers from slow ones, and poison quarantine with a
diagnostic record once a shard's budget is gone.  Published artifacts
carry content checksums; one that fails verification at merge time is
quarantined out of the store and healed by re-simulation
(:meth:`CampaignJournal.heal_artifact`), so corrupt bytes never reach a
merged result.

Entry points: :func:`run_journaled_sweep` here, or ``journal_dir=`` on
:func:`repro.engine.run_sweep`/:func:`repro.engine.run_campaign` and
``--journal-dir/--resume`` on the CLI ``campaign`` command.
"""

from repro.fabric.descriptors import CampaignSpec, ShardDescriptor
from repro.fabric.journal import (
    DEFAULT_LEASE_TIMEOUT,
    DONE,
    LEASED,
    PENDING,
    QUARANTINED,
    CampaignJournal,
    JournalMismatch,
)
from repro.fabric.retry import DEFAULT_MAX_ATTEMPTS, RetryPolicy
from repro.fabric.runner import (
    DrainStats,
    ShardWorker,
    load_sweep,
    run_journaled_sweep,
)
from repro.fabric.scheduler import (
    GreedyScheduler,
    IlpScheduler,
    WorkerProfile,
    get_scheduler,
    measure_profiles,
    scheduler_names,
)
from repro.fabric.shards import ShardStore
from repro.fabric.supervision import SupervisionLedger

__all__ = [
    "CampaignJournal",
    "CampaignSpec",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_ATTEMPTS",
    "DONE",
    "DrainStats",
    "GreedyScheduler",
    "IlpScheduler",
    "JournalMismatch",
    "LEASED",
    "PENDING",
    "QUARANTINED",
    "RetryPolicy",
    "ShardDescriptor",
    "ShardStore",
    "ShardWorker",
    "SupervisionLedger",
    "WorkerProfile",
    "get_scheduler",
    "load_sweep",
    "measure_profiles",
    "run_journaled_sweep",
    "scheduler_names",
]
