"""Resumable campaign fabric: durable, distributed fault-injection sweeps.

The section-IV experiments are million-trial sweeps; run through a plain
process pool they die with the process.  The fabric makes every
``(layout, suite, scenario, k, shard)`` task a content-addressed
descriptor (:mod:`repro.fabric.descriptors`), publishes completed shards
atomically into a :class:`ShardStore` (:mod:`repro.fabric.shards`, the
store subsystem's ``meta.json`` completeness-marker pattern), and tracks
pending/leased/done in a :class:`CampaignJournal`
(:mod:`repro.fabric.journal`) that any number of independent processes —
on any kernel backend tier — can drain concurrently.  A killed run
resumes from the last published shard; re-running a finished campaign is
a pure cache hit; and the merge (:func:`repro.sim.campaign.merge_shards`)
reads shards in canonical order, so the aggregate is bit-identical to
the uninterrupted ``workers=1`` run whatever happened along the way.

Shard-to-worker assignment is a pluggable scheduler seam
(:mod:`repro.fabric.scheduler`): a greedy LPT cost model by default, an
exact ILP makespan solve over measured per-worker throughput profiles on
request — advisory only, the lease protocol owns correctness.

Entry points: :func:`run_journaled_sweep` here, or ``journal_dir=`` on
:func:`repro.engine.run_sweep`/:func:`repro.engine.run_campaign` and
``--journal-dir/--resume`` on the CLI ``campaign`` command.
"""

from repro.fabric.descriptors import CampaignSpec, ShardDescriptor
from repro.fabric.journal import (
    DEFAULT_LEASE_TIMEOUT,
    DONE,
    LEASED,
    PENDING,
    CampaignJournal,
    JournalMismatch,
)
from repro.fabric.runner import (
    DrainStats,
    ShardWorker,
    load_sweep,
    run_journaled_sweep,
)
from repro.fabric.scheduler import (
    GreedyScheduler,
    IlpScheduler,
    WorkerProfile,
    get_scheduler,
    measure_profiles,
    scheduler_names,
)
from repro.fabric.shards import ShardStore

__all__ = [
    "CampaignJournal",
    "CampaignSpec",
    "DEFAULT_LEASE_TIMEOUT",
    "DONE",
    "DrainStats",
    "GreedyScheduler",
    "IlpScheduler",
    "JournalMismatch",
    "LEASED",
    "PENDING",
    "ShardDescriptor",
    "ShardStore",
    "ShardWorker",
    "WorkerProfile",
    "get_scheduler",
    "load_sweep",
    "measure_profiles",
    "run_journaled_sweep",
    "scheduler_names",
]
