"""Atomic, content-addressed persistence for completed shard results.

One directory per shard digest, following the store's proven
completeness-marker pattern (:mod:`repro.store.dictionaries`)::

    <root>/<digest>/
        result.npz   # counts + undetected trial indices + pickled examples
        meta.json    # provenance (worker, elapsed, backend); written LAST

``meta.json`` is written last inside a temp directory that is atomically
renamed into place, so a crashed worker never leaves a half-written shard
addressable, and :meth:`ShardStore.has` doubles as the journal's *done*
predicate.  Publishing an already-published digest is a no-op that keeps
the first artifact: content addressing guarantees both are identical, so
a slow worker racing a reclaimed lease is harmless.

Undetected examples are fault-object tuples from arbitrary (possibly
user-registered) scenarios, so they ride as a pickle blob inside the
``.npz`` — the counts that drive merging stay plain integer arrays.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
import zipfile
from pathlib import Path

import numpy as np

from repro.sim.campaign import CampaignResult
from repro.store.digest import STORE_FORMAT_VERSION
from repro.store.integrity import (
    ArtifactCorruptionError,
    data_checksum,
    fsync_dir,
    load_json,
    quarantine,
    verify_file,
)

from repro.fabric.descriptors import ShardDescriptor


class ShardStore:
    """Content-addressed store of published :class:`CampaignResult` shards."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / digest

    def has(self, digest: str) -> bool:
        """Only *complete* artifacts count (``meta.json`` is written last)."""
        return (self.path_for(digest) / "meta.json").exists()

    def meta(self, digest: str) -> dict:
        """The completeness marker — a torn file types as corruption."""
        return load_json(self.path_for(digest) / "meta.json")

    def heal(self, digest: str, error: ArtifactCorruptionError) -> Path | None:
        """Quarantine one corrupt shard artifact directory.

        After the move :meth:`has` is false, so the shard re-enters its
        journal as *pending* — the drain loop re-simulates and republishes
        it, which is the entire heal path.  The corrupt evidence (and a
        ``.reason.json`` diagnostic) stays under ``quarantine/`` for the
        operator.
        """
        return quarantine(self.root, self.path_for(digest), error.reason)

    def publish(
        self,
        descriptor: ShardDescriptor,
        result: CampaignResult,
        *,
        worker: str = "",
        elapsed: float = 0.0,
        backend: str | None = None,
    ) -> Path:
        """Atomically publish one shard's result; idempotent per digest."""
        if result.num_faults != descriptor.num_faults or (
            result.trials != descriptor.trials
        ):
            raise ValueError(
                f"result (k={result.num_faults}, trials={result.trials}) does "
                f"not match descriptor (k={descriptor.num_faults}, "
                f"trials={descriptor.trials})"
            )
        final = self.path_for(descriptor.digest)
        if self.has(descriptor.digest):
            return final
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(f"{final.name}.tmp-{os.getpid()}")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            examples = pickle.dumps(list(result.undetected_examples))
            buffer = io.BytesIO()
            np.savez(
                buffer,
                counts=np.array(
                    [result.num_faults, result.trials, result.detected],
                    dtype=np.int64,
                ),
                undetected_trials=np.array(
                    result.undetected_trials, dtype=np.int64
                ),
                examples=np.frombuffer(examples, dtype=np.uint8),
            )
            payload = buffer.getvalue()
            with open(tmp / "result.npz", "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            meta = {
                "version": STORE_FORMAT_VERSION,
                "digest": descriptor.digest,
                "num_faults": descriptor.num_faults,
                "shard": descriptor.shard,
                "trials": descriptor.trials,
                "detected": result.detected,
                "worker": worker,
                "elapsed": float(elapsed),
                "backend": backend,
                "checksum": data_checksum(payload),
            }
            with open(tmp / "meta.json", "w") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            # Payloads and marker are on stable storage before the rename
            # makes them addressable — a power loss cannot publish an
            # empty shard behind the completeness marker.
            fsync_dir(tmp)
            try:
                os.replace(tmp, final)
            except OSError:
                # A concurrent publish won the rename race; its artifact
                # is identical by content addressing, so keep it.
                if not (final / "meta.json").exists():
                    raise
                shutil.rmtree(tmp)
            fsync_dir(self.root)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path cleanup
                shutil.rmtree(tmp)
        return final

    def load(self, digest: str) -> CampaignResult:
        """Materialize one published shard, bit-identical to the publish.

        Verifies the ``result.npz`` checksum recorded at publish against
        exactly the bytes parsed; a mismatch, a torn ``meta.json`` or an
        unparseable payload raises :exc:`ArtifactCorruptionError` — the
        journal runner converts that into quarantine-and-resimulate
        rather than ever merging a corrupt shard.
        """
        directory = self.path_for(digest)
        meta = self.meta(digest)
        if meta["version"] != STORE_FORMAT_VERSION:
            raise ValueError(
                f"shard artifact {directory} has an unsupported format version"
            )
        payload = verify_file(directory / "result.npz", meta.get("checksum"))
        try:
            with np.load(io.BytesIO(payload)) as data:
                num_faults, trials, detected = (int(v) for v in data["counts"])
                undetected_trials = [int(t) for t in data["undetected_trials"]]
                examples = pickle.loads(data["examples"].tobytes())
        except (
            zipfile.BadZipFile,
            KeyError,
            OSError,
            pickle.UnpicklingError,
            EOFError,
        ) as exc:
            raise ArtifactCorruptionError(
                directory / "result.npz", f"unparseable payload: {exc}"
            )
        return CampaignResult(
            num_faults=num_faults,
            trials=trials,
            detected=detected,
            undetected_examples=examples,
            undetected_trials=undetected_trials,
        )
