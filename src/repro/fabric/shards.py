"""Atomic, content-addressed persistence for completed shard results.

One directory per shard digest, following the store's proven
completeness-marker pattern (:mod:`repro.store.dictionaries`)::

    <root>/<digest>/
        result.npz   # counts + undetected trial indices + pickled examples
        meta.json    # provenance (worker, elapsed, backend); written LAST

``meta.json`` is written last inside a temp directory that is atomically
renamed into place, so a crashed worker never leaves a half-written shard
addressable, and :meth:`ShardStore.has` doubles as the journal's *done*
predicate.  Publishing an already-published digest is a no-op that keeps
the first artifact: content addressing guarantees both are identical, so
a slow worker racing a reclaimed lease is harmless.

Undetected examples are fault-object tuples from arbitrary (possibly
user-registered) scenarios, so they ride as a pickle blob inside the
``.npz`` — the counts that drive merging stay plain integer arrays.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from pathlib import Path

import numpy as np

from repro.sim.campaign import CampaignResult
from repro.store.digest import STORE_FORMAT_VERSION

from repro.fabric.descriptors import ShardDescriptor


class ShardStore:
    """Content-addressed store of published :class:`CampaignResult` shards."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        return self.root / digest

    def has(self, digest: str) -> bool:
        """Only *complete* artifacts count (``meta.json`` is written last)."""
        return (self.path_for(digest) / "meta.json").exists()

    def meta(self, digest: str) -> dict:
        with open(self.path_for(digest) / "meta.json") as fh:
            return json.load(fh)

    def publish(
        self,
        descriptor: ShardDescriptor,
        result: CampaignResult,
        *,
        worker: str = "",
        elapsed: float = 0.0,
        backend: str | None = None,
    ) -> Path:
        """Atomically publish one shard's result; idempotent per digest."""
        if result.num_faults != descriptor.num_faults or (
            result.trials != descriptor.trials
        ):
            raise ValueError(
                f"result (k={result.num_faults}, trials={result.trials}) does "
                f"not match descriptor (k={descriptor.num_faults}, "
                f"trials={descriptor.trials})"
            )
        final = self.path_for(descriptor.digest)
        if self.has(descriptor.digest):
            return final
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(f"{final.name}.tmp-{os.getpid()}")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        try:
            examples = pickle.dumps(list(result.undetected_examples))
            with open(tmp / "result.npz", "wb") as fh:
                np.savez(
                    fh,
                    counts=np.array(
                        [result.num_faults, result.trials, result.detected],
                        dtype=np.int64,
                    ),
                    undetected_trials=np.array(
                        result.undetected_trials, dtype=np.int64
                    ),
                    examples=np.frombuffer(examples, dtype=np.uint8),
                )
            meta = {
                "version": STORE_FORMAT_VERSION,
                "digest": descriptor.digest,
                "num_faults": descriptor.num_faults,
                "shard": descriptor.shard,
                "trials": descriptor.trials,
                "detected": result.detected,
                "worker": worker,
                "elapsed": float(elapsed),
                "backend": backend,
            }
            with open(tmp / "meta.json", "w") as fh:
                json.dump(meta, fh, indent=2, sort_keys=True)
            try:
                os.replace(tmp, final)
            except OSError:
                # A concurrent publish won the rename race; its artifact
                # is identical by content addressing, so keep it.
                if not (final / "meta.json").exists():
                    raise
                shutil.rmtree(tmp)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path cleanup
                shutil.rmtree(tmp)
        return final

    def load(self, digest: str) -> CampaignResult:
        """Materialize one published shard, bit-identical to the publish."""
        directory = self.path_for(digest)
        meta = self.meta(digest)
        if meta["version"] != STORE_FORMAT_VERSION:
            raise ValueError(
                f"shard artifact {directory} has an unsupported format version"
            )
        with np.load(directory / "result.npz") as data:
            num_faults, trials, detected = (int(v) for v in data["counts"])
            undetected_trials = [int(t) for t in data["undetected_trials"]]
            examples = pickle.loads(data["examples"].tobytes())
        return CampaignResult(
            num_faults=num_faults,
            trials=trials,
            detected=detected,
            undetected_examples=examples,
            undetected_trials=undetected_trials,
        )
