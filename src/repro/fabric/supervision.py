"""Shard supervision: durable attempt counts, poison quarantine, heartbeats.

The journal's lease protocol makes crashes *safe*; this ledger makes
them *diagnosable and bounded*.  Three durable record families live
alongside the journal's leases, all plain JSON files under the journal
root:

``attempts/<digest>.json``
    How many times the shard has been claimed for execution, plus the
    recorded failures.  The count is incremented **at claim time** (not
    at failure time), so a worker that is SIGKILLed — or wedges — mid
    shard still burns an attempt: a workload that reliably kills its
    worker converges on the poison threshold no matter how it kills.
    Increments happen while holding the shard's lease, so the
    read-modify-replace is single-writer by construction.

``quarantine/<digest>.poison.json``
    The diagnostic record of a poisoned shard: one whose attempt budget
    is exhausted.  A quarantined shard is skipped by every claim loop —
    never retried forever, never silently merged — until an operator
    (or the corruption healer) requeues it.  The same ``quarantine/``
    directory receives corrupt shard *artifacts* moved out of the store
    by :meth:`CampaignJournal.heal_artifact`, so one directory holds all
    the evidence.

``heartbeats/<instance>.json``
    Liveness beacons.  Each journal instance carries a unique id; its
    leases name that id and its workers re-beat at every drain-loop
    transition.  Lease staleness then distinguishes a *hung* worker
    (alive pid, stale heartbeat — reclaim) from a merely *slow* one
    (fresh heartbeat — leave alone even past the lease timeout), which
    neither the pid probe nor the claim-time timeout could see.

Everything takes the journal's injectable clock, so retry/poison/
heartbeat semantics are unit-testable without sleeping.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path
from typing import Callable

from repro.fabric.descriptors import ShardDescriptor
from repro.fabric.retry import DEFAULT_MAX_ATTEMPTS, RetryPolicy

#: Cap on per-shard failure records kept in the attempts ledger (the
#: budget is small, but a requeued shard keeps its history).
MAX_RECORDED_FAILURES = 20


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with open(tmp, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def _read_json(path: Path) -> dict | None:
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, OSError):  # pragma: no cover - defensive
        return None


class SupervisionLedger:
    """Durable attempt/quarantine/heartbeat records for one journal."""

    def __init__(self, root: str | os.PathLike, *, clock: Callable[[], float]) -> None:
        self.root = Path(root)
        self.attempts_dir = self.root / "attempts"
        self.quarantine_dir = self.root / "quarantine"
        self.heartbeats_dir = self.root / "heartbeats"
        self.clock = clock

    # -- attempt accounting --------------------------------------------------
    def _attempt_path(self, digest: str) -> Path:
        return self.attempts_dir / f"{digest}.json"

    def attempts(self, digest: str) -> int:
        """Durable claim count for one shard (0 when never claimed)."""
        record = _read_json(self._attempt_path(digest))
        return int(record.get("attempts", 0)) if record else 0

    def note_attempt(self, descriptor: ShardDescriptor, worker: str = "") -> int:
        """Record one claim-for-execution; returns the new attempt number.

        Called while holding the shard's lease — the lease serializes
        writers, which is what makes the read-modify-replace safe.
        """
        self.attempts_dir.mkdir(parents=True, exist_ok=True)
        path = self._attempt_path(descriptor.digest)
        record = _read_json(path) or {
            "digest": descriptor.digest,
            "num_faults": descriptor.num_faults,
            "shard": descriptor.shard,
            "attempts": 0,
            "failures": [],
        }
        record["attempts"] = int(record.get("attempts", 0)) + 1
        record["last_worker"] = worker
        record["last_claimed_at"] = self.clock()
        _atomic_write_json(path, record)
        return record["attempts"]

    def record_failure(
        self, descriptor: ShardDescriptor, error: BaseException, worker: str = ""
    ) -> int:
        """Append one failure diagnostic to the shard's attempt record."""
        self.attempts_dir.mkdir(parents=True, exist_ok=True)
        path = self._attempt_path(descriptor.digest)
        record = _read_json(path) or {
            "digest": descriptor.digest,
            "num_faults": descriptor.num_faults,
            "shard": descriptor.shard,
            "attempts": 0,
            "failures": [],
        }
        failures = list(record.get("failures", []))[-MAX_RECORDED_FAILURES + 1:]
        failures.append(
            {
                "worker": worker,
                "error": f"{type(error).__name__}: {error}",
                "at": self.clock(),
            }
        )
        record["failures"] = failures
        _atomic_write_json(path, record)
        return int(record.get("attempts", 0))

    def clear_attempts(self, digest: str) -> None:
        """Reset one shard's attempt budget (requeue housekeeping)."""
        try:
            self._attempt_path(digest).unlink()
        except FileNotFoundError:
            pass

    # -- poison quarantine ---------------------------------------------------
    def _poison_path(self, digest: str) -> Path:
        return self.quarantine_dir / f"{digest}.poison.json"

    def quarantine_shard(
        self,
        descriptor: ShardDescriptor,
        *,
        reason: str,
        attempts: int,
        worker: str = "",
    ) -> Path:
        """Write the poison diagnostic; the shard stops being claimable."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        record = {
            "digest": descriptor.digest,
            "num_faults": descriptor.num_faults,
            "shard": descriptor.shard,
            "trials": descriptor.trials,
            "seed": descriptor.seed,
            "attempts": attempts,
            "reason": reason,
            "worker": worker,
            "host": socket.gethostname(),
            "failures": (
                _read_json(self._attempt_path(descriptor.digest)) or {}
            ).get("failures", []),
            "quarantined_at": self.clock(),
        }
        path = self._poison_path(descriptor.digest)
        _atomic_write_json(path, record)
        return path

    def is_quarantined(self, digest: str) -> bool:
        return self._poison_path(digest).exists()

    def quarantined(self) -> list[dict]:
        """Every poison record, sorted by (k, shard) — the operator view."""
        if not self.quarantine_dir.is_dir():
            return []
        records = [
            record
            for path in sorted(self.quarantine_dir.glob("*.poison.json"))
            if (record := _read_json(path)) is not None
        ]
        records.sort(key=lambda r: (r.get("num_faults", 0), r.get("shard", 0)))
        return records

    def requeue(self, digest: str) -> bool:
        """Drop a poison record (and the attempt budget it exhausted).

        The shard re-enters the journal as *pending* — the operator's
        heal verb after fixing whatever made the workload lethal.
        Returns whether a record was actually removed.
        """
        self.clear_attempts(digest)
        try:
            self._poison_path(digest).unlink()
        except FileNotFoundError:
            return False
        return True

    # -- heartbeats ----------------------------------------------------------
    def _heartbeat_path(self, instance: str) -> Path:
        return self.heartbeats_dir / f"{instance}.json"

    def beat(self, instance: str, owner: str = "") -> None:
        """Refresh one journal instance's liveness beacon."""
        self.heartbeats_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            self._heartbeat_path(instance),
            {
                "instance": instance,
                "owner": owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "beat_at": self.clock(),
            },
        )

    def heartbeat_age(self, instance: str) -> float | None:
        """Seconds since the instance last beat, or ``None`` if it never has."""
        record = _read_json(self._heartbeat_path(instance))
        if not record or "beat_at" not in record:
            return None
        return self.clock() - float(record["beat_at"])


__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "MAX_RECORDED_FAILURES",
    "RetryPolicy",
    "SupervisionLedger",
]
