"""Bounded retries: exponential backoff with deterministic jitter.

One policy object serves every wait in the fabric — the supervision
loop's backoff between shard attempts and the runner's re-poll while
foreign processes hold fresh leases.  Three properties matter:

* **Bounded.**  ``max_attempts`` caps how often a failing unit of work
  is retried before the supervisor declares it poison; delays cap at
  ``max_delay`` so a long outage never produces hour-long sleeps.

* **Deterministic jitter.**  Retry storms are avoided by jitter, but the
  fabric's reproducibility story forbids RNG state: the jitter fraction
  is derived by mixing a caller-supplied integer key (typically the
  shard's content digest via :func:`repro.store.digest.digest_int`) with
  the attempt number through the splitmix64 finalizer — every host
  computes the same schedule for the same shard, and different shards
  de-synchronize.

* **Injectable time.**  ``sleep`` is passed at call time (the journal's
  ``clock=`` seam's sibling), so supervision tests run the whole retry
  schedule without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.sim.seeding import mix_seed

#: Attempts after which a repeatedly-failing shard is declared poison
#: and quarantined with a diagnostic record instead of retried forever.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule with deterministic jitter.

    ``delay(attempt, key)`` for attempt 1, 2, 3… is
    ``base * growth**(attempt-1)``, capped at ``max_delay``, then spread
    over ``[1 - jitter, 1]`` of itself by the key/attempt hash.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base: float = 0.05
    growth: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` tries have used up the retry budget."""
        return attempts >= self.max_attempts

    def delay(self, attempt: int, key: int = 0) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        raw = min(self.base * self.growth ** (attempt - 1), self.max_delay)
        if self.jitter <= 0:
            return raw
        # splitmix64 over (key, attempt): uniform in [0, 1), identical on
        # every host, distinct across shards.
        unit = (mix_seed(int(key), attempt) >> 11) / float(1 << 53)
        return raw * (1.0 - self.jitter * unit)

    def wait(
        self,
        attempt: int,
        key: int = 0,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> float:
        """Sleep out the backoff for ``attempt``; returns the delay used."""
        delay = self.delay(attempt, key)
        if delay > 0:
            sleep(delay)
        return delay


#: The runner's re-poll schedule while foreign leases are still fresh:
#: starts at the historic 0.1s poll interval and backs off to 2s, with
#: unbounded attempts (polling is not a failure path).
POLL_POLICY = RetryPolicy(
    max_attempts=0, base=0.1, growth=1.5, max_delay=2.0, jitter=0.25
)
