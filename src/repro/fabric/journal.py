"""The durable campaign journal: pending/leased/done over plain files.

Layout of one journal directory::

    <journal_dir>/
        campaign.json            # manifest: campaign digest + parameters
        shards/<digest>/         # ShardStore — *done* is "published here"
        leases/<digest>.json     # live claims (owner, pid, host, claimed_at)
        kernels/                 # optional KernelStore for path-shipping

A shard's state is never stored redundantly — it is *derived*:

========  ====================================================
done      its digest is published in the shard store
leased    a fresh lease file exists (and it is not done)
pending   neither
========  ====================================================

which is what makes every crash point safe: dying pre-claim changes
nothing; dying mid-simulate leaves a lease that goes stale and is
reclaimed; dying after the store publish but before the lease release
leaves a *done* shard under a dangling lease, and done always wins.

**Claim protocol.**  A claim atomically creates the lease file via
``os.link`` from a fully-written temp file — hard-link creation fails if
the name exists, so exactly one process wins, and a lease is never
observable half-written.  **Stale reclaim** removes a lease whose holder
is provably gone: its pid is dead on this host, its heartbeat beacon
(``heartbeats/<instance>.json``, refreshed at every drain-loop
transition) has gone stale — which catches a *hung* worker whose pid is
still alive — or, when the holder never beat, its ``claimed_at`` is
older than ``lease_timeout`` (the cross-host fallback).  A fresh
heartbeat conversely *protects* a slow worker's lease past the claim
timeout.  Reclaim itself races safely through ``os.replace`` onto a
per-process tombstone name — only one reclaimer's rename succeeds;
everyone then re-contends the fresh claim.

**Supervision** (:mod:`repro.fabric.supervision`) adds two more durable
record families: per-shard attempt counts (incremented at claim time, so
even a SIGKILLed attempt burns budget) and poison-quarantine diagnostics
— a shard whose budget is exhausted is *quarantined*: skipped by every
claim loop, reported in :class:`~repro.fabric.runner.DrainStats`, never
retried forever and never silently merged.  Corrupt published artifacts
are healed through :meth:`CampaignJournal.heal_artifact`: the artifact
moves to ``quarantine/`` and the shard re-enters as pending.

The clock is injectable (``clock=``) so stale-lease, heartbeat and
quarantine semantics are unit testable without sleeping.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Callable, Iterable

from repro.sim.campaign import CampaignResult
from repro.store.digest import STORE_FORMAT_VERSION
from repro.store.integrity import ArtifactCorruptionError, quarantine

from repro.fabric.descriptors import CampaignSpec, ShardDescriptor
from repro.fabric.shards import ShardStore
from repro.fabric.supervision import SupervisionLedger

#: Cross-host stale-lease fallback: a lease older than this is presumed
#: abandoned even when its holder's liveness cannot be probed.
DEFAULT_LEASE_TIMEOUT = 300.0

PENDING, LEASED, DONE, QUARANTINED = (
    "pending", "leased", "done", "quarantined",
)


class JournalMismatch(ValueError):
    """The journal directory holds a different campaign's manifest."""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


class CampaignJournal:
    """Tracks one campaign's shard states in a durable directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock: Callable[[], float] = time.time,
        owner: str | None = None,
    ) -> None:
        self.root = Path(root)
        self.store = ShardStore(self.root / "shards")
        self.leases = self.root / "leases"
        self.lease_timeout = float(lease_timeout)
        self.clock = clock
        self.owner = owner or f"{socket.gethostname()}:{os.getpid()}"
        #: Unique id of this journal *instance* — the heartbeat key its
        #: leases carry.  Never reused across processes or re-opens, so a
        #: resumed run can never refresh a dead predecessor's beacon.
        self.instance = uuid.uuid4().hex[:12]
        #: Durable attempt counts, poison quarantine and heartbeats.
        self.supervision = SupervisionLedger(self.root, clock=clock)
        #: Shards observed already-published by someone else (first
        #: observation per digest) — the resume cache-hit counter.
        self.cache_hits = 0
        #: Stale leases this journal reclaimed.
        self.reclaimed = 0
        #: Corrupt artifacts this journal quarantined out of its store.
        self.corrupt_quarantined = 0
        self._seen_done: set[str] = set()

    # -- manifest ------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "campaign.json"

    def manifest(self) -> dict | None:
        """The stored manifest, or ``None`` for a fresh directory."""
        try:
            with open(self.manifest_path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def ensure(self, spec: CampaignSpec) -> dict:
        """Bind this journal to ``spec``, creating the manifest on first use.

        A journal directory holds exactly one campaign; re-opening it with
        different parameters raises :class:`JournalMismatch` instead of
        silently mixing shard spaces.
        """
        manifest = self.manifest()
        if manifest is not None:
            if manifest.get("digest") != spec.digest:
                raise JournalMismatch(
                    f"journal {self.root} holds campaign "
                    f"{manifest.get('digest')!r}, not {spec.digest!r} — "
                    "use a fresh --journal-dir for a different campaign"
                )
            return manifest
        self.root.mkdir(parents=True, exist_ok=True)
        self.leases.mkdir(parents=True, exist_ok=True)
        manifest = {"version": STORE_FORMAT_VERSION, **spec.manifest()}
        tmp = self.manifest_path.with_name(f".campaign.json.tmp-{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.manifest_path)
        return manifest

    # -- state queries -------------------------------------------------------
    def done(self, descriptor: ShardDescriptor) -> bool:
        published = self.store.has(descriptor.digest)
        if published and descriptor.digest not in self._seen_done:
            self._seen_done.add(descriptor.digest)
            self.cache_hits += 1
        return published

    def state(self, descriptor: ShardDescriptor) -> str:
        if self.store.has(descriptor.digest):
            return DONE
        if self.supervision.is_quarantined(descriptor.digest):
            return QUARANTINED
        if self._lease_path(descriptor.digest).exists():
            return LEASED
        return PENDING

    def states(self, descriptors: Iterable[ShardDescriptor]) -> dict[str, str]:
        return {d.digest: self.state(d) for d in descriptors}

    # -- leases --------------------------------------------------------------
    def _lease_path(self, digest: str) -> Path:
        return self.leases / f"{digest}.json"

    def _try_acquire(self, digest: str) -> bool:
        """Atomically create the lease file; ``False`` if someone holds it."""
        self.leases.mkdir(parents=True, exist_ok=True)
        payload = {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "instance": self.instance,
            "claimed_at": self.clock(),
        }
        tmp = self.leases / f".{digest}.tmp-{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        try:
            os.link(tmp, self._lease_path(digest))
        except FileExistsError:
            return False
        finally:
            tmp.unlink()
        return True

    def _lease_stale(self, digest: str) -> bool:
        """Whether the current holder of ``digest`` is provably gone."""
        try:
            with open(self._lease_path(digest)) as fh:
                lease = json.load(fh)
        except FileNotFoundError:
            return False  # released meanwhile; re-contend via _try_acquire
        except (json.JSONDecodeError, OSError):  # pragma: no cover - defensive
            return True
        if (
            lease.get("host") == socket.gethostname()
            and isinstance(lease.get("pid"), int)
            and lease["pid"] != os.getpid()
            and not _pid_alive(lease["pid"])
        ):
            return True
        # A heartbeat beacon outranks the claim-time timeout both ways: a
        # stale beat marks a *hung* holder (alive pid, wedged drain loop)
        # stale immediately, and a fresh beat protects a slow-but-alive
        # holder's lease past the claim timeout.
        instance = lease.get("instance")
        if instance:
            age = self.supervision.heartbeat_age(instance)
            if age is not None:
                return age > self.lease_timeout
        claimed_at = lease.get("claimed_at", 0.0)
        return (self.clock() - claimed_at) > self.lease_timeout

    def _reclaim(self, digest: str) -> bool:
        """Remove a stale lease; ``True`` if *this* process did the removal."""
        tombstone = self.leases / f".{digest}.reclaim-{os.getpid()}"
        try:
            os.replace(self._lease_path(digest), tombstone)
        except FileNotFoundError:
            return False  # another reclaimer (or the holder) won
        tombstone.unlink()
        self.reclaimed += 1
        return True

    def release(self, descriptor: ShardDescriptor) -> None:
        """Drop a lease (the final step of a completed shard)."""
        try:
            self._lease_path(descriptor.digest).unlink()
        except FileNotFoundError:
            pass  # reclaimed from us, or crash-recovery housekeeping

    # -- supervision ---------------------------------------------------------
    def beat(self) -> None:
        """Refresh this instance's heartbeat (protects its live leases)."""
        self.supervision.beat(self.instance, owner=self.owner)

    def note_attempt(self, descriptor: ShardDescriptor, worker: str = "") -> int:
        """Durably burn one attempt for a claimed shard; the new count."""
        return self.supervision.note_attempt(descriptor, worker or self.owner)

    def attempts(self, digest: str) -> int:
        return self.supervision.attempts(digest)

    def record_failure(
        self, descriptor: ShardDescriptor, error: BaseException, worker: str = ""
    ) -> int:
        return self.supervision.record_failure(
            descriptor, error, worker or self.owner
        )

    def quarantine_shard(
        self,
        descriptor: ShardDescriptor,
        *,
        reason: str,
        attempts: int,
        worker: str = "",
    ) -> Path:
        """Park a poison shard with its diagnostic record."""
        return self.supervision.quarantine_shard(
            descriptor,
            reason=reason,
            attempts=attempts,
            worker=worker or self.owner,
        )

    def quarantined(self) -> list[dict]:
        return self.supervision.quarantined()

    def requeue(self, digest: str) -> bool:
        """Clear a poison record so the shard is claimable again."""
        return self.supervision.requeue(digest)

    def heal_artifact(
        self, descriptor: ShardDescriptor, error: ArtifactCorruptionError
    ) -> Path | None:
        """Quarantine one corrupt *published* shard artifact.

        The artifact directory moves into ``<root>/quarantine/`` with a
        ``.reason.json`` diagnostic; :meth:`done` is then false again, so
        the shard re-enters the journal as pending and heals by being
        re-simulated — the corrupt bytes are never merged.  The attempt
        budget is reset: corruption is a storage fault, not the
        workload's.
        """
        self._seen_done.discard(descriptor.digest)
        pen = quarantine(
            self.root,
            self.store.path_for(descriptor.digest),
            f"shard {descriptor.label}: {error.reason}",
        )
        if pen is not None:
            self.corrupt_quarantined += 1
        self.supervision.clear_attempts(descriptor.digest)
        return pen

    # -- the claim loop ------------------------------------------------------
    def claim(self, descriptors: Iterable[ShardDescriptor]) -> ShardDescriptor | None:
        """Claim the first claimable shard of ``descriptors``, or ``None``.

        Skips *done* shards (releasing any dangling lease a
        post-publish-pre-release crash left behind) and *quarantined*
        shards (poison workloads stay parked until requeued), reclaims
        stale leases, and leaves fresh foreign leases alone.  ``None``
        means every remaining shard is done, quarantined, or actively
        leased elsewhere.
        """
        for descriptor in descriptors:
            if self.done(descriptor):
                self.release(descriptor)  # post-publish crash housekeeping
                continue
            if self.supervision.is_quarantined(descriptor.digest):
                continue
            if self._try_acquire(descriptor.digest):
                # Re-check done *after* winning the lease: the previous
                # holder may have published and released in the window
                # between our done() check and the acquire — a release
                # always follows its publish, so a won lease plus an
                # unpublished store means the shard truly needs running.
                if self.done(descriptor):
                    self.release(descriptor)
                    continue
                return descriptor
            if self._lease_stale(descriptor.digest):
                self._reclaim(descriptor.digest)
                if self._try_acquire(descriptor.digest):
                    if self.done(descriptor):  # slow holder published late
                        self.release(descriptor)
                        continue
                    return descriptor
        return None

    # -- publication ---------------------------------------------------------
    def publish(
        self,
        descriptor: ShardDescriptor,
        result: CampaignResult,
        *,
        worker: str = "",
        elapsed: float = 0.0,
        backend: str | None = None,
    ) -> None:
        """Atomically publish a completed shard, then release its lease."""
        self.publish_result(
            descriptor, result, worker=worker, elapsed=elapsed, backend=backend
        )
        self.release(descriptor)

    def publish_result(
        self,
        descriptor: ShardDescriptor,
        result: CampaignResult,
        *,
        worker: str = "",
        elapsed: float = 0.0,
        backend: str | None = None,
    ) -> None:
        """The store publish alone (no lease release) — the two-step spelling
        the crash-injection harness drives to model a death between them."""
        self._seen_done.add(descriptor.digest)  # our own work, not a cache hit
        self.store.publish(
            descriptor,
            result,
            worker=worker or self.owner,
            elapsed=elapsed,
            backend=backend,
        )
