"""Content-addressed shard descriptors: the fabric's unit of work.

A campaign's shard space is a pure function of its parameters — never of
worker count, execution order, or wall clock.  :class:`CampaignSpec`
captures those parameters once; :meth:`CampaignSpec.shards` enumerates the
``(k, shard)`` grid with exactly the split sizes and splitmix64 stream
seeds the in-memory pool (:mod:`repro.engine.parallel`) uses, so a
journaled run and a pool run simulate literally the same shards.

Each :class:`ShardDescriptor` carries its BLAKE2b content digest
(:func:`repro.store.digest.shard_digest`): the digest covers the layout,
the vector suite, the scenario workload, the base seed and the shard's
``(k, index, size)`` coordinates — **not** the sweep's fault-count list or
total trial count — so a single-``k`` campaign and a sweep containing that
``k`` address the same shard artifacts, and extending ``trials`` reuses
every full shard already published.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.vectors import TestVector
from repro.fpva.array import FPVA
from repro.sim.seeding import mix_seed
from repro.store.digest import campaign_digest, campaign_key, shard_digest


@dataclass(frozen=True)
class ShardDescriptor:
    """One content-addressed unit of campaign work."""

    digest: str
    num_faults: int
    shard: int
    trials: int
    seed: int

    @property
    def label(self) -> str:
        """Human-readable coordinates for diagnostics and quarantine
        records (the digest alone tells an operator nothing)."""
        return f"k={self.num_faults}/shard={self.shard}"

    @property
    def cost(self) -> float:
        """Scheduler cost estimate: trial-draws dominate, and drawing a
        compatible ``k``-set rejects more as ``k`` grows."""
        return float(self.trials) * (1.0 + 0.25 * (self.num_faults - 1))


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's shard space and results.

    Picklable (the multi-process drain ships one to each worker): the
    scenario must live at module top level, exactly as the in-memory pool
    already requires.
    """

    fpva: FPVA
    vectors: tuple[TestVector, ...]
    fault_counts: tuple[int, ...]
    trials: int
    seed: int = 0
    include_control_leaks: bool = True
    keep_undetected: int = 10
    scenario: object = None
    shard_trials: int = 50
    _key: tuple | None = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "vectors", tuple(self.vectors))
        object.__setattr__(
            self, "fault_counts", tuple(int(k) for k in self.fault_counts)
        )

    @property
    def key(self) -> tuple:
        """The campaign-level digest prefix (memoized; hashing the vector
        suite is the expensive part)."""
        if self._key is None:
            object.__setattr__(
                self,
                "_key",
                campaign_key(
                    self.fpva,
                    self.vectors,
                    self.scenario,
                    self.include_control_leaks,
                    self.seed,
                    self.shard_trials,
                    self.keep_undetected,
                ),
            )
        return self._key

    @property
    def digest(self) -> str:
        """Manifest identity of this concrete invocation."""
        return campaign_digest(self.key, self.fault_counts, self.trials)

    def shards_for(self, num_faults: int) -> list[ShardDescriptor]:
        """The shard split for one fault count, in shard order."""
        key = self.key
        out = []
        shard = 0
        remaining = self.trials
        while remaining > 0:
            size = min(self.shard_trials, remaining)
            out.append(
                ShardDescriptor(
                    digest=shard_digest(key, num_faults, shard, size),
                    num_faults=num_faults,
                    shard=shard,
                    trials=size,
                    seed=mix_seed(self.seed, num_faults, shard),
                )
            )
            remaining -= size
            shard += 1
        return out

    def shards(self) -> list[ShardDescriptor]:
        """Every shard of the sweep, in canonical ``(k, shard)`` order."""
        out: list[ShardDescriptor] = []
        for k in self.fault_counts:
            out.extend(self.shards_for(k))
        return out

    def manifest(self) -> dict:
        """The human-inspectable journal manifest payload."""
        scenario = self.scenario
        return {
            "digest": self.digest,
            "layout": self.fpva.name,
            "vectors": len(self.vectors),
            "fault_counts": list(self.fault_counts),
            "trials": self.trials,
            "seed": self.seed,
            "include_control_leaks": self.include_control_leaks,
            "keep_undetected": self.keep_undetected,
            "scenario": getattr(scenario, "name", None),
            "shard_trials": self.shard_trials,
            "shards": len(self.shards()),
        }
