"""Draining a campaign journal: workers, supervision, and the healing merge.

The execution model is deliberately simple — every worker, in-process or
pooled, runs the same loop::

    beat -> claim -> burn attempt -> simulate -> publish (atomic) -> release

against one shared :class:`~repro.fabric.journal.CampaignJournal`.  All
coordination is the journal's lease protocol, so any number of
independent *processes* (not just this pool's — anything pointed at the
same directory, on any backend tier) can drain concurrently, crash, and
resume; the merge only ever reads published shard artifacts in canonical
``(k, shard)`` order, which is what keeps the aggregate bit-identical to
the uninterrupted ``workers=1`` run regardless of worker count, crash
point, or resume order.

Two supervision layers sit on that loop:

* **Bounded retries with poison quarantine.**  A shard's attempt count
  is burned durably at claim time, so a workload that throws, hangs, or
  kills its worker all converge on the same budget.  A failed attempt
  releases the lease and retries after an exponential backoff with
  deterministic jitter (:mod:`repro.fabric.retry`); once the budget is
  exhausted the shard is *quarantined* with a diagnostic record — never
  retried forever, never silently merged — and reported in
  :class:`DrainStats` / the CLI ``--json`` payload.

* **Integrity healing at merge.**  Every shard load verifies its content
  checksum; a corrupt artifact is quarantined out of the store
  (:meth:`CampaignJournal.heal_artifact`) — which turns the shard
  *pending* again — and the runner re-drains and re-merges, bounded by
  ``MAX_HEAL_ROUNDS``.  Corrupt bytes therefore never reach a merged
  result; they are replaced by a fresh simulation that is bit-identical
  by the shard's content addressing.

:class:`ShardWorker` exposes a :meth:`~ShardWorker.checkpoint` hook at
each named point of its loop (``pre-claim``, ``mid-simulate``,
``post-publish``) — a no-op here, overridden by the crash-injection test
harness to kill execution at exactly the transition under test.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.sim.campaign import CampaignResult, merge_shards
from repro.store.digest import digest_int
from repro.store.integrity import ArtifactCorruptionError

from repro.fabric.descriptors import CampaignSpec, ShardDescriptor
from repro.fabric.journal import DEFAULT_LEASE_TIMEOUT, CampaignJournal
from repro.fabric.retry import DEFAULT_MAX_ATTEMPTS, RetryPolicy
from repro.fabric.scheduler import get_scheduler, measure_profiles

if TYPE_CHECKING:
    from repro.sim.kernel import ReachabilityKernel

#: Base re-poll interval while foreign processes still hold fresh leases
#: on the last undone shards; the actual wait backs off from here.
POLL_INTERVAL = 0.1

#: Corruption-healing rounds before the runner gives up: each round can
#: only be forced by *new* corruption appearing between merges, so more
#: than a few rounds means the storage itself is actively dying.
MAX_HEAL_ROUNDS = 5


@dataclass(frozen=True)
class DrainStats:
    """What one :func:`run_journaled_sweep` invocation actually did."""

    total: int          #: shards in the campaign
    executed: int       #: shards this invocation simulated and published
    cache_hits: int     #: shards already published before this invocation
    reclaimed: int      #: stale leases reclaimed along the way
    workers: int
    scheduler: str
    retried: int = 0    #: shard attempts that were retries after a failure
    healed: int = 0     #: corrupt artifacts quarantined and re-published
    #: Poison diagnostic records of shards whose attempt budget is
    #: exhausted — non-empty means the sweep completed *degraded*.
    quarantined: tuple = field(default=())

    @property
    def degraded(self) -> bool:
        """Whether quarantined shards are missing from the merge."""
        return bool(self.quarantined)

    def summary(self) -> str:
        text = (
            f"{self.executed} executed, {self.cache_hits} cached, "
            f"{self.reclaimed} lease(s) reclaimed"
        )
        if self.retried:
            text += f", {self.retried} retried"
        if self.healed:
            text += f", {self.healed} healed"
        if self.quarantined:
            text += f", {len(self.quarantined)} QUARANTINED"
        text += (
            f" ({self.total} shards, {self.workers} worker(s), "
            f"scheduler={self.scheduler})"
        )
        return text

    def report(self) -> dict:
        """JSON-able stats payload (the CLI ``--json`` ``"journal"`` key)."""
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "reclaimed": self.reclaimed,
            "workers": self.workers,
            "scheduler": self.scheduler,
            "retried": self.retried,
            "healed": self.healed,
            "degraded": self.degraded,
            "quarantined": list(self.quarantined),
        }


class ShardWorker:
    """One supervised drain loop over a journal.

    ``order`` is the claim preference (typically this worker's scheduler
    queue followed by everyone else's, for work stealing); the journal's
    lease protocol arbitrates every claim, so preferences only shape wall
    clock.  ``mode``/``kernel``/``kernel_backend`` mirror the in-memory
    pool's shard payload: ``mode="legacy"`` runs the object engine,
    otherwise ``kernel`` is a compiled kernel, an artifact path, or
    ``None`` (compile locally), attached to the named backend tier.

    ``retry`` bounds how this worker treats a shard whose simulation
    raises: the lease is released, the failure recorded durably, and the
    shard retried after a deterministic-jitter backoff — until the
    shard's durable attempt count (burned at claim time, so crashes
    count too) exhausts the budget, at which point the shard is
    quarantined with a diagnostic record instead of run.  ``sleep`` is
    injectable so supervision tests never wait.
    """

    def __init__(
        self,
        journal: CampaignJournal,
        spec: CampaignSpec,
        order: Sequence[ShardDescriptor],
        *,
        worker_id: str = "w0",
        mode: str = "kernel",
        kernel: "ReachabilityKernel | str | None" = None,
        kernel_backend: str | None = None,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.journal = journal
        self.spec = spec
        self.order = list(order)
        self.worker_id = worker_id
        self.mode = mode
        self.kernel = kernel
        self.kernel_backend = kernel_backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.sleep = sleep
        self.executed = 0
        #: Attempts this worker ran that were retries of a failed shard.
        self.retried = 0
        #: Digests this worker parked as poison.
        self.quarantined: list[str] = []

    def checkpoint(self, point: str, descriptor: ShardDescriptor | None) -> None:
        """Crash-injection seam; the production worker never acts here."""

    def run_shard(self, descriptor: ShardDescriptor) -> CampaignResult:
        from repro.engine.parallel import _run_shard

        spec = self.spec
        return _run_shard(
            (
                spec.fpva,
                spec.vectors,
                descriptor.num_faults,
                descriptor.trials,
                descriptor.seed,
                spec.include_control_leaks,
                spec.keep_undetected,
                spec.scenario,
                self.mode,
                self.kernel,
                self.kernel_backend,
            )
        )

    def drain(self) -> int:
        """Claim-and-run until nothing claimable remains; returns the
        number of shards this worker executed."""
        pending = list(self.order)
        while True:
            self.journal.beat()
            self.checkpoint("pre-claim", None)
            descriptor = self.journal.claim(pending)
            if descriptor is None:
                return self.executed
            pending.remove(descriptor)
            prior = self.journal.attempts(descriptor.digest)
            if self.retry.exhausted(prior):
                # Budget burned by earlier attempts — failed here, or
                # claimed by workers that never published (killed/hung).
                # Park it with the evidence instead of running it again.
                self.journal.quarantine_shard(
                    descriptor,
                    reason=(
                        f"poison shard: {prior} attempt(s) without a "
                        f"publish (budget {self.retry.max_attempts})"
                    ),
                    attempts=prior,
                    worker=self.worker_id,
                )
                self.journal.release(descriptor)
                self.quarantined.append(descriptor.digest)
                continue
            attempt = self.journal.note_attempt(descriptor, worker=self.worker_id)
            if attempt > 1:
                self.retried += 1
                self.retry.wait(
                    attempt - 1,
                    key=digest_int(descriptor.digest),
                    sleep=self.sleep,
                )
            self.checkpoint("mid-simulate", descriptor)
            t0 = time.perf_counter()
            try:
                result = self.run_shard(descriptor)
            # repro: ignore[R5] -- supervision boundary: ANY workload failure (corruption included) must be recorded and retried under the attempt budget, never crash the drain
            except Exception as error:
                # The workload, not the fabric, failed: record the
                # diagnostic, free the lease, and let the claim loop
                # retry it (or quarantine it at budget exhaustion).
                self.journal.record_failure(
                    descriptor, error, worker=self.worker_id
                )
                self.journal.release(descriptor)
                pending.append(descriptor)
                continue
            elapsed = time.perf_counter() - t0
            self.journal.publish_result(
                descriptor,
                result,
                worker=self.worker_id,
                elapsed=elapsed,
                backend=self.kernel_backend,
            )
            self.checkpoint("post-publish", descriptor)
            self.journal.release(descriptor)
            self.executed += 1


def _stealing_order(
    queue: Sequence[ShardDescriptor], everything: Sequence[ShardDescriptor]
) -> list[ShardDescriptor]:
    """A worker's claim preference: its own queue, then everyone else's."""
    mine = {d.digest for d in queue}
    return list(queue) + [d for d in everything if d.digest not in mine]


def _drain_process(
    journal_root: str,
    spec: CampaignSpec,
    worker_id: str,
    preferred: list[str],
    mode: str,
    kernel: "ReachabilityKernel | str | None",
    kernel_backend: str | None,
    lease_timeout: float,
    retry: RetryPolicy,
) -> tuple[int, int, int, int]:
    """Pool-worker entry point: drain with a process-local journal."""
    journal = CampaignJournal(
        journal_root, lease_timeout=lease_timeout, owner=worker_id
    )
    descriptors = spec.shards()
    by_digest = {d.digest: d for d in descriptors}
    queue = [by_digest[g] for g in preferred if g in by_digest]
    worker = ShardWorker(
        journal,
        spec,
        _stealing_order(queue, descriptors),
        worker_id=worker_id,
        mode=mode,
        kernel=kernel,
        kernel_backend=kernel_backend,
        retry=retry,
    )
    executed = worker.drain()
    return executed, journal.reclaimed, worker.retried, len(worker.quarantined)


def _prepare_kernel(
    spec: CampaignSpec,
    mode: str,
    kernel: "ReachabilityKernel | str | None",
    journal_root: str | os.PathLike,
    workers: int,
) -> "ReachabilityKernel | str | None":
    """Normalize the kernel spec shipped to workers.

    A pool never pickles a kernel per process when it can ship a path:
    an in-memory kernel headed to a multi-process drain is persisted into
    the journal's own ``kernels/`` store (the journal is durable anyway),
    so heterogeneous processes attached later warm-load the same artifact.
    """
    if mode == "legacy" or isinstance(kernel, str) or workers <= 1:
        return kernel
    from repro.sim.kernel import ReachabilityKernel
    from repro.store import KernelStore

    if kernel is None:
        # repro: ignore[R3] -- the worker-side compile-on-miss path: this IS where a journaled worker builds the kernel it then publishes
        kernel = ReachabilityKernel(spec.fpva)
    store = KernelStore(Path(journal_root) / "kernels")
    if not store.has(spec.fpva):
        store.save(kernel)
    return str(store.path_for(spec.fpva))


def load_sweep(
    journal: CampaignJournal,
    spec: CampaignSpec,
    *,
    strict: bool = True,
) -> dict[int, CampaignResult]:
    """Merge every published shard in canonical order.

    With ``strict=True`` (the default) every shard must be published and
    verify cleanly: an unpublished shard raises :class:`RuntimeError`
    and a corrupt one propagates
    :exc:`~repro.store.integrity.ArtifactCorruptionError` untouched —
    use :func:`run_journaled_sweep` for the quarantine-and-heal loop.
    ``strict=False`` merges what is published, silently skipping
    quarantined shards (the degraded operator view).
    """
    results, missing, corrupt = _load_merging(journal, spec)
    if strict:
        if corrupt:
            raise corrupt[0][1]
        if missing:
            descriptor = missing[0]
            raise RuntimeError(
                f"shard {descriptor.digest} (k={descriptor.num_faults}, "
                f"shard={descriptor.shard}) is not published yet"
            )
    return results


def _load_merging(
    journal: CampaignJournal, spec: CampaignSpec
) -> tuple[
    dict[int, CampaignResult],
    list[ShardDescriptor],
    list[tuple[ShardDescriptor, ArtifactCorruptionError]],
]:
    """One merge pass: results per k, plus what could not be merged.

    Corrupt loads are collected (not raised) so the caller can
    quarantine and heal them all in one re-drain instead of discovering
    them one crash at a time.  Quarantined (poison) shards count as
    *missing*; the caller decides whether that is fatal.
    """
    out: dict[int, CampaignResult] = {}
    missing: list[ShardDescriptor] = []
    corrupt: list[tuple[ShardDescriptor, ArtifactCorruptionError]] = []
    for k in spec.fault_counts:
        shards = []
        for descriptor in spec.shards_for(k):
            if not journal.store.has(descriptor.digest):
                missing.append(descriptor)
                continue
            try:
                shards.append(
                    (descriptor.shard, journal.store.load(descriptor.digest))
                )
            except ArtifactCorruptionError as error:
                corrupt.append((descriptor, error))
        out[k] = merge_shards(k, shards, spec.keep_undetected)
    return out, missing, corrupt


def run_journaled_sweep(
    spec: CampaignSpec,
    journal_dir: str | os.PathLike,
    *,
    workers: int = 1,
    scheduler: str = "greedy",
    resume: bool = False,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    clock: Callable[[], float] = time.time,
    mode: str = "kernel",
    kernel: "ReachabilityKernel | str | None" = None,
    kernel_backend: str | None = None,
    worker_backends: Sequence[str | None] | None = None,
    worker_cls: type[ShardWorker] = ShardWorker,
    poll_interval: float = POLL_INTERVAL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[dict[int, CampaignResult], DrainStats]:
    """Drain (or resume) one campaign's journal and merge the result.

    Re-invoking on a finished journal simulates nothing and reports every
    shard as a cache hit; a killed run resumes from the last published
    shard, with stale leases reclaimed on the way.  ``worker_backends``
    optionally pins a kernel tier per pool worker (cycled), which is how
    a heterogeneous fleet drains one journal — results are bit-identical
    by the backends' own equivalence guarantee.  ``worker_cls`` is the
    crash-injection seam (single-process drains only).

    Supervision: a shard whose workload fails is retried with bounded
    exponential backoff (``retry``/``max_attempts``) and quarantined
    with a diagnostic record once its durable attempt budget is gone; a
    published artifact that fails checksum verification at merge time is
    quarantined out of the store and healed by re-simulation.  The
    returned :class:`DrainStats` reports retried/healed/quarantined, and
    :attr:`DrainStats.degraded` flags a merge that is missing poison
    shards.

    ``resume=True`` insists the journal already exists (guarding against
    a mistyped ``--journal-dir`` silently starting a fresh campaign).
    """
    journal = CampaignJournal(
        journal_dir, lease_timeout=lease_timeout, clock=clock
    )
    if resume and journal.manifest() is None:
        raise FileNotFoundError(
            f"--resume: no campaign journal at {journal.root}"
        )
    journal.ensure(spec)
    descriptors = spec.shards()
    done_before = sum(
        1 for d in descriptors if journal.store.has(d.digest)
    )
    if retry is None:
        retry = RetryPolicy(max_attempts=max_attempts)
    poll = RetryPolicy(
        max_attempts=0, base=poll_interval, growth=1.5,
        max_delay=max(poll_interval, 2.0), jitter=0.25,
    )

    kernel = _prepare_kernel(spec, mode, kernel, journal.root, workers)
    executed = 0
    reclaimed = 0
    retried = 0
    healed = 0

    def _unfinished() -> list[ShardDescriptor]:
        return [
            d
            for d in descriptors
            if not journal.store.has(d.digest)
            and not journal.supervision.is_quarantined(d.digest)
        ]

    def _drain(use_pool: bool) -> None:
        nonlocal executed, reclaimed, retried
        remaining = _unfinished()
        if remaining and use_pool and workers > 1:
            worker_ids = [f"w{i}" for i in range(workers)]
            profiles = measure_profiles(journal.store, descriptors)
            queues = get_scheduler(scheduler).assign(
                remaining, worker_ids, profiles
            )
            backends = list(worker_backends or [])
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _drain_process,
                        str(journal.root),
                        spec,
                        worker_ids[i],
                        [d.digest for d in queues[i]],
                        mode,
                        kernel,
                        backends[i % len(backends)] if backends else kernel_backend,
                        lease_timeout,
                        retry,
                    )
                    for i in range(workers)
                ]
                try:
                    for future in futures:
                        done, freed, tried, _ = future.result()
                        executed += done
                        reclaimed += freed
                        retried += tried
                except BrokenProcessPool:
                    # A pool worker died hard (SIGKILL/OOM).  The journal
                    # is the source of truth: its leases go stale and its
                    # attempt records survive, so the inline pass below
                    # finishes — or quarantines — whatever was left.
                    pass
        # Inline pass: runs the whole campaign when workers <= 1, and mops
        # up after the pool — anything still unpublished is stale-leased
        # (reclaim and run it here), actively held by a foreign process
        # (wait with backoff for its publish), or newly quarantined.
        waits = 0
        while True:
            undone = _unfinished()
            if not undone:
                break
            worker = worker_cls(
                journal,
                spec,
                undone,
                worker_id="w0",
                mode=mode,
                kernel=kernel,
                kernel_backend=kernel_backend,
                retry=retry,
                sleep=sleep,
            )
            executed += worker.drain()
            retried += worker.retried
            if _unfinished():
                waits += 1
                poll.wait(waits, key=digest_int(journal.instance), sleep=sleep)

    _drain(use_pool=True)

    # The healing merge: corrupt artifacts are quarantined (turning their
    # shards pending again) and re-simulated, until a round merges clean.
    for _ in range(MAX_HEAL_ROUNDS):
        results, missing, corrupt = _load_merging(journal, spec)
        if not corrupt:
            break
        to_heal = []
        for descriptor, error in corrupt:
            if journal.heal_artifact(descriptor, error) is not None:
                to_heal.append(descriptor)
        _drain(use_pool=False)
        healed += sum(
            1 for d in to_heal if journal.store.has(d.digest)
        )
    else:
        raise ArtifactCorruptionError(
            journal.store.root,
            f"corruption persisted through {MAX_HEAL_ROUNDS} heal rounds",
        )
    for descriptor in missing:
        if not journal.supervision.is_quarantined(descriptor.digest):
            raise RuntimeError(
                f"shard {descriptor.digest} (k={descriptor.num_faults}, "
                f"shard={descriptor.shard}) is not published yet"
            )

    shard_digests = {d.digest for d in descriptors}
    stats = DrainStats(
        total=len(descriptors),
        executed=executed,
        cache_hits=done_before,
        reclaimed=reclaimed + journal.reclaimed,
        workers=workers,
        scheduler=scheduler,
        retried=retried,
        healed=healed,
        quarantined=tuple(
            record
            for record in journal.quarantined()
            if record.get("digest") in shard_digests
        ),
    )
    return results, stats
