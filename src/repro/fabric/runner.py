"""Draining a campaign journal: workers, pools, and the deterministic merge.

The execution model is deliberately simple — every worker, in-process or
pooled, runs the same loop::

    claim -> simulate -> publish (atomic) -> release lease

against one shared :class:`~repro.fabric.journal.CampaignJournal`.  All
coordination is the journal's lease protocol, so any number of
independent *processes* (not just this pool's — anything pointed at the
same directory, on any backend tier) can drain concurrently, crash, and
resume; the merge only ever reads published shard artifacts in canonical
``(k, shard)`` order, which is what keeps the aggregate bit-identical to
the uninterrupted ``workers=1`` run regardless of worker count, crash
point, or resume order.

:class:`ShardWorker` exposes a :meth:`~ShardWorker.checkpoint` hook at
each named point of that loop (``pre-claim``, ``mid-simulate``,
``post-publish``) — a no-op here, overridden by the crash-injection test
harness to kill execution at exactly the transition under test.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.sim.campaign import CampaignResult, merge_shards

from repro.fabric.descriptors import CampaignSpec, ShardDescriptor
from repro.fabric.journal import DEFAULT_LEASE_TIMEOUT, CampaignJournal
from repro.fabric.scheduler import get_scheduler, measure_profiles

#: How often the parent re-polls the journal while foreign processes
#: still hold fresh leases on the last undone shards.
POLL_INTERVAL = 0.1


@dataclass(frozen=True)
class DrainStats:
    """What one :func:`run_journaled_sweep` invocation actually did."""

    total: int          #: shards in the campaign
    executed: int       #: shards this invocation simulated and published
    cache_hits: int     #: shards already published before this invocation
    reclaimed: int      #: stale leases reclaimed along the way
    workers: int
    scheduler: str

    def summary(self) -> str:
        return (
            f"{self.executed} executed, {self.cache_hits} cached, "
            f"{self.reclaimed} lease(s) reclaimed "
            f"({self.total} shards, {self.workers} worker(s), "
            f"scheduler={self.scheduler})"
        )


class ShardWorker:
    """One drain loop over a journal.

    ``order`` is the claim preference (typically this worker's scheduler
    queue followed by everyone else's, for work stealing); the journal's
    lease protocol arbitrates every claim, so preferences only shape wall
    clock.  ``mode``/``kernel``/``kernel_backend`` mirror the in-memory
    pool's shard payload: ``mode="legacy"`` runs the object engine,
    otherwise ``kernel`` is a compiled kernel, an artifact path, or
    ``None`` (compile locally), attached to the named backend tier.
    """

    def __init__(
        self,
        journal: CampaignJournal,
        spec: CampaignSpec,
        order: Sequence[ShardDescriptor],
        *,
        worker_id: str = "w0",
        mode: str = "kernel",
        kernel=None,
        kernel_backend: str | None = None,
    ):
        self.journal = journal
        self.spec = spec
        self.order = list(order)
        self.worker_id = worker_id
        self.mode = mode
        self.kernel = kernel
        self.kernel_backend = kernel_backend
        self.executed = 0

    def checkpoint(self, point: str, descriptor: ShardDescriptor | None) -> None:
        """Crash-injection seam; the production worker never acts here."""

    def run_shard(self, descriptor: ShardDescriptor) -> CampaignResult:
        from repro.engine.parallel import _run_shard

        spec = self.spec
        return _run_shard(
            (
                spec.fpva,
                spec.vectors,
                descriptor.num_faults,
                descriptor.trials,
                descriptor.seed,
                spec.include_control_leaks,
                spec.keep_undetected,
                spec.scenario,
                self.mode,
                self.kernel,
                self.kernel_backend,
            )
        )

    def drain(self) -> int:
        """Claim-and-run until nothing claimable remains; returns the
        number of shards this worker executed."""
        pending = list(self.order)
        while True:
            self.checkpoint("pre-claim", None)
            descriptor = self.journal.claim(pending)
            if descriptor is None:
                return self.executed
            pending.remove(descriptor)
            self.checkpoint("mid-simulate", descriptor)
            t0 = time.perf_counter()
            result = self.run_shard(descriptor)
            elapsed = time.perf_counter() - t0
            self.journal.publish_result(
                descriptor,
                result,
                worker=self.worker_id,
                elapsed=elapsed,
                backend=self.kernel_backend,
            )
            self.checkpoint("post-publish", descriptor)
            self.journal.release(descriptor)
            self.executed += 1


def _stealing_order(
    queue: Sequence[ShardDescriptor], everything: Sequence[ShardDescriptor]
) -> list[ShardDescriptor]:
    """A worker's claim preference: its own queue, then everyone else's."""
    mine = {d.digest for d in queue}
    return list(queue) + [d for d in everything if d.digest not in mine]


def _drain_process(
    journal_root: str,
    spec: CampaignSpec,
    worker_id: str,
    preferred: list[str],
    mode: str,
    kernel,
    kernel_backend: str | None,
    lease_timeout: float,
) -> tuple[int, int]:
    """Pool-worker entry point: drain with a process-local journal."""
    journal = CampaignJournal(
        journal_root, lease_timeout=lease_timeout, owner=worker_id
    )
    descriptors = spec.shards()
    by_digest = {d.digest: d for d in descriptors}
    queue = [by_digest[g] for g in preferred if g in by_digest]
    worker = ShardWorker(
        journal,
        spec,
        _stealing_order(queue, descriptors),
        worker_id=worker_id,
        mode=mode,
        kernel=kernel,
        kernel_backend=kernel_backend,
    )
    return worker.drain(), journal.reclaimed


def _prepare_kernel(spec: CampaignSpec, mode: str, kernel, journal_root, workers):
    """Normalize the kernel spec shipped to workers.

    A pool never pickles a kernel per process when it can ship a path:
    an in-memory kernel headed to a multi-process drain is persisted into
    the journal's own ``kernels/`` store (the journal is durable anyway),
    so heterogeneous processes attached later warm-load the same artifact.
    """
    if mode == "legacy" or isinstance(kernel, str) or workers <= 1:
        return kernel
    from repro.sim.kernel import ReachabilityKernel
    from repro.store import KernelStore

    if kernel is None:
        kernel = ReachabilityKernel(spec.fpva)
    store = KernelStore(Path(journal_root) / "kernels")
    if not store.has(spec.fpva):
        store.save(kernel)
    return str(store.path_for(spec.fpva))


def load_sweep(
    journal: CampaignJournal, spec: CampaignSpec
) -> dict[int, CampaignResult]:
    """Merge every published shard in canonical order (all must be done)."""
    out: dict[int, CampaignResult] = {}
    for k in spec.fault_counts:
        shards = []
        for descriptor in spec.shards_for(k):
            if not journal.store.has(descriptor.digest):
                raise RuntimeError(
                    f"shard {descriptor.digest} (k={k}, "
                    f"shard={descriptor.shard}) is not published yet"
                )
            shards.append(
                (descriptor.shard, journal.store.load(descriptor.digest))
            )
        out[k] = merge_shards(k, shards, spec.keep_undetected)
    return out


def run_journaled_sweep(
    spec: CampaignSpec,
    journal_dir: str | os.PathLike,
    *,
    workers: int = 1,
    scheduler: str = "greedy",
    resume: bool = False,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    clock=time.time,
    mode: str = "kernel",
    kernel=None,
    kernel_backend: str | None = None,
    worker_backends: Sequence[str | None] | None = None,
    worker_cls: type[ShardWorker] = ShardWorker,
    poll_interval: float = POLL_INTERVAL,
) -> tuple[dict[int, CampaignResult], DrainStats]:
    """Drain (or resume) one campaign's journal and merge the result.

    Re-invoking on a finished journal simulates nothing and reports every
    shard as a cache hit; a killed run resumes from the last published
    shard, with stale leases reclaimed on the way.  ``worker_backends``
    optionally pins a kernel tier per pool worker (cycled), which is how
    a heterogeneous fleet drains one journal — results are bit-identical
    by the backends' own equivalence guarantee.  ``worker_cls`` is the
    crash-injection seam (single-process drains only).

    ``resume=True`` insists the journal already exists (guarding against
    a mistyped ``--journal-dir`` silently starting a fresh campaign).
    """
    journal = CampaignJournal(
        journal_dir, lease_timeout=lease_timeout, clock=clock
    )
    if resume and journal.manifest() is None:
        raise FileNotFoundError(
            f"--resume: no campaign journal at {journal.root}"
        )
    journal.ensure(spec)
    descriptors = spec.shards()
    done_before = sum(
        1 for d in descriptors if journal.store.has(d.digest)
    )
    remaining = [d for d in descriptors if not journal.store.has(d.digest)]

    kernel = _prepare_kernel(spec, mode, kernel, journal.root, workers)
    executed = 0
    reclaimed = 0
    if remaining and workers > 1:
        worker_ids = [f"w{i}" for i in range(workers)]
        profiles = measure_profiles(journal.store, descriptors)
        queues = get_scheduler(scheduler).assign(
            remaining, worker_ids, profiles
        )
        backends = list(worker_backends or [])
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _drain_process,
                    str(journal.root),
                    spec,
                    worker_ids[i],
                    [d.digest for d in queues[i]],
                    mode,
                    kernel,
                    backends[i % len(backends)] if backends else kernel_backend,
                    lease_timeout,
                )
                for i in range(workers)
            ]
            for future in futures:
                done, freed = future.result()
                executed += done
                reclaimed += freed
    # Inline pass: runs the whole campaign when workers <= 1, and mops up
    # after the pool — anything still unpublished is either stale-leased
    # (reclaim and run it here) or actively held by a foreign process
    # (wait for its publish).
    while True:
        undone = [d for d in descriptors if not journal.store.has(d.digest)]
        if not undone:
            break
        worker = worker_cls(
            journal,
            spec,
            undone,
            worker_id="w0",
            mode=mode,
            kernel=kernel,
            kernel_backend=kernel_backend,
        )
        executed += worker.drain()
        if any(not journal.store.has(d.digest) for d in descriptors):
            time.sleep(poll_interval)

    stats = DrainStats(
        total=len(descriptors),
        executed=executed,
        cache_hits=done_before,
        reclaimed=reclaimed + journal.reclaimed,
        workers=workers,
        scheduler=scheduler,
    )
    return load_sweep(journal, spec), stats
