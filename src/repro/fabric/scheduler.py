"""Shard-to-worker assignment: greedy cost model or ILP makespan solve.

Scheduling in the fabric is *advisory*: an assignment orders each
worker's claim preferences, but every claim still goes through the
journal's lease protocol, so a worker whose preferred shard is already
done (or taken) simply moves on — correctness and bit-identical results
never depend on the schedule.  What the schedule buys is wall clock on
heterogeneous fleets: a worker measured 3x faster (say, a ``gpu``-tier
process next to scalar ones) should be handed 3x the trial volume.

Per-worker throughput profiles are measured, not configured: every
published shard's ``meta.json`` records which worker ran it and how long
it took (the Helix exemplar's profiled-cluster pattern), so a resumed
campaign schedules against the speeds its own workers demonstrated.

Two schedulers ship:

=========  ==========================================================
``greedy`` longest-processing-time first onto the worker with the
           earliest weighted finish time — the default; O(n log n)
``ilp``    exact makespan-minimizing assignment over the
           :mod:`repro.ilp` substrate (binary ``x[shard, worker]``,
           minimize the bottleneck finish time); falls back to greedy
           when the solve is infeasible, times out, or the model would
           be unreasonably large
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.store.integrity import ArtifactCorruptionError

from repro.fabric.descriptors import ShardDescriptor
from repro.fabric.shards import ShardStore

#: Above this many assignment variables the ILP scheduler defers to
#: greedy instead of building a model the solver would crawl through.
ILP_MAX_VARIABLES = 2048

#: Wall-clock budget for one assignment solve; an incumbent found within
#: it is still used (FEASIBLE beats greedy more often than not).
ILP_TIME_LIMIT = 5.0


@dataclass(frozen=True)
class WorkerProfile:
    """Measured throughput of one worker identity."""

    worker: str
    trials: int = 0
    elapsed: float = 0.0
    shards: int = 0

    @property
    def throughput(self) -> float:
        """Trials per second; 0 when nothing has been measured yet."""
        return self.trials / self.elapsed if self.elapsed > 0 else 0.0


def measure_profiles(
    store: ShardStore, descriptors: Iterable[ShardDescriptor]
) -> dict[str, WorkerProfile]:
    """Aggregate per-worker throughput from published shard metadata."""
    sums: dict[str, list[float]] = {}
    for descriptor in descriptors:
        if not store.has(descriptor.digest):
            continue
        try:
            meta = store.meta(descriptor.digest)
        except ArtifactCorruptionError:
            # Scheduling is advisory; the healing merge deals with the
            # corrupt artifact itself later.
            continue
        worker = meta.get("worker") or ""
        elapsed = float(meta.get("elapsed") or 0.0)
        if not worker or elapsed <= 0:
            continue
        entry = sums.setdefault(worker, [0.0, 0.0, 0.0])
        entry[0] += int(meta.get("trials") or 0)
        entry[1] += elapsed
        entry[2] += 1
    return {
        worker: WorkerProfile(
            worker=worker,
            trials=int(trials),
            elapsed=elapsed,
            shards=int(shards),
        )
        for worker, (trials, elapsed, shards) in sums.items()
    }


def _speeds(
    workers: Sequence[str], profiles: dict[str, WorkerProfile] | None
) -> list[float]:
    """Relative speed per worker, normalized so unmeasured workers run at
    the fleet's median measured speed (never zero — a fresh worker must
    still be handed work)."""
    profiles = profiles or {}
    measured = sorted(
        p.throughput for p in profiles.values() if p.throughput > 0
    )
    default = measured[len(measured) // 2] if measured else 1.0
    speeds = []
    for worker in workers:
        profile = profiles.get(worker)
        speed = profile.throughput if profile and profile.throughput > 0 else default
        speeds.append(speed)
    return speeds


class Scheduler(Protocol):
    """What a shard scheduler is: a named, pure assignment function."""

    name: str

    def assign(
        self,
        descriptors: Sequence[ShardDescriptor],
        workers: Sequence[str],
        profiles: dict[str, WorkerProfile] | None = None,
    ) -> list[list[ShardDescriptor]]:
        ...


class GreedyScheduler:
    """LPT onto the earliest-finishing worker, weighted by measured speed."""

    name = "greedy"

    def assign(
        self,
        descriptors: Sequence[ShardDescriptor],
        workers: Sequence[str],
        profiles: dict[str, WorkerProfile] | None = None,
    ) -> list[list[ShardDescriptor]]:
        speeds = _speeds(workers, profiles)
        loads = [0.0] * len(workers)
        queues: list[list[ShardDescriptor]] = [[] for _ in workers]
        # Stable LPT: ties broken by (k, shard) so the assignment is a
        # pure function of the inputs.
        order = sorted(
            descriptors,
            key=lambda d: (-d.cost, d.num_faults, d.shard),
        )
        for descriptor in order:
            finish = [
                (loads[w] + descriptor.cost) / speeds[w]
                for w in range(len(workers))
            ]
            target = min(range(len(workers)), key=lambda w: (finish[w], w))
            loads[target] += descriptor.cost
            queues[target].append(descriptor)
        # Claim preference within one worker: canonical (k, shard) order,
        # which keeps low-index shards landing early across the fleet.
        for queue in queues:
            queue.sort(key=lambda d: (d.num_faults, d.shard))
        return queues


class IlpScheduler:
    """Exact makespan assignment via the :mod:`repro.ilp` substrate."""

    name = "ilp"

    def assign(
        self,
        descriptors: Sequence[ShardDescriptor],
        workers: Sequence[str],
        profiles: dict[str, WorkerProfile] | None = None,
    ) -> list[list[ShardDescriptor]]:
        fallback = GreedyScheduler()
        if not descriptors or len(workers) <= 1:
            return fallback.assign(descriptors, workers, profiles)
        if len(descriptors) * len(workers) > ILP_MAX_VARIABLES:
            return fallback.assign(descriptors, workers, profiles)
        from repro.ilp import Model, SolveOptions, solve

        speeds = _speeds(workers, profiles)
        model = Model("shard-assignment")
        # x[s][w] == 1 iff shard s runs on worker w.
        x = [
            [
                model.binary_var(f"x_{s}_{w}")
                for w in range(len(workers))
            ]
            for s in range(len(descriptors))
        ]
        worst = sum(d.cost for d in descriptors) / min(speeds)
        makespan = model.continuous_var("makespan", lb=0.0, ub=worst)
        for s in range(len(descriptors)):
            model.add_constraint(
                sum(x[s], start=model.expr()) == 1, name=f"place_{s}"
            )
        for w in range(len(workers)):
            load = model.expr()
            for s, descriptor in enumerate(descriptors):
                load = load + (descriptor.cost / speeds[w]) * x[s][w]
            model.add_constraint(load <= makespan, name=f"finish_{w}")
        model.minimize(makespan.to_expr())
        solution = solve(model, SolveOptions(time_limit=ILP_TIME_LIMIT))
        if not solution.has_solution:
            return fallback.assign(descriptors, workers, profiles)
        queues: list[list[ShardDescriptor]] = [[] for _ in workers]
        for s, descriptor in enumerate(descriptors):
            placed = max(
                range(len(workers)), key=lambda w: solution.values[x[s][w]]
            )
            queues[placed].append(descriptor)
        for queue in queues:
            queue.sort(key=lambda d: (d.num_faults, d.shard))
        return queues


# repro: ignore[R7] -- scheduler registry: written once at import, read-only afterwards
_SCHEDULERS = {
    GreedyScheduler.name: GreedyScheduler,
    IlpScheduler.name: IlpScheduler,
}


def scheduler_names() -> list[str]:
    return sorted(_SCHEDULERS)


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; registered: {scheduler_names()}"
        ) from None
