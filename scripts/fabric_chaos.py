#!/usr/bin/env python
"""Chaos harness for the campaign fabric's self-healing guarantees.

Runs alongside a live journaled campaign drain and does two kinds of
damage, in order:

1. **Bit flips** — as shards publish, corrupt random published artifacts
   in place (``result.npz`` payloads, occasionally the ``meta.json``
   completeness marker), exactly the damage the store's checksums exist
   to catch.
2. **SIGKILL** — kill the drain's whole process group mid-campaign, the
   way the crash-injection suite does, leaving stale leases and burned
   attempt budgets behind.

The harness only *injects* faults; the assertion lives with the caller
(CI): resuming the campaign afterwards must quarantine every corrupted
artifact, re-simulate it, and produce a merged JSON byte-identical to an
uninterrupted serial reference — with a non-degraded exit code, since
corruption heals and the kill burns fewer attempts than the poison
budget.

Usage::

    setsid python -m repro campaign ... --workers 2 --journal-dir journal &
    python scripts/fabric_chaos.py journal --victim $! \\
        --cache-dir .artifact-cache --corruptions 3 --seed 13

Exits 0 when it corrupted at least one artifact, 1 otherwise (nothing
published in time — the campaign probably failed to start).
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.store.integrity import fsync_dir, fsync_file  # noqa: E402


def publish_damage(path: Path, payload: bytes) -> None:
    """Replace ``path`` with ``payload`` atomically, fsynced.

    The drain is live while the chaos runs: a raw in-place write could
    expose a *torn* artifact to a concurrently verifying reader on slow
    filesystems, turning injected bit rot into an unplanned partial-write
    test.  Damage must be just as atomic as a real publish — the reader
    sees the old bytes or the corrupted bytes, never a mix.
    """
    tmp = path.with_name(path.name + f".chaos-tmp-{os.getpid()}")
    tmp.write_bytes(payload)
    fsync_file(tmp)
    os.replace(tmp, path)
    fsync_dir(path.parent)


def published_shards(journal: Path) -> list[Path]:
    """Directories of completely published shards (meta.json present)."""
    return sorted(
        marker.parent for marker in journal.glob("shards/*/meta.json")
    )


def flip_bits(path: Path, rng: random.Random) -> bool:
    """Corrupt one random byte of ``path`` in place."""
    try:
        data = bytearray(path.read_bytes())
    except OSError:
        return False
    if not data:
        return False
    index = rng.randrange(len(data))
    data[index] ^= 0xFF
    publish_damage(path, bytes(data))
    print(f"chaos: flipped byte {index} of {path}", flush=True)
    return True


def truncate(path: Path) -> bool:
    """Tear ``path`` in half, modelling a partial write at power loss."""
    try:
        data = path.read_bytes()
    except OSError:
        return False
    if not data:
        return False
    publish_damage(path, data[: len(data) // 2])
    print(f"chaos: truncated {path} to {len(data) // 2} bytes", flush=True)
    return True


def corrupt_one(journal: Path, rng: random.Random, hit: set[Path]) -> bool:
    """Corrupt a random not-yet-hit published shard artifact."""
    fresh = [d for d in published_shards(journal) if d not in hit]
    if not fresh:
        return False
    victim = rng.choice(fresh)
    hit.add(victim)
    # Mostly payload bit rot; sometimes tear the completeness marker
    # instead — both must surface as quarantine-and-heal on resume.
    if rng.random() < 0.75:
        return flip_bits(victim / "result.npz", rng)
    return truncate(victim / "meta.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("journal", type=Path, help="campaign journal directory")
    parser.add_argument("--victim", type=int, default=None, metavar="PID",
                        help="drain process (group leader) to SIGKILL "
                             "mid-campaign")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache whose warm kernel gets "
                             "corrupted too (workers heal it by "
                             "recompiling)")
    parser.add_argument("--corruptions", type=int, default=3,
                        help="published shard artifacts to corrupt")
    parser.add_argument("--min-shards", type=int, default=2,
                        help="published shards to wait for before the "
                             "violence starts")
    parser.add_argument("--seed", type=int, default=13,
                        help="chaos RNG seed (reproducible damage)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline in seconds")
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    deadline = time.monotonic() + args.timeout
    hit: set[Path] = set()
    corrupted = 0

    def victim_alive() -> bool:
        if args.victim is None:
            return False
        try:
            os.kill(args.victim, 0)
        except OSError:
            return False
        return True

    # Phase 1: wait for real progress, then corrupt published artifacts
    # while the drain is still running over the same store.
    while time.monotonic() < deadline:
        n = len(published_shards(args.journal))
        if n >= args.min_shards:
            break
        if args.victim is not None and not victim_alive():
            print("chaos: victim exited before any damage", flush=True)
            break
        time.sleep(0.05)
    while corrupted < args.corruptions and time.monotonic() < deadline:
        if corrupt_one(args.journal, rng, hit):
            corrupted += 1
        else:
            time.sleep(0.05)  # wait for the next publish

    # Phase 2: SIGKILL the whole drain process group (the pool's workers
    # included), leaving stale leases + burned attempts for the resume.
    if args.victim is not None and victim_alive():
        try:
            os.killpg(args.victim, signal.SIGKILL)
        except OSError:
            os.kill(args.victim, signal.SIGKILL)
        print(f"chaos: SIGKILLed drain process group {args.victim}", flush=True)

    # Phase 3: corrupt the warm kernel artifact the resume will warm-load
    # by path — its worker must quarantine it and recompile.
    if args.cache_dir is not None:
        kernels = sorted((args.cache_dir / "kernels").glob("*.npz"))
        if kernels and flip_bits(rng.choice(kernels), rng):
            corrupted += 1

    print(f"chaos: corrupted {corrupted} artifact(s), "
          f"{len(published_shards(args.journal))} shards published",
          flush=True)
    return 0 if corrupted else 1


if __name__ == "__main__":
    sys.exit(main())
