"""Persistent artifact store: warm starts and streaming double-fault builds.

Two acceptance measurements for the ``repro.store`` subsystem:

* **warm-start** — building the 8x8 ``max_cardinality=2`` stuck-at
  dictionary cold (simulate + persist) vs re-constructing it from the
  store (no simulation).  Floor: the warm load must be **>=20x** faster,
  with bit-identical tables and diagnosis reports.
* **streaming scale-up** — the 10x10 double-fault dictionary (~65k fault
  sets), infeasible to rebuild per invocation before the store existed,
  built through the chunked streaming path under a ``tracemalloc`` peak
  budget, then warm-loaded.

Results are written to ``BENCH_store.json`` (override with
``REPRO_BENCH_STORE_JSON``) so the warm/cold trajectory is tracked across
PRs; ``REPRO_BENCH_SMOKE=1`` shrinks both configurations for the CI smoke
step.
"""

from __future__ import annotations

import json
import os
import random
import time
import tracemalloc

from benchmarks.conftest import SMOKE, pedantic_once
from repro.core import generate_suite
from repro.fpva import full_layout
from repro.sim import ChipUnderTest, FaultDictionary
from repro.sim.faults import stuck_at_faults
from repro.store import ArtifactStore

BENCH_JSON = os.environ.get("REPRO_BENCH_STORE_JSON", "BENCH_store.json")

SIZE = 6 if SMOKE else 8
WARM_MIN_SPEEDUP = 8.0 if SMOKE else 20.0
STREAM_SIZE = 7 if SMOKE else 10
#: Peak tracemalloc budget for the streaming build.  The 10x10 build peaks
#: well under 256 MB (~180 MB measured); the budget flags any regression
#: back toward materializing the quadratic fault-set universe.
STREAM_PEAK_BUDGET_MB = 64 if SMOKE else 512
STREAM_CHUNK = 4096


def _record(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench JSON."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["config"] = {"size": SIZE, "stream_size": STREAM_SIZE, "smoke": SMOKE}
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _bench_warm_start(fpva, vectors, universe, store):
    t0 = time.perf_counter()
    cold = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=2, store=store
    )
    t_cold = time.perf_counter() - t0
    # Warm starts are the *repeated* path; best-of-3 keeps the one-off
    # first-touch costs (page cache, importer state) out of the floor.
    t_warm = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        warm = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        t_warm = min(t_warm, time.perf_counter() - t0)

    assert not cold.warm_loaded and warm.warm_loaded
    assert list(warm._table.items()) == list(cold._table.items())
    rng = random.Random(0)
    for _ in range(10):
        chip = ChipUnderTest(fpva, (rng.choice(universe),))
        assert warm.diagnose_chip(chip) == cold.diagnose_chip(chip)

    return {
        "fault_sets": cold.total_fault_sets,
        "distinct_syndromes": cold.distinct_syndromes,
        "cold_build_seconds": t_cold,
        "warm_load_seconds": t_warm,
        "speedup": t_cold / t_warm,
    }


def test_warm_start_speedup(benchmark, tmp_path, capsys):
    """Acceptance: warm-start dictionary load >=20x faster than cold build."""
    fpva = full_layout(SIZE, SIZE, name=f"store-bench-{SIZE}x{SIZE}")
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    store = ArtifactStore(tmp_path)
    stats = pedantic_once(
        benchmark, _bench_warm_start, fpva, vectors, universe, store
    )
    benchmark.extra_info.update(stats)
    _record(f"warm_start_{SIZE}x{SIZE}_card2", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} card-2 dictionary ({stats['fault_sets']} fault "
            f"sets): cold {stats['cold_build_seconds']:.2f}s vs warm "
            f"{stats['warm_load_seconds'] * 1000:.0f}ms -> "
            f"{stats['speedup']:.0f}x"
        )
    assert stats["speedup"] >= WARM_MIN_SPEEDUP, stats


def _bench_streaming(fpva, vectors, universe, store):
    tracemalloc.start()
    t0 = time.perf_counter()
    cold = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=2,
        store=store,
        chunk_size=STREAM_CHUNK,
    )
    t_cold = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    t0 = time.perf_counter()
    warm = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=2, store=store
    )
    t_warm = time.perf_counter() - t0
    assert warm.warm_loaded
    assert list(warm._table.items()) == list(cold._table.items())

    artifact = store.dictionaries.path_for(cold.digest)
    disk_bytes = sum(f.stat().st_size for f in artifact.iterdir())
    return {
        "universe": len(universe),
        "fault_sets": cold.total_fault_sets,
        "distinct_syndromes": cold.distinct_syndromes,
        "vectors": len(vectors),
        "chunk_size": STREAM_CHUNK,
        "chunks": store.dictionaries.meta(cold.digest)["chunks"],
        "cold_build_seconds": t_cold,
        "warm_load_seconds": t_warm,
        "peak_memory_mb": peak / 1e6,
        "artifact_kb": disk_bytes / 1024,
    }


def test_streaming_double_fault_scale_up(benchmark, tmp_path, capsys):
    """Acceptance: the 10x10 double-fault dictionary builds through the
    streaming path inside a fixed memory budget (and then warm-loads)."""
    fpva = full_layout(
        STREAM_SIZE, STREAM_SIZE, name=f"store-stream-{STREAM_SIZE}"
    )
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    store = ArtifactStore(tmp_path)
    stats = pedantic_once(
        benchmark, _bench_streaming, fpva, vectors, universe, store
    )
    benchmark.extra_info.update(stats)
    _record(
        f"streaming_build_{STREAM_SIZE}x{STREAM_SIZE}_card2", stats
    )
    with capsys.disabled():
        print(
            f"\n{STREAM_SIZE}x{STREAM_SIZE} card-2 streaming build "
            f"({stats['fault_sets']} fault sets, {stats['chunks']} chunks): "
            f"{stats['cold_build_seconds']:.1f}s at "
            f"{stats['peak_memory_mb']:.0f}MB peak, warm reload "
            f"{stats['warm_load_seconds'] * 1000:.0f}ms, artifact "
            f"{stats['artifact_kb']:.0f}KB"
        )
    assert stats["peak_memory_mb"] <= STREAM_PEAK_BUDGET_MB, stats
    assert stats["warm_load_seconds"] < stats["cold_build_seconds"], stats
